//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! decoration (nothing is ever serialized at runtime), so the derives
//! expand to an empty token stream. The `serde` helper attribute is
//! registered so `#[serde(...)]` field attributes keep parsing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
