//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! [`Strategy`] trait with `prop_map`/tuples/ranges/`any`, a
//! [`collection::vec`] combinator, the [`proptest!`] macro, and the
//! `prop_assert*` macros — over a deterministic per-test RNG (seeded from
//! the test's name, so every run explores the same cases). There is no
//! shrinking: a failing case panics with the generated values visible in
//! the assertion message. `*.proptest-regressions` files are ignored.

use std::rc::Rc;

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given variants (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u64 + 1;
                (s as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` facade (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u16..9, v in crate::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            (10u8..14).prop_map(|v| v as u32),
        ]) {
            prop_assert!(y < 4 || (10..14).contains(&y));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        let s = crate::collection::vec(0u16..100, 1..10);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
