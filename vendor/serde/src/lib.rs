//! Offline stand-in for `serde`.
//!
//! The workspace decorates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes anything at runtime, so this stub provides marker
//! traits and re-exports the no-op derive macros from the vendored
//! `serde_derive`. Swap the `[workspace.dependencies]` path entries back
//! to the registry versions to restore real serialization support.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
