//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the workspace's benches use: benchmark
//! groups, `bench_with_input`/`bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it times a fixed number of iterations with `std::time` and
//! prints one line per benchmark — enough to compare algorithms by eye
//! and to keep `cargo bench` compiling offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Where plots would go (ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlottingBackend {
    /// No plotting (the only behaviour of this stub).
    None,
    /// Accepted and ignored.
    Gnuplot,
}

/// Hints the optimizer must not see through a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted and ignored (no plots are ever produced).
    #[must_use]
    pub fn plotting_backend(self, _backend: PlottingBackend) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            iters: 16,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 16, &mut f);
    }
}

/// A named benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    iters: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (standing in for sampling).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).max(1);
        self
    }

    /// Accepted and ignored.
    pub fn nresamples(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.iters, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, f: &mut F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per = b.elapsed.as_nanos() / iters.max(1) as u128;
    println!("  {label:<40} {per:>12} ns/iter ({iters} iters)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
