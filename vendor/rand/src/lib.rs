//! Offline, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually uses: a seedable
//! generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64, which is plenty for seeded test
//! and benchmark workloads; it is *not* a cryptographic RNG.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The standard generator: SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types a range can be sampled over.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(1980);
        let mut b = StdRng::seed_from_u64(1980);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = r.gen_range(0..12u16);
            assert!(v < 12);
            let w = r.gen_range(4..12);
            assert!((4..12).contains(&w));
            let x: u64 = r.gen_range(0..0xFFFF);
            assert!(x < 0xFFFF);
        }
    }
}
