//! # `mcc` — a microcode compilation toolkit
//!
//! A reproduction of the system landscape surveyed in H.J. Sint, *"A survey
//! of high level microprogramming languages"* (Mathematisch Centrum, 1980):
//! four high level microprogramming languages (SIMPL, EMPL, S\*, YALLL)
//! compiling through a common micro-IR onto simulated horizontal
//! microarchitectures, with the microinstruction-composition and
//! register-allocation machinery the survey describes.
//!
//! This crate is a facade: it re-exports every subsystem crate under one
//! name. See the README for a tour and `DESIGN.md` for the architecture.
//!
//! ```
//! use mcc::core::Compiler;
//! use mcc::machine::machines::hm1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let artifact = Compiler::new(hm1()).compile_yalll(
//!     "reg a = R0\nstart: add a, a, 1\n exit\n",
//! )?;
//! assert!(artifact.program.instr_count() > 0);
//! # Ok(())
//! # }
//! ```

pub use mcc_bench as bench;
pub use mcc_cache as cache;
pub use mcc_chaosnet as chaosnet;
pub use mcc_compact as compact;
pub use mcc_core as core;
pub use mcc_empl as empl;
pub use mcc_faults as faults;
pub use mcc_fleet as fleet;
pub use mcc_fuzz as fuzz;
pub use mcc_harness as harness;
pub use mcc_lang as lang;
pub use mcc_machine as machine;
pub use mcc_mir as mir;
pub use mcc_regalloc as regalloc;
pub use mcc_route as route;
pub use mcc_serve as serve;
pub use mcc_sim as sim;
pub use mcc_simpl as simpl;
pub use mcc_sstar as sstar;
pub use mcc_survey as survey;
pub use mcc_verify as verify;
pub use mcc_yalll as yalll;
