//! `mcc` — the command-line driver.
//!
//! ```text
//! mcc machines                          list the reference machines
//! mcc compile -m hm1 -l yalll f.yll     compile, print stats
//! mcc disasm  -m hm1 -l simpl f.sim     compile and list the microcode
//! mcc run     -m bx2 -l empl  f.emp     compile, simulate, print symbols
//! mcc encode  -m hm1 -l yalll f.yll     compile and hex-dump the control store
//! mcc mdl dump hm1                      print a machine as MDL text
//! mcc compile --mdl my.mdl -l yalll f   compile for a machine described in MDL
//! mcc fuzz --seed 1 --trials 1000       differential fuzz all four frontends
//! mcc campaign e10 --jobs 4 --resume    supervised, journaled experiment run
//! mcc serve --port 7077 --jobs 4        compile-as-a-service daemon
//! mcc route --backend 127.0.0.1:7077    consistent-hash shard router
//! mcc bench-serve --clients 8 --rps 200 seeded closed-loop load generator
//! ```
//!
//! The language defaults from the file extension: `.yll`/`.yalll` → YALLL,
//! `.sim`/`.simpl` → SIMPL, `.emp`/`.empl` → EMPL, `.ss`/`.sstar` → S\*.

use std::process::ExitCode;

use mcc::compact::Algorithm;
use mcc::core::{Compiler, CompilerOptions, SourceLang};
use mcc::machine::{format_program, ConflictModel, MachineDesc};

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcc <command> [options]

commands:
  machines                     list reference machines
  compile  [opts] <file>       compile and report statistics
  disasm   [opts] <file>       compile and print the microcode listing
  encode   [opts] <file>       compile and hex-dump the control store
  run      [opts] <file>       compile, simulate, print symbol values
  fuzz     [opts]              differential fuzzing campaign (see below)
  campaign <e9|e10|fuzz>       run an experiment as a supervised campaign
  serve    [opts]              compile-as-a-service daemon (see below)
  route    [opts]              consistent-hash shard router over serve backends
  fleet    [opts]              self-healing supervisor: router + serve shards
                               as children, auto-restart, live ring membership
  bench-serve [opts]           deterministic load generator for the daemon
  chaos-proxy [opts]           seeded TCP fault-injection proxy for wire tests
  cache    <stats|clear>       inspect or wipe the compilation cache
  mdl dump <machine>           print a reference machine as MDL text

options:
      --no-cache               bypass the compilation cache for this run
  -m, --machine <name>         hm1 | vm1 | bx2 | wm64   (default hm1)
      --mdl <file>             use a machine described in MDL instead
  -l, --lang <name>            yalll | simpl | empl | sstar
                               (default: from the file extension)
  -a, --algo <name>            linear | critpath | levelpack | tokoro | optimal
                               | sequential
      --coarse                 use the coarse conflict model
      --budget <n>             restrict each register file to n registers
      --poll <n>               insert interrupt polls every n operations

fault-injection options (run only):
      --faults <n>             after the clean run, inject n seeded single
                               faults and print the dependability tally
      --seed <n>               campaign seed (default 49374)
      --raw-store              disable control-store parity protection

fuzz options:
      --seed <n>               campaign seed (default 1)
      --trials <n>             trials per frontend (default 256)
  -l, --lang <name>            fuzz one frontend (default: all four)
      --no-shrink              keep findings unreduced

campaign options:
      --jobs <n>               worker threads (default 4)
      --deadline-ms <n>        per-attempt wall-clock deadline (default 60000)
      --retries <n>            retries per job after the first attempt (default 2)
      --trials <n>             trials per row/frontend (defaults: e9 1000,
                               e10 250, fuzz 256)
      --seed <n>               supervision seed: backoff jitter + chaos (default 1)
      --journal <file>         journal path (default campaign-<name>.jsonl)
      --resume                 replay the journal, run only unfinished jobs
      --chaos                  inject harness faults: worker panics, deadline
                               stalls, a persistently failing victim key, and
                               a torn journal tail
  -m, --machine <name>         target machine (campaign fuzz only)

  The table goes to stdout; the supervision summary goes to stderr. Tables
  are byte-identical for any --jobs value, and a killed campaign resumed
  with --resume completes to the same table as an uninterrupted run.

serve options:
      --port <n>               TCP port on 127.0.0.1 (default 7077)
      --jobs <n>               compile worker threads (default 4)
      --queue-bound <n>        max in-flight compiles; beyond it requests
                               are shed with a 503 (default 64)
      --deadline-ms <n>        per-request deadline (default 10000)
      --rate <n>               per-client token-bucket rate, requests/s
                               (default: unlimited)
      --idle-timeout-ms <n>    reap connections idle this long
                               (default 30000; 0 = never)
      --tenant-weight <t=w>    WFQ weight for tenant t (repeatable;
                               unnamed tenants get weight 1)
      --tenant-quota <n>       max queued requests per tenant; excess is
                               shed 503 (default 0 = off)
      --trace <file>           per-request trace journal: FNV-sealed
                               JSONL, one record per resolved request

  The daemon speaks newline-delimited JSON: {{\"op\":\"compile\",...}},
  {{\"op\":\"ping\"}}, {{\"op\":\"stats\"}}, {{\"op\":\"metrics\"}},
  {{\"op\":\"drain\"}}. Compiles may carry \"tenant\" and \"class\"
  (interactive|batch|background); bare frames default to the client id
  at interactive. Intake is weighted-fair across tenants; `metrics`
  answers a Prometheus text exposition. SIGTERM, SIGINT, or a drain
  frame stop admission, finish the in-flight requests, flush the cache
  journal, and exit 0.

route options:
      --backend <[name=]addr>  one serve backend (repeat per shard; required)
      --port <n>               TCP port on 127.0.0.1 (default 7076; 0 = any)
      --vnodes <n>             virtual nodes per backend (default 64)
      --hedge-ms <n>           hedge slow compiles at the ring successor
                               after n ms (default 50; 0 = off)
      --probe-interval-ms <n>  health-probe period (default 250)
      --idle-timeout-ms <n>    reap idle connections (default 30000; 0 = never)
      --seed <n>               sketch/jitter seed (default 0)

  The router speaks the serve protocol and consistent-hashes each
  compile's cache key onto the backend ring: failover to the ring
  successor when a shard dies, per-backend circuit breakers fed by
  ping probes, hot-key replication, and drain propagation to every
  backend on SIGTERM.

fleet options:
      --shards <n>             serve shards to supervise (default 3)
      --port <n>               router TCP port on 127.0.0.1 (default 7076;
                               0 = any)
      --jobs <n>               compile workers per shard (default 4)
      --queue-bound <n>        per-shard admission bound (default 64)
      --restart-budget <n>     consecutive failed lives before a shard is
                               quarantined (default 5)
      --hedge-ms <n>           router hedge delay (default 50; 0 = off)
      --probe-interval-ms <n>  router health-probe period (default 250)
      --cache-root <dir>       per-shard persistent cache dirs live under
                               <dir>/<shard> (default .mcc-fleet-cache);
                               a restarted shard rejoins warm
      --seed <n>               restart-backoff jitter + router seed (default 0)

  The supervisor spawns the router and every shard as child processes,
  pings each shard for heartbeats, reaps dead children, respawns them
  under seeded capped-exponential backoff, and re-announces a restarted
  shard to the router with a `join` frame (its keys move back, minimal
  movement, warm cache). A shard that crash-loops past the restart
  budget is quarantined and the ring permanently routes around it.
  SIGTERM/SIGINT drain the router and every shard, then exit 0.

bench-serve options:
      --clients <n>            closed-loop client threads (default 8)
      --rps <n>                paced request rate (default 200)
      --duration-ms <n>        schedule length (default 2000)
      --seed <n>               request-mix seed (default 42)
      --jobs <n>               server worker threads (default 2)
      --queue-bound <n>        server admission bound (default 8)
      --json <file>            report path (default BENCH_serve.json)
      --backends <n>           routed mode: burst through mcc route over an
                               in-process fleet at each doubling size up to n,
                               emitting the scaling table (default 0 = single
                               server, no router)
      --kill-at <k>            SIGKILL the seed-chosen shard when request k is
                               drawn (spawns real serve children; needs
                               --backends >= 2)
      --chaos-soak             soak a supervised fleet (router + shards as
                               child processes) through --bursts bursts under
                               a seeded kill schedule, including one sabotaged
                               crash-looping shard; gates zero drops, rejoin,
                               and quarantine (needs --backends >= 2)
      --bursts <n>             chaos-soak burst count: one baseline plus one
                               kill per remaining burst (default 4, min 4)
      --chaos-net              route a burst through seeded fault-injection
                               proxies on every hop (client->router and
                               router->shard) and gate zero drops, zero
                               double executions, and zero corrupt frames
                               accepted; the fault schedule prints on stdout
                               as a pure function of --seed
      --proto <v1|v2|both>     wire protocol A/B: fire the same seeded burst
                               at one real TCP server over newline lines (v1)
                               and/or binary length-prefixed pipelined frames
                               with compression (v2); `both` emits the two
                               series into one JSON report. Combined with
                               --chaos-net it picks the wire the fault battery
                               runs on (`both` = two full passes)
      --diurnal                per-tenant QoS mode: a saturated WFQ share
                               check (four weighted tenants vs one abuser),
                               then a seeded day curve of interactive
                               tenants against a quota-throttled batch
                               flood; gates the abuser's analytic share,
                               well-behaved p99, zero drops, the metrics
                               exposition shape, and trace replay after a
                               torn tail
      --net-delay-us <n>       A/B emulated WAN: relay every client byte burst
                               through an in-process proxy adding n µs each
                               way (netem-style constant delay; default 0 =
                               raw loopback). Applies identically to both
                               series — it models the link RTT that lockstep
                               v1 pays per request and pipelined v2 amortizes

  stdout carries only seed-determined invariants (byte-identical across
  --clients and --jobs); latency/shed numbers go to stderr and the JSON.

chaos-proxy options:
      --upstream <host:port>   where to relay accepted connections (required)
      --listen <host:port>     listen address (default 127.0.0.1:0)
      --seed <n>               fault-schedule seed (default 1)
      --plan <spec>            schedule shape, comma-separated keys:
                               warm=,stride=,delay-ms=,stall-ms=,hold-ms=,
                               trickle-us= (defaults: 8,3,40,600,600,2000)

  The proxy sits between a serve/route client and its upstream and
  injects resets, torn and corrupted frames, latency spikes, stalls,
  trickle, duplication, and black-holes on a schedule that is a pure
  function of the seed. The schedule prints on stdout; per-kind injection
  counters go to stderr on exit.

cache:
  compile/disasm/encode/run reuse artifacts from a content-addressed
  cache (in-memory plus an on-disk tier under .mcc-cache, or
  MCC_CACHE_DIR). A hit is byte-identical to a cold compile. `mcc cache
  stats` prints lifetime hit/miss/eviction counters; `mcc cache clear`
  wipes the store. The disk tier is byte-capped (MCC_CACHE_MAX_BYTES,
  default 256 MiB, 0 = unbounded) with oldest-first eviction.
  MCC_NO_CACHE=1 is equivalent to passing --no-cache everywhere."
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    machine: Option<String>,
    mdl: Option<String>,
    lang: Option<String>,
    algo: Option<String>,
    coarse: bool,
    budget: Option<u16>,
    poll: Option<usize>,
    faults: Option<usize>,
    seed: Option<u64>,
    trials: Option<u64>,
    no_shrink: bool,
    raw_store: bool,
    jobs: Option<usize>,
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    journal: Option<String>,
    port: Option<u16>,
    queue_bound: Option<usize>,
    rate: Option<u32>,
    clients: Option<usize>,
    rps: Option<u64>,
    duration_ms: Option<u64>,
    json: Option<String>,
    backends: Option<usize>,
    kill_at: Option<usize>,
    chaos_soak: bool,
    chaos_net: bool,
    proto: Option<String>,
    net_delay_us: Option<u64>,
    bursts: Option<usize>,
    listen: Option<String>,
    upstream: Option<String>,
    plan: Option<String>,
    shards: Option<usize>,
    restart_budget: Option<u32>,
    cache_root: Option<String>,
    backend: Vec<String>,
    vnodes: Option<usize>,
    hedge_ms: Option<u64>,
    probe_interval_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
    resume: bool,
    chaos: bool,
    no_cache: bool,
    diurnal: bool,
    trace: Option<String>,
    tenant_weight: Vec<String>,
    tenant_quota: Option<usize>,
    positional: Vec<String>,
}

/// Validates a worker-count flag: zero workers is a configuration error
/// everywhere (`mcc campaign --jobs 0` would deadlock on an empty pool),
/// so it gets a diagnostic and the flag-error exit status (2), matching
/// malformed numeric values.
fn positive_jobs(flag: &str, jobs: Option<usize>, default: usize) -> usize {
    match jobs {
        Some(0) => {
            eprintln!("mcc: {flag} must be at least 1 (got 0)");
            std::process::exit(2);
        }
        Some(n) => n,
        None => default,
    }
}

/// Parses a numeric flag value; a missing or malformed value is a hard
/// error (silently dropping `--faults 10O0` would skip the campaign).
fn numeric<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Option<T> {
    let v = v?;
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("mcc: {flag} expects a number, got `{v}`");
            None
        }
    }
}

fn parse_args() -> Option<Args> {
    let mut it = std::env::args().skip(1);
    let command = it.next()?;
    let mut a = Args {
        command,
        machine: None,
        mdl: None,
        lang: None,
        algo: None,
        coarse: false,
        budget: None,
        poll: None,
        faults: None,
        seed: None,
        trials: None,
        no_shrink: false,
        raw_store: false,
        jobs: None,
        deadline_ms: None,
        retries: None,
        journal: None,
        port: None,
        queue_bound: None,
        rate: None,
        clients: None,
        rps: None,
        duration_ms: None,
        json: None,
        backends: None,
        kill_at: None,
        chaos_soak: false,
        chaos_net: false,
        proto: None,
        net_delay_us: None,
        bursts: None,
        listen: None,
        upstream: None,
        plan: None,
        shards: None,
        restart_budget: None,
        cache_root: None,
        backend: Vec::new(),
        vnodes: None,
        hedge_ms: None,
        probe_interval_ms: None,
        idle_timeout_ms: None,
        resume: false,
        chaos: false,
        no_cache: false,
        diurnal: false,
        trace: None,
        tenant_weight: Vec::new(),
        tenant_quota: None,
        positional: Vec::new(),
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" | "--machine" => a.machine = Some(it.next()?),
            "--mdl" => a.mdl = Some(it.next()?),
            "-l" | "--lang" => a.lang = Some(it.next()?),
            "-a" | "--algo" => a.algo = Some(it.next()?),
            "--coarse" => a.coarse = true,
            "--budget" => a.budget = Some(numeric("--budget", it.next())?),
            "--poll" => a.poll = Some(numeric("--poll", it.next())?),
            "--faults" => a.faults = Some(numeric("--faults", it.next())?),
            "--seed" => a.seed = Some(numeric("--seed", it.next())?),
            "--trials" => a.trials = Some(numeric("--trials", it.next())?),
            "--no-shrink" => a.no_shrink = true,
            "--raw-store" => a.raw_store = true,
            "--jobs" => a.jobs = Some(numeric("--jobs", it.next())?),
            "--deadline-ms" => a.deadline_ms = Some(numeric("--deadline-ms", it.next())?),
            "--retries" => a.retries = Some(numeric("--retries", it.next())?),
            "--journal" => a.journal = Some(it.next()?),
            "--port" => a.port = Some(numeric("--port", it.next())?),
            "--queue-bound" => a.queue_bound = Some(numeric("--queue-bound", it.next())?),
            "--rate" => a.rate = Some(numeric("--rate", it.next())?),
            "--clients" => a.clients = Some(numeric("--clients", it.next())?),
            "--rps" => a.rps = Some(numeric("--rps", it.next())?),
            "--duration-ms" => a.duration_ms = Some(numeric("--duration-ms", it.next())?),
            "--json" => a.json = Some(it.next()?),
            "--backends" => a.backends = Some(numeric("--backends", it.next())?),
            "--kill-at" => a.kill_at = Some(numeric("--kill-at", it.next())?),
            "--chaos-soak" => a.chaos_soak = true,
            "--chaos-net" => a.chaos_net = true,
            "--proto" => a.proto = Some(it.next()?),
            "--net-delay-us" => a.net_delay_us = Some(numeric("--net-delay-us", it.next())?),
            "--listen" => a.listen = Some(it.next()?),
            "--upstream" => a.upstream = Some(it.next()?),
            "--plan" => a.plan = Some(it.next()?),
            "--bursts" => a.bursts = Some(numeric("--bursts", it.next())?),
            "--shards" => a.shards = Some(numeric("--shards", it.next())?),
            "--restart-budget" => {
                a.restart_budget = Some(numeric("--restart-budget", it.next())?);
            }
            "--cache-root" => a.cache_root = Some(it.next()?),
            "--backend" => a.backend.push(it.next()?),
            "--vnodes" => a.vnodes = Some(numeric("--vnodes", it.next())?),
            "--hedge-ms" => a.hedge_ms = Some(numeric("--hedge-ms", it.next())?),
            "--probe-interval-ms" => {
                a.probe_interval_ms = Some(numeric("--probe-interval-ms", it.next())?);
            }
            "--idle-timeout-ms" => {
                a.idle_timeout_ms = Some(numeric("--idle-timeout-ms", it.next())?);
            }
            "--resume" => a.resume = true,
            "--chaos" => a.chaos = true,
            "--no-cache" => a.no_cache = true,
            "--diurnal" => a.diurnal = true,
            "--trace" => a.trace = Some(it.next()?),
            "--tenant-weight" => a.tenant_weight.push(it.next()?),
            "--tenant-quota" => a.tenant_quota = Some(numeric("--tenant-quota", it.next())?),
            _ => a.positional.push(arg),
        }
    }
    Some(a)
}

fn lang_of(args: &Args, path: &str) -> Result<SourceLang, String> {
    let name = match &args.lang {
        Some(l) => l.clone(),
        None => path.rsplit('.').next().unwrap_or("").to_string(),
    };
    SourceLang::from_name(&name).ok_or_else(|| {
        if args.lang.is_some() {
            format!("unknown language `{name}`")
        } else {
            format!("cannot infer language from `{path}`; pass --lang")
        }
    })
}

fn machine_of(args: &Args) -> Result<MachineDesc, String> {
    if let Some(path) = &args.mdl {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let m = mcc::machine::mdl::parse(&text).map_err(|e| e.to_string())?;
        m.validate().map_err(|e| e.to_string())?;
        return Ok(m);
    }
    let name = args.machine.as_deref().unwrap_or("hm1");
    mcc::machine::machines::by_name(name).ok_or_else(|| format!("unknown machine `{name}`"))
}

fn compiler_of(args: &Args) -> Result<Compiler, String> {
    let machine = machine_of(args)?;
    let mut opts = CompilerOptions::default();
    if let Some(algo) = &args.algo {
        opts.algorithm = match algo.as_str() {
            "linear" => Algorithm::Linear,
            "critpath" => Algorithm::CriticalPath,
            "levelpack" => Algorithm::LevelPack,
            "tokoro" => Algorithm::Tokoro,
            "optimal" => Algorithm::BranchBound,
            "sequential" => Algorithm::Sequential,
            other => return Err(format!("unknown algorithm `{other}`")),
        };
    }
    if args.coarse {
        opts.model = ConflictModel::Coarse;
    }
    opts.alloc.budget = args.budget;
    opts.poll_interval = args.poll;
    Ok(Compiler::with_options(machine, opts))
}

fn compile(args: &Args) -> Result<mcc::core::Artifact, String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| "missing input file".to_string())?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lang = lang_of(args, path)?;
    let c = compiler_of(args)?;
    // Cached around the contained entry point: any residual panic in a
    // frontend or pass comes back as a structured `internal error in
    // pass ...` (errors are never cached), so feeding mcc arbitrary
    // bytes always terminates with a diagnostic.
    let art = mcc::cache::compile_cached(&c, lang, &src, mcc::cache::Persist::Disk)
        .map_err(|e| e.to_string())?;
    if let Some(tier) = art.stats.cached {
        eprintln!("(cache hit: {tier})");
    }
    for w in &art.warnings {
        eprintln!("warning: {}", w.message);
    }
    Ok(art)
}

/// `mcc fuzz`: a deterministic differential campaign over the frontends.
/// Exit status is nonzero when any finding is reported, so CI can gate
/// on a clean run.
fn fuzz_command(args: &Args) -> Result<bool, String> {
    use mcc::fuzz::{fuzz, FuzzConfig};
    let machine = machine_of(args)?;
    let langs = match &args.lang {
        Some(l) => vec![
            SourceLang::from_name(l).ok_or_else(|| format!("unknown language `{l}`"))?,
        ],
        None => SourceLang::ALL.to_vec(),
    };
    let cfg = FuzzConfig {
        seed: args.seed.unwrap_or(1),
        trials: args.trials.unwrap_or(256),
        langs,
        machine,
        shrink: !args.no_shrink,
    };
    println!(
        "fuzzing {} on {}: {} trials/frontend, seed {}",
        cfg.langs
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.machine.name,
        cfg.trials,
        cfg.seed
    );
    let report = fuzz(&cfg);
    print!("{}", report.table());
    for f in &report.findings {
        println!(
            "\nfinding: {} in {} (trial {}): {}",
            f.class, f.lang, f.trial, f.detail
        );
        println!("--- shrunk reproducer ---");
        for line in f.shrunk.lines() {
            println!("  {line}");
        }
    }
    let total = report.total_findings();
    if total == 0 {
        println!("no findings");
    } else {
        println!("\n{total} finding(s)");
    }
    Ok(total == 0)
}

/// `mcc campaign <e9|e10|fuzz>`: run an experiment as a supervised,
/// journaled harness campaign. The experiment table goes to stdout (so CI
/// can diff runs byte-for-byte); the supervision summary goes to stderr.
fn campaign_command(args: &Args) -> Result<(), String> {
    use mcc::bench::campaign as bc;
    use mcc::harness::{run_campaign, BackoffConfig, BreakerConfig, HarnessConfig};
    use std::time::Duration;

    let which = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| "campaign: expected `e9`, `e10`, or `fuzz`".to_string())?;
    let seed = args.seed.unwrap_or(1);
    let cfg = HarnessConfig {
        campaign: which.to_string(),
        workers: positive_jobs("campaign: --jobs", args.jobs, 4),
        deadline: Some(Duration::from_millis(args.deadline_ms.unwrap_or(60_000))),
        attempts: args.retries.unwrap_or(2) + 1,
        backoff: BackoffConfig::default(),
        breaker: BreakerConfig::default(),
        seed,
        chaos: args.chaos,
    };
    let journal = args
        .journal
        .clone()
        .unwrap_or_else(|| format!("campaign-{which}.jsonl"));
    let journal = std::path::Path::new(&journal);

    let (jobs, title): (Vec<mcc::harness::Job>, String) = match which {
        "e9" => {
            let trials = args.trials.unwrap_or(1000) as usize;
            (
                bc::e9_jobs(trials),
                format!("E9: dependability under fault injection ({trials} trials/row)"),
            )
        }
        "e10" => {
            let trials = args.trials.unwrap_or(250);
            (
                bc::e10_jobs(trials),
                format!("E10: differential-fuzzing robustness ({trials} trials/cell)"),
            )
        }
        "fuzz" => {
            let trials = args.trials.unwrap_or(256);
            let machine = args.machine.as_deref().unwrap_or("hm1");
            (
                bc::fuzz_jobs(seed, trials, machine),
                format!("fuzz campaign on {machine} ({trials} trials/frontend)"),
            )
        }
        other => return Err(format!("campaign: unknown experiment `{other}`")),
    };

    eprintln!(
        "campaign {which}: {} jobs on {} workers, journal {}{}",
        jobs.len(),
        cfg.workers,
        journal.display(),
        if args.resume { " (resume)" } else { "" }
    );
    // Job panics are contained by the harness and surface in the summary
    // and the degraded notes; the default hook's backtraces would only
    // shred stderr, so silence it for the duration of the run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign(jobs, &cfg, journal, args.resume);
    std::panic::set_hook(prev_hook);
    let report = report.map_err(|e| e.to_string())?;
    let table = match which {
        "e9" => bc::e9_table(&report.outcomes, args.trials.unwrap_or(1000) as usize),
        "e10" => bc::e10_table(&report.outcomes, args.trials.unwrap_or(250)),
        _ => bc::fuzz_table(&report.outcomes, seed, args.trials.unwrap_or(256)),
    };
    table.print(&title);
    eprintln!("{}", report.summary());
    Ok(())
}

/// `mcc run --faults N`: a seeded single-fault campaign against the
/// compiled program, each trial classified against the clean run's
/// symbol values.
fn fault_campaign(
    args: &Args,
    art: &mcc::core::Artifact,
    clean_sim: &mcc::sim::Simulator,
    clean_cycles: u64,
    trials: usize,
) {
    use mcc::faults::{run_campaign, CampaignSpec, FaultMix, FaultSpace};
    let golden: Vec<(String, u64)> = art
        .symbols
        .keys()
        .filter_map(|n| art.read_symbol(clean_sim, n).map(|v| (n.clone(), v)))
        .collect();
    let space = FaultSpace::new(&art.machine, art.program.instr_count() as u32, clean_cycles);
    let seed = args.seed.unwrap_or(49374);
    let protect = !args.raw_store;
    // Without poll points the watchdog cannot tell work from a hang, so it
    // must outlast the whole clean run (compile with --poll to tighten it).
    let watchdog = if art.stats.polls > 0 {
        512
    } else {
        clean_cycles * 2 + 512
    };
    let spec = CampaignSpec {
        seed,
        trials,
        mix: FaultMix::default(),
    };
    let report = run_campaign(&spec, &space, |plan| {
        let mut sim = art.simulator();
        let res = sim.run(&mcc::sim::SimOptions {
            max_cycles: clean_cycles * 20 + 20_000,
            faults: plan,
            watchdog: Some(watchdog),
            protect_store: protect,
            ..Default::default()
        });
        let correct = res.is_ok()
            && golden
                .iter()
                .all(|(n, v)| art.read_symbol(&sim, n) == Some(*v));
        (res, correct)
    });
    let t = report.tally;
    println!(
        "\nfault campaign: {} trials, seed {}, {} control store, watchdog {} cycles",
        t.total(),
        seed,
        if protect { "parity-protected" } else { "raw" },
        watchdog
    );
    println!("  masked          {:>6}", t.masked);
    println!("  recovered       {:>6}", t.recovered);
    println!("  detected-halt   {:>6}", t.detected_halt);
    println!("  hang            {:>6}", t.hang);
    println!("  SDC             {:>6}", t.sdc);
    println!("  coverage        {:>5.1}%", t.coverage() * 100.0);
}

/// Signal plumbing for the daemon: SIGTERM and SIGINT flip the stop flag
/// the accept loop polls, so either begins the graceful drain. The
/// handler only stores to an atomic — async-signal-safe by construction.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_signal(_sig: i32) {
        if let Some(stop) = STOP.get() {
            stop.store(true, Ordering::SeqCst);
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Routes SIGTERM/SIGINT into `stop`.
    pub fn install(stop: &Arc<AtomicBool>) {
        let _ = STOP.set(Arc::clone(stop));
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Non-unix targets drain via the `drain` frame only.
    pub fn install(_stop: &Arc<AtomicBool>) {}
}

/// `mcc serve`: the compile daemon on 127.0.0.1. Runs until SIGTERM,
/// SIGINT, or a `drain` frame, then drains gracefully and exits 0.
fn serve_command(args: &Args) -> Result<(), String> {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let mut tenant_weights = Vec::new();
    for spec in &args.tenant_weight {
        let parsed = spec
            .split_once('=')
            .and_then(|(name, w)| w.parse::<u32>().ok().map(|w| (name.to_string(), w)));
        match parsed {
            Some(tw) => tenant_weights.push(tw),
            None => return Err(format!("serve: --tenant-weight expects name=weight, got `{spec}`")),
        }
    }
    let cfg = mcc::serve::ServeConfig {
        workers: positive_jobs("serve: --jobs", args.jobs, 4),
        queue_bound: positive_jobs("serve: --queue-bound", args.queue_bound, 64),
        deadline: std::time::Duration::from_millis(args.deadline_ms.unwrap_or(10_000)),
        rate_per_client: args.rate,
        idle_timeout: idle_timeout(args),
        tenant_weights,
        tenant_quota: args.tenant_quota.unwrap_or(0),
        trace_path: args.trace.as_ref().map(std::path::PathBuf::from),
        ..mcc::serve::ServeConfig::default()
    };
    let port = args.port.unwrap_or(7077);
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("serve: cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let (workers, bound) = (cfg.workers, cfg.queue_bound);
    let server = Arc::new(mcc::serve::Server::start(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    sig::install(&stop);
    eprintln!(
        "mcc serve: listening on {addr} ({workers} workers, queue bound {bound}); \
         stop with SIGTERM/SIGINT or a drain frame"
    );
    mcc::serve::tcp::serve(Arc::clone(&server), listener, stop).map_err(|e| e.to_string())?;
    let in_flight = server.drain();
    eprintln!("mcc serve: drained ({in_flight} requests were in flight); cache journal flushed");
    Ok(())
}

/// The `--idle-timeout-ms` flag as a config value (`0` disables the
/// reaper, absent takes the default).
fn idle_timeout(args: &Args) -> Option<std::time::Duration> {
    match args.idle_timeout_ms {
        Some(0) => None,
        Some(ms) => Some(std::time::Duration::from_millis(ms)),
        None => mcc::serve::ServeConfig::default().idle_timeout,
    }
}

/// `mcc route`: the consistent-hash shard router fronting a fleet of
/// `mcc serve` backends. Runs until SIGTERM, SIGINT, or a `drain`
/// frame, then drains itself and every backend, and exits 0.
fn route_command(args: &Args) -> Result<(), String> {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    if args.backend.is_empty() {
        return Err("route: pass at least one --backend [name=]host:port".to_string());
    }
    let seed = args.seed.unwrap_or(0);
    let cfg = mcc::route::RouteConfig {
        vnodes: positive_jobs("route: --vnodes", args.vnodes, 64),
        hedge_after: match args.hedge_ms {
            Some(0) => None,
            Some(ms) => Some(std::time::Duration::from_millis(ms)),
            None => mcc::route::RouteConfig::default().hedge_after,
        },
        probe_interval: std::time::Duration::from_millis(
            args.probe_interval_ms.unwrap_or(250).max(1),
        ),
        seed,
        idle_timeout: idle_timeout(args),
        ..mcc::route::RouteConfig::default()
    };
    // `--backend name=addr` names the shard explicitly (ring placement
    // hashes the name, so all routers over one fleet must agree);
    // otherwise shards are named b0, b1, … in flag order.
    let backends: Vec<Arc<dyn mcc::route::Backend>> = args
        .backend
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (name, addr) = match spec.split_once('=') {
                Some((n, a)) => (n.to_string(), a),
                None => (format!("b{i}"), spec.as_str()),
            };
            Arc::new(
                mcc::route::TcpBackend::new(&name, addr, seed, 4)
                    .with_wire(cfg.call_timeout, cfg.call_retries),
            ) as Arc<dyn mcc::route::Backend>
        })
        .collect();
    let n = backends.len();
    let router = Arc::new(mcc::route::Router::new(backends, cfg));
    mcc::route::Router::start_probes(&router);

    let port = args.port.unwrap_or(7076);
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("route: cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    sig::install(&stop);
    eprintln!(
        "mcc route: listening on {addr} fronting {n} backends; \
         stop with SIGTERM/SIGINT or a drain frame"
    );
    mcc::serve::tcp::serve_lines(
        Arc::clone(&router) as Arc<dyn mcc::serve::tcp::LineHandler>,
        listener,
        stop,
    )
    .map_err(|e| e.to_string())?;
    let in_flight = router.drain();
    eprintln!("mcc route: drained ({in_flight} requests were in flight); backends drained");
    Ok(())
}

/// `mcc fleet`: the self-healing supervisor. Spawns the router and N
/// `mcc serve` shards as child processes, heartbeats them, restarts
/// crashes under budgeted backoff, quarantines crash-loopers, and keeps
/// the router's ring membership live through join/leave frames. Runs
/// until SIGTERM/SIGINT, then drains everything and exits 0.
fn fleet_command(args: &Args) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let n = positive_jobs("fleet: --shards", args.shards, 3);
    let exe = std::env::current_exe().map_err(|e| format!("fleet: current_exe: {e}"))?;
    let cache_root = std::path::PathBuf::from(
        args.cache_root.clone().unwrap_or_else(|| ".mcc-fleet-cache".to_string()),
    );
    let mut cfg = mcc::fleet::FleetConfig::new(exe, cache_root);
    cfg.router_port = args.port.unwrap_or(7076);
    cfg.workers = positive_jobs("fleet: --jobs", args.jobs, 4);
    cfg.queue_bound = positive_jobs("fleet: --queue-bound", args.queue_bound, 64);
    cfg.seed = args.seed.unwrap_or(0);
    cfg.hedge_ms = args.hedge_ms.unwrap_or(50);
    cfg.probe_interval_ms = args.probe_interval_ms.unwrap_or(250).max(1);
    cfg.restart.budget = args.restart_budget.unwrap_or(5);
    cfg.log = true;
    let specs: Vec<mcc::fleet::ShardSpec> =
        (0..n).map(|i| mcc::fleet::ShardSpec::stock(&format!("b{i}"))).collect();

    let mut fleet = mcc::fleet::Fleet::start(cfg, specs)?;
    let stop = Arc::new(AtomicBool::new(false));
    sig::install(&stop);
    eprintln!(
        "mcc fleet: supervising {n} shards behind {}; stop with SIGTERM/SIGINT",
        fleet.router_addr()
    );
    let mut last_report = std::time::Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if last_report.elapsed() >= std::time::Duration::from_secs(10) {
            last_report = std::time::Instant::now();
            let states: Vec<String> = fleet
                .snapshot()
                .iter()
                .map(|s| {
                    format!(
                        "{}:{}(crashes {}, restarts {}, qd {})",
                        s.name,
                        s.state.name(),
                        s.crashes,
                        s.restarts,
                        s.queue_depth
                    )
                })
                .collect();
            eprintln!("mcc fleet: [{}]", states.join(" "));
        }
    }
    eprintln!("mcc fleet: draining");
    fleet.shutdown();
    Ok(())
}

/// `mcc bench-serve`: the seeded closed-loop load generator (stdout is
/// deterministic; timing goes to stderr and the JSON report).
fn bench_serve_command(args: &Args) -> Result<(), String> {
    // A malformed --proto is a flag error (exit 2), like a malformed number.
    let proto = args.proto.as_deref().map(|s| {
        mcc::bench::serveload::ProtoChoice::parse(s).unwrap_or_else(|| {
            eprintln!("mcc: --proto expects v1, v2, or both, got `{s}`");
            std::process::exit(2);
        })
    });
    let cfg = mcc::bench::serveload::LoadConfig {
        clients: positive_jobs("bench-serve: --clients", args.clients, 8),
        rps: args.rps.unwrap_or(200).max(1),
        duration_ms: args.duration_ms.unwrap_or(2_000),
        seed: args.seed.unwrap_or(42),
        workers: positive_jobs("bench-serve: --jobs", args.jobs, 2),
        queue_bound: positive_jobs("bench-serve: --queue-bound", args.queue_bound, 8),
        json_path: args.json.clone().unwrap_or_else(|| "BENCH_serve.json".to_string()),
        backends: args.backends.unwrap_or(0),
        kill_at: args.kill_at,
        chaos_soak: args.chaos_soak,
        chaos_net: args.chaos_net,
        bursts: args.bursts.unwrap_or(4),
        proto,
        net_delay_us: args.net_delay_us.unwrap_or(0),
        diurnal: args.diurnal,
    };
    mcc::bench::serveload::run(&cfg)
}

/// Parses a `--plan` spec like `warm=8,stride=3,delay-ms=40` into a
/// [`mcc::chaosnet::FaultPlan`]; unknown keys are hard errors so a typo
/// cannot silently run the default schedule.
fn parse_plan(spec: &str) -> Result<mcc::chaosnet::FaultPlan, String> {
    use std::time::Duration;
    let mut plan = mcc::chaosnet::FaultPlan::default();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("chaos-proxy: --plan entry `{part}` is not key=value"))?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("chaos-proxy: --plan {key} expects a number, got `{value}`"))?;
        match key {
            "warm" => plan.warm = n,
            "stride" => plan.stride = n.max(1),
            "delay-ms" => plan.delay = Duration::from_millis(n),
            "stall-ms" => plan.stall = Duration::from_millis(n),
            "hold-ms" => plan.hold = Duration::from_millis(n),
            "trickle-us" => plan.trickle_pause = Duration::from_micros(n),
            other => return Err(format!("chaos-proxy: unknown --plan key `{other}`")),
        }
    }
    Ok(plan)
}

/// `mcc chaos-proxy`: the seeded deterministic fault-injection proxy.
/// Sits between a client and an upstream serve/route daemon, relays
/// newline-delimited frames, and injects faults on a schedule that is a
/// pure function of the seed. The schedule goes to stdout (so a harness
/// can diff it across runs); injection counters go to stderr on exit.
fn chaos_proxy_command(args: &Args) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let upstream = args
        .upstream
        .clone()
        .ok_or_else(|| "chaos-proxy: pass --upstream host:port".to_string())?;
    let listen = args.listen.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
    let plan = match &args.plan {
        Some(spec) => parse_plan(spec)?,
        None => mcc::chaosnet::FaultPlan::default(),
    };
    let seed = args.seed.unwrap_or(1);
    let listener = std::net::TcpListener::bind(&listen)
        .map_err(|e| format!("chaos-proxy: cannot bind {listen}: {e}"))?;
    let mut proxy = mcc::chaosnet::ChaosProxy::start(listener, &upstream, seed, plan)
        .map_err(|e| format!("chaos-proxy: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    sig::install(&stop);
    eprintln!(
        "mcc chaos-proxy: listening on {} -> {upstream}; stop with SIGTERM/SIGINT",
        proxy.addr()
    );
    print!("{}", mcc::chaosnet::schedule_text("proxy", seed, &plan));
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let frames = proxy.frames();
    let injected = proxy.injected();
    proxy.stop();
    eprintln!("mcc chaos-proxy: stopped after {frames} frames");
    for (kind, n) in injected {
        if n > 0 {
            eprintln!("  injected {kind:<16} {n}");
        }
    }
    Ok(())
}

/// `mcc cache stats|clear`: inspect or wipe the on-disk artifact store.
/// The "lifetime:" line is stable and greppable — CI parses it to assert
/// a warmed cache actually served hits.
fn cache_command(args: &Args) -> Result<(), String> {
    let dir = mcc::cache::default_dir();
    match args.positional.first().map(String::as_str) {
        Some("stats") => {
            let entries = if dir.is_dir() {
                mcc::cache::DiskTier::open(&dir)
                    .map(|t| t.len())
                    .map_err(|e| format!("{}: {e}", dir.display()))?
            } else {
                0
            };
            let n = mcc::cache::read_stats(&dir);
            let lookups = n.hits() + n.misses;
            println!("cache directory: {}", dir.display());
            println!(
                "entries: {entries} ({} bytes on disk, cap {})",
                mcc::cache::disk::log_bytes(&dir),
                match mcc::cache::disk::configured_cap() {
                    Some(cap) => format!("{cap} bytes"),
                    None => "unbounded".to_string(),
                }
            );
            println!(
                "lifetime: {} hits ({} memory + {} disk), {} misses, {} stores, {} evictions",
                n.hits(),
                n.hits_memory,
                n.hits_disk,
                n.misses,
                n.stores,
                n.evictions
            );
            if lookups > 0 {
                println!(
                    "hit rate: {:.1}%",
                    n.hits() as f64 / lookups as f64 * 100.0
                );
            }
            Ok(())
        }
        Some("clear") => {
            if dir.is_dir() {
                std::fs::remove_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                println!("cleared {}", dir.display());
            } else {
                println!("{} does not exist; nothing to clear", dir.display());
            }
            Ok(())
        }
        _ => Err("cache: expected `stats` or `clear`".to_string()),
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if args.no_cache {
        mcc::cache::set_enabled(false);
    }
    // Attach the disk tier for the commands that compile. Failure to open
    // the store is never fatal — the in-memory tier still works.
    if matches!(
        args.command.as_str(),
        "compile" | "disasm" | "encode" | "run" | "campaign" | "serve"
    ) && mcc::cache::enabled()
    {
        if let Err(e) = mcc::cache::attach_default_disk() {
            eprintln!("mcc: disk cache unavailable ({e}); continuing in-memory");
        }
    }
    let result = match args.command.as_str() {
        "machines" => {
            for m in mcc::machine::machines::all() {
                println!(
                    "{:<6} {:>3}-bit control word, {} phases, {} templates, {} registers",
                    m.name,
                    m.control_word_bits(),
                    m.phases,
                    m.templates.len(),
                    m.files.iter().map(|f| f.count as usize).sum::<usize>(),
                );
            }
            Ok(())
        }
        "mdl" => {
            if args.positional.first().map(String::as_str) == Some("dump") {
                match args
                    .positional
                    .get(1)
                    .and_then(|n| mcc::machine::machines::by_name(n))
                {
                    Some(m) => {
                        print!("{}", mcc::machine::mdl::to_mdl(&m));
                        Ok(())
                    }
                    None => Err("mdl dump: unknown or missing machine name".to_string()),
                }
            } else {
                Err("mdl: expected `dump <machine>`".to_string())
            }
        }
        "compile" => compile(&args).map(|art| {
            println!(
                "{}: {} microinstructions, {} micro-ops ({:.2} ops/instr), \
                 {} spills, {} polls, {} dead flag writes, compacted by {}",
                art.machine.name,
                art.stats.micro_instrs,
                art.stats.micro_ops,
                art.stats.packing_ratio(),
                art.stats.spills,
                art.stats.polls,
                art.stats.dead_flags,
                art.stats.algorithm_used,
            );
            for d in &art.stats.degradations {
                println!("  degraded: {d}");
            }
        }),
        "disasm" => compile(&args).map(|art| {
            print!("{}", format_program(&art.machine, &art.program));
        }),
        "encode" => compile(&args).and_then(|art| {
            let words = art.encode().map_err(|e| e.to_string())?;
            let digits = (art.machine.control_word_bits() as usize).div_ceil(4);
            for (i, w) in words.iter().enumerate() {
                println!("{i:4}  {w:0digits$x}");
            }
            Ok(())
        }),
        "run" => compile(&args).and_then(|art| {
            let (sim, stats) = art.run().map_err(|e| e.to_string())?;
            println!(
                "halted after {} cycles ({} instructions, {} µops)",
                stats.cycles, stats.instrs, stats.uops
            );
            let mut names: Vec<&String> = art.symbols.keys().collect();
            names.sort();
            for n in names {
                if let Some(v) = art.read_symbol(&sim, n) {
                    println!("  {n} = {v} ({v:#x})");
                }
            }
            if let Some(trials) = args.faults {
                fault_campaign(&args, &art, &sim, stats.cycles, trials);
            }
            Ok(())
        }),
        "campaign" => campaign_command(&args),
        "serve" => serve_command(&args),
        "route" => route_command(&args),
        "fleet" => fleet_command(&args),
        "bench-serve" => bench_serve_command(&args),
        "chaos-proxy" => chaos_proxy_command(&args),
        "cache" => cache_command(&args),
        "fuzz" => {
            return match fuzz_command(&args) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("mcc: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    mcc::cache::flush_global_stats();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcc: {e}");
            ExitCode::FAILURE
        }
    }
}
