//! QoS observability, end to end: the `--trace` journal's torn-tail
//! replay discipline against a live server, the per-tenant stats
//! aggregation through a router (including the cross-version parse of a
//! pre-QoS peer's stats line), and the merged Prometheus exposition.

use std::sync::Arc;

use mcc::route::{tenant_served_from_stats, Backend, InProcBackend, RouteConfig, Router};
use mcc::serve::proto::{compile_line_qos, Response};
use mcc::serve::{metrics, trace, ServeConfig, Server};

/// A YALLL kernel that always compiles; the nonce comment keeps each
/// request's cache key distinct so every request really executes.
fn src(nonce: usize) -> String {
    format!("reg a = R0\nstart: add a, a, 1\n exit\n; nonce {nonce}\n")
}

#[test]
fn trace_journal_replays_exactly_and_survives_a_torn_tail() {
    let dir = std::env::temp_dir().join(format!("mcc-qos-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let server = Server::start(ServeConfig {
        workers: 2,
        trace_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    for k in 0..10 {
        let line = compile_line_qos(
            &format!("r{k}"),
            "hm1",
            "yalll",
            &src(k),
            Some(if k % 2 == 0 { "acme" } else { "blue" }),
            Some(if k % 3 == 0 { "batch" } else { "interactive" }),
        );
        let r = server.handle_line(&line, "client-a");
        assert_eq!(r.code, 200, "{}", r.to_line());
    }
    // A malformed class is rejected 400 — and still traced.
    let bad = compile_line_qos("rbad", "hm1", "yalll", &src(99), Some("acme"), Some("warp"));
    assert_eq!(server.handle_line(&bad, "client-a").code, 400);
    server.drain();
    drop(server);

    let (records, torn) = trace::replay(&path).expect("trace replays");
    assert!(!torn, "clean shutdown must not read as torn");
    assert_eq!(records.len(), 11, "one sealed record per resolved request");
    assert_eq!(records[0].tenant, "acme");
    assert_eq!(records[0].seq, 1);
    assert!(records.iter().any(|r| r.code == 400), "the reject is traced too");
    assert!(
        records.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
        "sequence numbers are dense"
    );

    // Tear the tail mid-record: the durable prefix must replay unchanged.
    let mut raw = std::fs::read(&path).unwrap();
    raw.extend_from_slice(b"{\"seq\":12,\"client\":\"client-a\",\"tena");
    std::fs::write(&path, &raw).unwrap();
    let (after, torn) = trace::replay(&path).expect("torn trace still replays");
    assert!(torn, "the torn tail must be detected");
    assert_eq!(after.len(), 11, "the prefix survives");
    assert_eq!(after, records);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_parse_tolerates_pre_qos_peers() {
    // A modern shard's stats line carries the per-tenant fields.
    let server = Server::start(ServeConfig::default());
    for k in 0..3 {
        let line =
            compile_line_qos(&format!("q{k}"), "hm1", "yalll", &src(k), Some("acme"), None);
        assert_eq!(server.handle_line(&line, "c").code, 200);
    }
    let stats = server.handle_line("{\"op\":\"stats\",\"id\":\"s\"}\n", "c").to_line();
    let parsed = tenant_served_from_stats(&stats);
    assert_eq!(parsed, vec![("acme".to_string(), 3)]);
    server.drain();

    // A pre-QoS peer's line lacks the fields entirely: the parse yields
    // nothing rather than an error — old and new shards can share a ring.
    let old = "{\"id\":\"s\",\"code\":200,\"role\":\"serve\",\"accepted\":7,\"completed\":7}\n";
    assert!(tenant_served_from_stats(old).is_empty());

    // Half-upgraded: a `tenants` csv naming a tenant whose counter field
    // is missing contributes a zero, not a parse failure.
    let half = "{\"id\":\"s\",\"code\":200,\"tenants\":\"ghost\"}\n";
    assert_eq!(tenant_served_from_stats(half), vec![("ghost".to_string(), 0)]);
}

#[test]
fn router_aggregates_tenant_stats_and_merges_shard_metrics() {
    let shards: Vec<Arc<Server>> = (0..2)
        .map(|_| Arc::new(Server::start(ServeConfig::default())))
        .collect();
    let backends: Vec<Arc<dyn Backend>> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Arc::new(InProcBackend::new(&format!("b{i}"), Arc::clone(s))) as Arc<dyn Backend>
        })
        .collect();
    let router = Router::new(
        backends,
        RouteConfig {
            hedge_after: None,
            ..RouteConfig::default()
        },
    );

    for k in 0..8 {
        let tenant = if k % 2 == 0 { "acme" } else { "blue" };
        let line = compile_line_qos(
            &format!("t{k}"),
            "hm1",
            "yalll",
            &src(k),
            Some(tenant),
            Some("interactive"),
        );
        let resp = router.handle_line(&line, "client");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
    }

    // Stats: per-tenant served counters summed across both shards.
    let stats = router.handle_line("{\"op\":\"stats\",\"id\":\"s\"}\n", "client");
    assert_eq!(Response::field_str(&stats, "tenants").as_deref(), Some("acme,blue"));
    let acme = Response::field_num(&stats, "tenant_served_acme").unwrap_or(0);
    let blue = Response::field_num(&stats, "tenant_served_blue").unwrap_or(0);
    assert_eq!(acme + blue, 8, "every compile lands in exactly one tenant counter");
    assert_eq!(acme, 4);
    assert_eq!(blue, 4);

    // Metrics: the merged exposition validates as Prometheus text and
    // carries both the router's own series and shard-labelled series.
    let m = router.handle_line("{\"op\":\"metrics\",\"id\":\"m\"}\n", "client");
    assert_eq!(Response::field_num(&m, "code"), Some(200));
    let text = Response::field_str(&m, "text").expect("metrics text field");
    metrics::validate(&text).expect("merged exposition validates");
    assert!(text.contains("mcc_route_routed_total 8"), "{text}");
    assert!(
        text.contains("shard=\"b0\"") && text.contains("shard=\"b1\""),
        "both shards' series are folded in under their label"
    );
    assert!(
        text.contains("mcc_serve_requests_total{shard="),
        "shard serve counters survive the merge"
    );
    router.stop_probes();
}
