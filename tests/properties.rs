//! Property-based tests over the pipeline's core invariants (proptest).

use proptest::prelude::*;

use mcc::compact::{compact, Algorithm};
use mcc::core::{Compiler, CompilerOptions};
use mcc::machine::machines::{bx2, hm1, vm1, wm64};
use mcc::machine::{AluOp, ConflictModel, MachineDesc, RegRef, ShiftOp};
use mcc::mir::select::select_op;
use mcc::mir::{FuncBuilder, Operand, Term};

/// A randomly generated straight-line operation over registers R0..R7.
#[derive(Debug, Clone)]
enum GenOp {
    Ldi { d: u16, v: u16 },
    Mov { d: u16, s: u16 },
    Alu { op: u8, d: u16, a: u16, b: u16 },
    AluImm { op: u8, d: u16, a: u16, v: u16 },
    Shift { op: u8, d: u16, a: u16, n: u8 },
}

fn alu_of(code: u8) -> AluOp {
    match code % 7 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Inc,
        _ => AluOp::Not,
    }
}

fn shift_of(code: u8) -> ShiftOp {
    match code % 5 {
        0 => ShiftOp::Shl,
        1 => ShiftOp::Shr,
        2 => ShiftOp::Sar,
        3 => ShiftOp::Rol,
        _ => ShiftOp::Ror,
    }
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u16..8, any::<u16>()).prop_map(|(d, v)| GenOp::Ldi { d, v }),
        (0u16..8, 0u16..8).prop_map(|(d, s)| GenOp::Mov { d, s }),
        (any::<u8>(), 0u16..8, 0u16..8, 0u16..8)
            .prop_map(|(op, d, a, b)| GenOp::Alu { op, d, a, b }),
        (any::<u8>(), 0u16..8, 0u16..8, any::<u16>())
            .prop_map(|(op, d, a, v)| GenOp::AluImm { op, d, a, v }),
        (any::<u8>(), 0u16..8, 0u16..8, 0u8..15)
            .prop_map(|(op, d, a, n)| GenOp::Shift { op, d, a, n }),
    ]
}

fn build(m: &MachineDesc, ops: &[GenOp]) -> mcc::mir::MirFunction {
    let file = m.find_file("R").unwrap();
    let r = |i: u16| Operand::Reg(RegRef::new(file, i));
    let mut b = FuncBuilder::new("prop");
    for op in ops {
        match *op {
            GenOp::Ldi { d, v } => b.ldi(r(d), v as u64),
            GenOp::Mov { d, s } => b.mov(r(d), r(s)),
            GenOp::Alu { op, d, a, b: bb } => {
                let op = alu_of(op);
                if op.is_unary() {
                    b.alu_un(op, r(d), r(a));
                } else {
                    b.alu(op, r(d), r(a), r(bb));
                }
            }
            GenOp::AluImm { op, d, a, v } => {
                let op = alu_of(op);
                if op.is_unary() {
                    b.alu_un(op, r(d), r(a));
                } else {
                    b.alu_imm(op, r(d), r(a), v as u64);
                }
            }
            GenOp::Shift { op, d, a, n } => b.shift(shift_of(op), r(d), r(a), n as u64),
        }
    }
    // The harness seeds and reads R0..R7 externally: they are observable,
    // so compiler temporaries must not be allocated over them.
    for i in 0..8 {
        b.mark_live_out(r(i));
    }
    b.terminate(Term::Halt);
    b.finish()
}

fn run_regs(m: &MachineDesc, f: mcc::mir::MirFunction, algo: Algorithm, model: ConflictModel) -> Vec<u64> {
    let opts = CompilerOptions {
        algorithm: algo,
        model,
        ..Default::default()
    };
    let art = Compiler::with_options(m.clone(), opts).compile_mir(f).unwrap();
    let mut sim = art.simulator();
    let file = m.find_file("R").unwrap();
    for i in 0..8 {
        sim.set_reg(RegRef::new(file, i), 0x1111u64.wrapping_mul(i as u64 + 1) & 0xFFFF);
    }
    sim.run(&Default::default()).unwrap();
    (0..8).map(|i| sim.reg(RegRef::new(file, i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every compaction algorithm, under both conflict models, preserves
    /// the architectural semantics of a random straight-line block.
    #[test]
    fn compaction_preserves_semantics(ops in proptest::collection::vec(gen_op(), 1..14)) {
        let m = hm1();
        let reference = run_regs(&m, build(&m, &ops), Algorithm::Linear, ConflictModel::Coarse);
        for algo in Algorithm::ALL {
            for model in [ConflictModel::Coarse, ConflictModel::Fine] {
                let got = run_regs(&m, build(&m, &ops), algo, model);
                prop_assert_eq!(&got, &reference, "{} / {:?}", algo.name(), model);
            }
        }
    }

    /// The same programs run identically on the vertical machine (one op
    /// per instruction): machine choice must not change semantics.
    #[test]
    fn machines_agree_on_semantics(ops in proptest::collection::vec(gen_op(), 1..10)) {
        let h = run_regs(&hm1(), build(&hm1(), &ops), Algorithm::CriticalPath, ConflictModel::Fine);
        let v = run_regs(&vm1(), build(&vm1(), &ops), Algorithm::CriticalPath, ConflictModel::Fine);
        prop_assert_eq!(h, v);
    }

    /// Compaction never emits more instructions than operations, and the
    /// optimal schedule is at most as long as every heuristic's.
    #[test]
    fn optimal_is_a_lower_bound(ops in proptest::collection::vec(gen_op(), 1..10)) {
        let m = hm1();
        let f = build(&m, &ops);
        let mut f2 = f.clone();
        mcc::mir::legalize(&m, &mut f2).unwrap();
        let sel: Vec<_> = f2.blocks[0]
            .ops
            .iter()
            .map(|o| select_op(&m, o).unwrap())
            .collect();
        let best = compact(&m, &sel, Algorithm::BranchBound, ConflictModel::Fine).len();
        for algo in [Algorithm::Linear, Algorithm::CriticalPath, Algorithm::LevelPack, Algorithm::Tokoro] {
            let c = compact(&m, &sel, algo, ConflictModel::Fine);
            prop_assert!(c.len() <= sel.len());
            prop_assert!(best <= c.len(), "{} beat optimal", algo.name());
        }
    }

    /// encode → decode is the identity on every microinstruction of a
    /// compiled random block, on every machine.
    #[test]
    fn encoding_roundtrips(ops in proptest::collection::vec(gen_op(), 1..8)) {
        for m in [hm1(), vm1(), wm64(), bx2()] {
            // BX-2 has no "R" file; map register indices into G0..G7.
            let f = if m.find_file("R").is_some() {
                build(&m, &ops)
            } else {
                // Rebuild over the G file.
                let file = m.find_file("G").unwrap();
                let r = |i: u16| Operand::Reg(RegRef::new(file, i % 8));
                let mut b = FuncBuilder::new("prop");
                for op in &ops {
                    match *op {
                        GenOp::Ldi { d, v } => b.ldi(r(d), (v & 0xFF) as u64),
                        GenOp::Mov { d, s } => b.mov(r(d), r(s)),
                        GenOp::Alu { op, d, a, b: bb } => {
                            let op = alu_of(op);
                            if op.is_unary() {
                                b.alu_un(op, r(d), r(a));
                            } else {
                                b.alu(op, r(d), r(a), r(bb));
                            }
                        }
                        GenOp::AluImm { op, d, a, v } => {
                            let op = alu_of(op);
                            if op.is_unary() {
                                b.alu_un(op, r(d), r(a));
                            } else {
                                b.alu_imm(op, r(d), r(a), (v & 0xFF) as u64);
                            }
                        }
                        GenOp::Shift { op, d, a, n } => {
                            b.shift(shift_of(op), r(d), r(a), (n % 4) as u64)
                        }
                    }
                }
                b.terminate(Term::Halt);
                b.finish()
            };
            let art = Compiler::new(m.clone()).compile_mir(f).unwrap();
            for mi in art.program.flatten() {
                let w = mcc::machine::encode_instr(&m, &mi).unwrap();
                let mut back = mcc::machine::decode_instr(&m, w).unwrap();
                back.ops.sort_by_key(|o| o.template);
                let mut want = mi.clone();
                want.ops.sort_by_key(|o| o.template);
                prop_assert_eq!(back, want, "machine {}", m.name);
            }
        }
    }

    /// Decoding a bit-flipped control word either fails cleanly or yields
    /// an instruction that re-encodes to exactly the flipped word — it
    /// never panics and never silently drops the upset. With the parity
    /// check byte attached, every single-bit flip is detected outright.
    #[test]
    fn corrupted_decode_never_panics(
        ops in proptest::collection::vec(gen_op(), 1..8),
        bit in 0u32..128,
    ) {
        let m = hm1();
        let art = Compiler::new(m.clone()).compile_mir(build(&m, &ops)).unwrap();
        let bits = m.control_word_bits() as u32;
        for mi in art.program.flatten() {
            let w = mcc::machine::encode_instr(&m, &mi).unwrap();
            let flipped = w ^ (1u128 << (bit % bits));
            if let Ok(back) = mcc::machine::decode_instr(&m, flipped) {
                let again = mcc::machine::encode_instr(&m, &back).unwrap();
                prop_assert_eq!(again, flipped, "decode must be a strict inverse");
            }
            prop_assert!(matches!(
                mcc::machine::decode_checked(&m, flipped, mcc::machine::ecc_of(w)),
                Err(mcc::machine::DecodeError::EccMismatch { .. })
            ));
        }
    }

    /// Register allocation under a starvation budget computes the same
    /// values as with all registers available.
    #[test]
    fn spilling_preserves_values(
        ops in proptest::collection::vec(gen_op(), 1..12),
        budget in 3u16..6,
    ) {
        // Rebuild over virtual registers: v0..v7.
        let m = hm1();
        let mk = |_budget: Option<u16>| {
            let mut b = FuncBuilder::new("prop");
            let vs: Vec<_> = (0..8).map(|_| b.vreg()).collect();
            // Seed every vreg so results are deterministic.
            for (i, &v) in vs.iter().enumerate() {
                b.ldi(v, (0x1111 * (i as u64 + 1)) & 0xFFFF);
            }
            let r = |i: u16| Operand::Vreg(vs[i as usize]);
            for op in &ops {
                match *op {
                    GenOp::Ldi { d, v } => b.ldi(r(d), v as u64),
                    GenOp::Mov { d, s } => b.mov(r(d), r(s)),
                    GenOp::Alu { op, d, a, b: bb } => {
                        let op = alu_of(op);
                        if op.is_unary() {
                            b.alu_un(op, r(d), r(a));
                        } else {
                            b.alu(op, r(d), r(a), r(bb));
                        }
                    }
                    GenOp::AluImm { op, d, a, v } => {
                        let op = alu_of(op);
                        if op.is_unary() {
                            b.alu_un(op, r(d), r(a));
                        } else {
                            b.alu_imm(op, r(d), r(a), v as u64);
                        }
                    }
                    GenOp::Shift { op, d, a, n } => b.shift(shift_of(op), r(d), r(a), n as u64),
                }
            }
            for &v in &vs {
                b.mark_live_out(v);
            }
            b.terminate(Term::Halt);
            (b.finish(), vs)
        };

        let read = |budget: Option<u16>| -> Vec<u64> {
            let (f, vs) = mk(budget);
            let mut opts = CompilerOptions::default();
            opts.alloc.budget = budget;
            let art = Compiler::with_options(m.clone(), opts).compile_mir(f).unwrap();
            let (sim, _) = art.run().unwrap();
            vs.iter()
                .map(|&v| match art.locations.get(&v) {
                    Some(mcc::regalloc::Location::Reg(r))
                    | Some(mcc::regalloc::Location::Scratch(r)) => sim.reg(*r),
                    Some(mcc::regalloc::Location::Mem(a)) => sim.mem(*a),
                    None => 0,
                })
                .collect()
        };

        let ample = read(None);
        let tight = read(Some(budget));
        prop_assert_eq!(ample, tight);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weakest preconditions are sound: `wp(assigns, post)` holds in a
    /// state iff `post` holds after executing the assignments.
    #[test]
    fn wp_is_sound(
        seed_x in any::<u16>(),
        seed_y in any::<u16>(),
        k in any::<u16>(),
    ) {
        use mcc::verify::{parse_expr, parse_pred, wp, Assign};
        let assigns = vec![
            Assign::new("x", parse_expr("x + y").unwrap()),
            Assign::new("y", parse_expr(&format!("y ^ {k}")).unwrap()),
            Assign::new("x", parse_expr("x & y").unwrap()),
        ];
        let post = parse_pred("x <= y or x = 0").unwrap();
        let pre = wp(&assigns, &post);

        let mut env = std::collections::BTreeMap::new();
        env.insert("x".to_string(), seed_x as u64);
        env.insert("y".to_string(), seed_y as u64);
        let pre_holds = pre.eval(&env, 16);

        // Execute.
        let mut st = env.clone();
        for a in &assigns {
            let v = a.expr.eval(&st, 16);
            st.insert(a.var.clone(), v);
        }
        let post_holds = post.eval(&st, 16);
        prop_assert_eq!(pre_holds, post_holds);
    }

    /// ALU semantics agree with Rust's wrapping u16 arithmetic.
    #[test]
    fn alu_matches_u16(a in any::<u16>(), b in any::<u16>()) {
        use mcc::machine::AluOp as A;
        let cases: Vec<(A, u16)> = vec![
            (A::Add, a.wrapping_add(b)),
            (A::Sub, a.wrapping_sub(b)),
            (A::And, a & b),
            (A::Or, a | b),
            (A::Xor, a ^ b),
            (A::Nand, !(a & b)),
            (A::Nor, !(a | b)),
        ];
        for (op, want) in cases {
            let (got, _, _) = op.apply(a as u64, b as u64, false, 16);
            prop_assert_eq!(got, want as u64, "{:?}", op);
        }
        let (inc, _, _) = A::Inc.apply(a as u64, 0, false, 16);
        prop_assert_eq!(inc, a.wrapping_add(1) as u64);
        let (neg, _, _) = A::Neg.apply(a as u64, 0, false, 16);
        prop_assert_eq!(neg, a.wrapping_neg() as u64);
    }

    /// Shift semantics agree with Rust, including the UF bit.
    #[test]
    fn shifts_match_u16(a in any::<u16>(), n in 1u32..16) {
        use mcc::machine::ShiftOp as S;
        let (shl, uf) = S::Shl.apply(a as u64, n, 16);
        prop_assert_eq!(shl, (a << n) as u64);
        prop_assert_eq!(uf, (a >> (16 - n)) & 1 == 1);
        let (shr, uf) = S::Shr.apply(a as u64, n, 16);
        prop_assert_eq!(shr, (a >> n) as u64);
        prop_assert_eq!(uf, (a >> (n - 1)) & 1 == 1);
        let (rol, _) = S::Rol.apply(a as u64, n, 16);
        prop_assert_eq!(rol, a.rotate_left(n) as u64);
        let (ror, _) = S::Ror.apply(a as u64, n, 16);
        prop_assert_eq!(ror, a.rotate_right(n) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compilation is deterministic: the same generated source, compiled
    /// twice, encodes to bit-identical control-store words — for every
    /// frontend. Build caching, artifact diffing, and the differential
    /// oracle all lean on this.
    #[test]
    fn compilation_is_deterministic(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let m = hm1();
        let c = Compiler::new(m.clone());
        for lang in mcc::core::SourceLang::ALL {
            let src = mcc::fuzz::gen::generate(lang, &m, &mut StdRng::seed_from_u64(seed));
            let a = c.compile_contained(lang, &src);
            let b = c.compile_contained(lang, &src);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    let wa = a.encode().unwrap();
                    let wb = b.encode().unwrap();
                    prop_assert_eq!(wa, wb, "{} artifact bytes differ across runs", lang);
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => prop_assert!(false, "{}: accept/reject flipped: {:?} vs {:?}",
                    lang, a.is_ok(), b.is_ok()),
            }
        }
    }

    /// The shrinker's output always still satisfies the predicate it was
    /// shrinking against, and never grows the input.
    #[test]
    fn shrinker_preserves_the_failure(
        prefix in proptest::collection::vec(0u16..1000, 0..6),
        suffix in proptest::collection::vec(0u16..1000, 0..6),
        budget in 10usize..200,
    ) {
        let line = |ns: &[u16]| ns.iter()
            .map(|n| format!("word{n};"))
            .collect::<Vec<_>>()
            .join("\n");
        let src = format!("{}\nNEEDLE\n{}\n", line(&prefix), line(&suffix));
        let out = mcc::fuzz::shrink::shrink(&src, |s| s.contains("NEEDLE"), budget);
        prop_assert!(out.contains("NEEDLE"));
        prop_assert!(out.len() <= src.len());
    }

    /// Mutated (possibly wildly malformed) inputs never panic a frontend
    /// and always produce a span that fits the source.
    #[test]
    fn mutants_get_clean_diagnostics(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let m = hm1();
        let mut rng = StdRng::seed_from_u64(seed);
        for lang in mcc::core::SourceLang::ALL {
            let base = mcc::fuzz::gen::generate(lang, &m, &mut rng);
            let src = mcc::fuzz::mutate::mutate(&base, &mut rng);
            if let Err(d) = mcc::fuzz::oracle::frontend_diag(lang, &m, &src) {
                prop_assert!(!d.message.trim().is_empty(), "{}: empty diagnostic", lang);
                prop_assert!(d.span.start <= d.span.end && d.span.end <= src.len(),
                    "{}: span {}..{} outside {} bytes", lang, d.span.start, d.span.end, src.len());
            }
        }
    }
}

/// Named replays of every `cc` seed committed in
/// `tests/properties.proptest-regressions`.
///
/// The vendored proptest stub (see `vendor/proptest/src/lib.rs`) does
/// **not** read regressions files, so each saved failure case is pinned
/// here as an ordinary unit test on its recorded shrunk input, exercising
/// the same cross-algorithm / cross-machine agreement the original
/// property asserted. `regressions_file_is_fully_pinned` fails whenever a
/// new `cc` line lands without a matching named test.
mod regressions {
    use super::*;

    /// The agreement checks of `compaction_preserves_semantics` and
    /// `machines_agree_on_semantics`, on one concrete op vector.
    fn assert_semantics_agree(ops: &[GenOp]) {
        let m = hm1();
        let reference = run_regs(&m, build(&m, ops), Algorithm::Linear, ConflictModel::Coarse);
        for algo in Algorithm::ALL {
            for model in [ConflictModel::Coarse, ConflictModel::Fine] {
                let got = run_regs(&m, build(&m, ops), algo, model);
                assert_eq!(got, reference, "{} / {model:?}", algo.name());
            }
        }
        let v = run_regs(&vm1(), build(&vm1(), ops), Algorithm::CriticalPath, ConflictModel::Fine);
        assert_eq!(v, reference, "vm1 diverges from hm1");
    }

    /// cc e0dc8d20… — an ALU op whose dead result was overwritten by an
    /// immediate load reordered above it.
    #[test]
    fn cc_e0dc8d20_alu_then_ldi_reorder() {
        assert_semantics_agree(&[
            GenOp::Alu { op: 0, d: 0, a: 0, b: 0 },
            GenOp::Ldi { d: 1, v: 0 },
        ]);
    }

    /// cc 7d911b03… — a shift whose op code folds to `Sar` (52 % 5 = 2);
    /// sign-extension behaviour differed across machines.
    #[test]
    fn cc_7d911b03_sar_by_zero() {
        assert_semantics_agree(&[GenOp::Shift { op: 52, d: 0, a: 0, n: 0 }]);
    }

    /// cc a1481d30… — a move web with one register written three times;
    /// copy coalescing collapsed two distinct values.
    #[test]
    fn cc_a1481d30_move_web_coalescing() {
        assert_semantics_agree(&[
            GenOp::Mov { d: 5, s: 0 },
            GenOp::Mov { d: 5, s: 2 },
            GenOp::Mov { d: 4, s: 1 },
            GenOp::Alu { op: 0, d: 1, a: 0, b: 0 },
            GenOp::AluImm { op: 0, d: 0, a: 0, v: 0 },
            GenOp::Alu { op: 0, d: 0, a: 0, b: 0 },
            GenOp::Mov { d: 1, s: 5 },
        ]);
    }

    /// Every `cc` line in the committed regressions file has a named
    /// replay above. The count is the contract: saving a new failure case
    /// without pinning it here fails this test, because the proptest stub
    /// will never replay the file itself.
    #[test]
    fn regressions_file_is_fully_pinned() {
        const NAMED_REPLAYS: usize = 3;
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.proptest-regressions");
        let text = std::fs::read_to_string(path)
            .expect("tests/properties.proptest-regressions must stay committed");
        let cc_lines = text.lines().filter(|l| l.starts_with("cc ")).count();
        assert_eq!(
            cc_lines, NAMED_REPLAYS,
            "regressions file has {cc_lines} `cc` seeds but {NAMED_REPLAYS} named \
             replays; add a unit test for the new shrunk case"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Wire-path integrity: flipping any single byte of a checksummed
    /// envelope frame (anywhere but the frame terminator) must never be
    /// accepted as a valid frame with altered content. The only survivors
    /// allowed are content-identical ones — e.g. a hex-digit case flip in
    /// the checksum field, which parses to the same value.
    #[test]
    fn single_byte_corruption_of_an_envelope_never_changes_accepted_content(
        rid in 0u64..1_000_000u64,
        pos_pick in 0usize..100_000usize,
        xor in 1u8..=255u8,
    ) {
        use mcc::serve::proto::{parse_request, unwrap_envelope, wrap_envelope, Envelope};

        let cid = "client-7";
        let body = "{\"op\":\"compile\",\"id\":\"x\",\"machine\":\"hm1\",\"lang\":\"yalll\",\"src\":\"exit\"}";
        let frame = wrap_envelope(cid, rid, body);

        // Corrupt one byte anywhere except the trailing newline (losing
        // the terminator is a framing concern, not a checksum one), then
        // deliver what the framing layer would: the first '\n'-terminated
        // segment of the corrupted bytes.
        let mut bytes = frame.clone().into_bytes();
        let pos = pos_pick % (bytes.len() - 1);
        bytes[pos] ^= xor;
        let delivered: Vec<u8> = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]).to_vec();
        let line = String::from_utf8_lossy(&delivered).into_owned();

        match unwrap_envelope(&line) {
            Envelope::Corrupt(reason) => {
                prop_assert!(reason.starts_with("corrupt frame:"), "{reason}");
            }
            Envelope::Bare => {
                // The prefix was mangled: the line must not pass for a
                // valid bare request either.
                prop_assert!(parse_request(line.trim_end()).is_err(), "{line}");
            }
            Envelope::Enveloped { cid: c, rid: r, body: b } => {
                // Only content-identical frames may survive (e.g. a case
                // flip inside the hex checksum).
                prop_assert_eq!(c, cid.to_string());
                prop_assert_eq!(r, rid);
                prop_assert_eq!(b, body.to_string());
            }
        }
    }
}
