//! Differential protocol suite: the same server, the same seeded
//! request mix, spoken over v1 (bare newline-delimited JSON) and over v2
//! (length-prefixed binary frames, pipelined) — and the two dialects
//! must be observationally identical:
//!
//! - response bodies are byte-identical request-for-request;
//! - the compile-cache ledger moves by the same deltas (each distinct
//!   source compiled exactly once — pipelining a window of v2 requests
//!   must not double-execute anything);
//! - a hot replay over v2 is all cache hits with checksums matching the
//!   cold v1 bodies;
//! - a v1-only peer (bare lines, plus the `@mcc1` envelope) still gets
//!   correct service from the same listener that negotiates v2.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcc::serve::proto::{self, Response};
use mcc::serve::proto2::{Caps, Client, FrameType, Handshake};
use mcc::serve::tcp::serve;
use mcc::serve::{ServeConfig, Server};

const K: usize = 12;
const WINDOW: usize = 6;

fn start_server() -> (Arc<Server>, std::net::SocketAddr, Arc<AtomicBool>) {
    let server = Arc::new(Server::start(ServeConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let (s2, stop2) = (Arc::clone(&server), Arc::clone(&stop));
    std::thread::spawn(move || serve(s2, listener, stop2).unwrap());
    (server, addr, stop)
}

/// The seeded mix: K compile requests whose sources differ only in a
/// nonce comment, so each nonce range is one cold cache generation.
fn request_line(k: usize, nonce: usize) -> String {
    let src = format!("reg a = R0\nconst a, {}\nexit a\n; nonce {nonce}\n", k % 7);
    proto::compile_line(&format!("d{k}"), "hm1", "yalll", &src)
}

fn ledger(addr: std::net::SocketAddr) -> (u64, u64, u64) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    w.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    (
        Response::field_num(&line, "cache_hits").unwrap(),
        Response::field_num(&line, "cache_misses").unwrap(),
        Response::field_num(&line, "replayed").unwrap(),
    )
}

/// One v1 pass: a single connection, strict lockstep, bare lines.
fn run_v1(addr: std::net::SocketAddr, nonce_base: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    let mut out = Vec::with_capacity(K);
    for k in 0..K {
        w.write_all(request_line(k, nonce_base + k).as_bytes())
            .unwrap();
        let mut line = String::new();
        let n = r.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed mid-pass at request {k}");
        out.push(line);
    }
    out
}

/// One v2 pass: negotiated binary frames, pipelined up to WINDOW deep,
/// responses matched back to their request by rid.
fn run_v2(addr: std::net::SocketAddr, cid: &str, nonce_base: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let want = Caps { compress: true, window: WINDOW as u32 };
    let mut c = match Client::handshake(stream, Some(Duration::from_secs(10)), &want).unwrap() {
        Handshake::V2(c) => c,
        Handshake::V1Peer => panic!("the server under test must negotiate v2"),
    };
    assert!(c.caps.window >= WINDOW as u32, "window survived negotiation");

    let mut out = vec![String::new(); K];
    let mut in_flight = 0usize;
    let mut next_recv = 0usize;
    let recv_one = |c: &mut Client, out: &mut Vec<String>| {
        let f = c.recv().unwrap();
        if f.ftype == FrameType::HelloAck {
            return false;
        }
        assert_eq!(f.ftype, FrameType::Response, "unexpected frame: {f:?}");
        let k = f.rid as usize;
        assert!(out[k].is_empty(), "duplicate response for rid {k}");
        out[k] = format!("{}\n", f.body);
        true
    };
    for k in 0..K {
        while in_flight >= WINDOW {
            if recv_one(&mut c, &mut out) {
                in_flight -= 1;
                next_recv += 1;
            }
        }
        c.send(
            FrameType::Request,
            cid,
            k as u64,
            &request_line(k, nonce_base + k),
        )
        .unwrap();
        in_flight += 1;
    }
    while next_recv < K {
        if recv_one(&mut c, &mut out) {
            next_recv += 1;
        }
    }
    out
}

#[test]
fn v1_and_v2_are_observationally_identical() {
    let (server, addr, stop) = start_server();

    // Cold pass per dialect, each on its own nonce range: every request
    // is a fresh source, so the ledger isolates exactly what each
    // dialect caused.
    let (h0, m0, r0) = ledger(addr);
    let v1_bodies = run_v1(addr, 0);
    let (h1, m1, r1) = ledger(addr);
    let v2_bodies = run_v2(addr, "diff2", 1000);
    let (h2, m2, r2) = ledger(addr);

    // Byte-identical bodies: the nonce comment never reaches the
    // response, and the ids match pairwise, so the dialect is the only
    // variable — and it must not show.
    for k in 0..K {
        assert_eq!(
            v1_bodies[k], v2_bodies[k],
            "response {k} differs between v1 and v2"
        );
        assert_eq!(
            Response::field_num(&v1_bodies[k], "code"),
            Some(200),
            "request {k} failed: {}",
            v1_bodies[k]
        );
    }

    // Identical ledgers: K cold compiles per pass, no hits, and no
    // envelope replays. A double execution under v2 pipelining would
    // show as misses > K; a dropped request as misses < K.
    let v1_delta = (h1 - h0, m1 - m0, r1 - r0);
    let v2_delta = (h2 - h1, m2 - m1, r2 - r1);
    assert_eq!(v1_delta, (0, K as u64, 0), "v1 cold ledger");
    assert_eq!(v2_delta, (0, K as u64, 0), "v2 cold ledger");
    assert_eq!(v1_delta, v2_delta, "the dialects moved the cache differently");

    // Hot replay of the v1 pass's exact sources over v2: every request
    // is a cache hit, nothing recompiles, nothing is a dedup replay
    // (fresh cid), and the artifact checksums match the cold bodies.
    let hot = run_v2(addr, "diff2-hot", 0);
    let (h3, m3, r3) = ledger(addr);
    assert_eq!(
        (h3 - h2, m3 - m2, r3 - r2),
        (K as u64, 0, 0),
        "v2 hot ledger"
    );
    for k in 0..K {
        assert_eq!(Response::field_num(&hot[k], "code"), Some(200));
        assert_eq!(
            Response::field_str(&hot[k], "checksum"),
            Response::field_str(&v1_bodies[k], "checksum"),
            "hot checksum {k} diverges from the cold v1 artifact"
        );
    }

    // The enveloped v1 dialect works on the same listener too: wrapped
    // request, wrapped response, correct cid/rid echo.
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    let bare = request_line(0, 0);
    w.write_all(proto::wrap_envelope("diff-env", 42, bare.trim_end()).as_bytes())
        .unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(
        line.starts_with(proto::ENVELOPE_PREFIX),
        "enveloped request gets an enveloped response: {line}"
    );
    assert!(line.contains(" diff-env 42 "), "cid/rid echoed: {line}");
    assert_eq!(
        Response::field_num(proto::envelope_body(&line), "code"),
        Some(200)
    );

    stop.store(true, Ordering::SeqCst);
    drop(server);
}
