//! End-to-end tests for the supervised campaign runner (ISSUE 3
//! acceptance criteria): worker-count independence of the rendered
//! tables, checkpoint/resume from a torn journal without re-executing
//! finished jobs, and chaos-mode degradation that stays visible instead
//! of wedging the campaign.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use mcc::bench::campaign as bc;
use mcc::harness::{run_campaign, ChaosPlan, HarnessConfig, Job, JobStatus};

/// A scratch journal path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcc-it-{}-{}.jsonl", std::process::id(), name))
}

#[test]
fn e10_table_is_identical_for_one_and_four_workers() {
    const TRIALS: u64 = 3;
    let mut tables = Vec::new();
    for workers in [1usize, 4] {
        let cfg = HarnessConfig {
            campaign: "e10".into(),
            workers,
            ..HarnessConfig::default()
        };
        let path = scratch(&format!("e10-w{workers}"));
        let report = run_campaign(bc::e10_jobs(TRIALS), &cfg, &path, false).unwrap();
        assert_eq!(report.stats.ok, 16);
        tables.push(bc::e10_table(&report.outcomes, TRIALS));
        fs::remove_file(&path).ok();
    }
    let (a, b) = (&tables[0], &tables[1]);
    assert_eq!(a.header, b.header);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.notes, b.notes);
}

#[test]
fn resume_from_torn_journal_matches_fresh_without_rerunning_finished_jobs() {
    const TRIALS: u64 = 2;
    let cfg = HarnessConfig {
        campaign: "e10".into(),
        ..HarnessConfig::default()
    };

    let fresh_path = scratch("e10-fresh");
    let fresh = run_campaign(bc::e10_jobs(TRIALS), &cfg, &fresh_path, false).unwrap();
    assert_eq!(fresh.stats.ok, 16);

    // Simulate a mid-campaign kill: keep the header plus the first 8
    // records, then a torn half-record with no trailing newline.
    let text = fs::read_to_string(&fresh_path).unwrap();
    let mut lines = text.lines();
    let mut cut: String = lines.by_ref().take(9).collect::<Vec<_>>().join("\n");
    cut.push('\n');
    let tail = lines.next().unwrap();
    cut.push_str(&tail[..tail.len() / 2]);
    let cut_path = scratch("e10-cut");
    fs::write(&cut_path, &cut).unwrap();

    let resumed = run_campaign(bc::e10_jobs(TRIALS), &cfg, &cut_path, true).unwrap();
    assert_eq!(resumed.stats.resumed, 8, "8 journaled jobs must be replayed");
    assert_eq!(resumed.stats.executed, 8, "only the other 8 may execute");
    assert_eq!(resumed.outcomes, fresh.outcomes);

    let ta = bc::e10_table(&fresh.outcomes, TRIALS);
    let tb = bc::e10_table(&resumed.outcomes, TRIALS);
    assert_eq!(ta.rows, tb.rows);
    assert_eq!(ta.notes, tb.notes);
    fs::remove_file(&fresh_path).ok();
    fs::remove_file(&cut_path).ok();
}

#[test]
fn chaos_mode_degrades_visibly_and_still_finishes() {
    // 16 synthetic jobs over 4 breaker keys; chaos picks one key as the
    // always-failing victim, so its breaker must trip and the tail of
    // its jobs must surface as skipped/degraded rather than hang.
    let keys = ["k0", "k1", "k2", "k3"];
    let jobs: Vec<Job> = (0..16)
        .map(|i| {
            let key = keys[i % 4];
            Job::new(format!("chaos/{key}/{i}"), key, move || {
                Ok(vec![format!("cell-{i}")])
            })
        })
        .collect();
    let cfg = HarnessConfig {
        campaign: "chaos-it".into(),
        workers: 4,
        deadline: Some(Duration::from_millis(200)),
        attempts: 2,
        seed: 7,
        chaos: true,
        ..HarnessConfig::default()
    };
    let key_names: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
    let victim = ChaosPlan::new(cfg.seed, &key_names)
        .victim()
        .expect("plan picks a victim key")
        .to_string();

    let path = scratch("chaos");
    let report = run_campaign(jobs, &cfg, &path, false).unwrap();

    assert_eq!(report.outcomes.len(), 16, "every job must resolve");
    assert!(report.stats.chaos_faults > 0, "chaos must inject faults");
    assert!(report.stats.retries > 0, "failed attempts must be retried");
    assert!(report.stats.breaker_trips >= 1, "victim key must trip its breaker");
    assert_eq!(report.degraded, vec![victim.clone()]);
    for o in &report.outcomes {
        let on_victim = o.id.contains(&format!("/{victim}/"));
        if on_victim {
            assert_ne!(o.status, JobStatus::Ok, "victim jobs always fail: {}", o.id);
        } else {
            assert_eq!(o.status, JobStatus::Ok, "non-victim job failed: {}", o.id);
        }
    }

    // The chaos epilogue tears the journal tail: the file must not end
    // in a newline, yet recovery must still replay every sealed record.
    let bytes = fs::read(&path).unwrap();
    assert_ne!(bytes.last(), Some(&b'\n'), "chaos must tear the journal tail");
    fs::remove_file(&path).ok();
}
