//! Drain propagation, end to end through real processes: SIGTERM to a
//! running `mcc route` must stop admission, answer every in-flight
//! request exactly once (200 or a structured 503 — never silence),
//! propagate the drain to every backend so the whole fleet exits 0, and
//! leave cache journals whose counters prove each accepted compile
//! executed exactly once (the PR 5 drain-test accounting, lifted to the
//! fleet level).
//!
//! Single `#[test]` on purpose: this file owns three child processes
//! and their cache directories.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcc::serve::proto::{self, Response};

/// Spawns one `mcc` daemon subcommand and parses the bound address off
/// its stderr banner (`… listening on ADDR …`), then keeps draining the
/// pipe so the child can never block on it.
fn spawn_daemon(args: &[&str], envs: &[(&str, &std::path::Path)]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mcc"));
    cmd.args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("daemon spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let mut addr = None;
    while reader.read_line(&mut line).expect("banner readable") > 0 {
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
        line.clear();
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr.expect("daemon reported its address"))
}

/// Waits up to 10s for a child to exit; panics if it never does.
fn wait_exit(child: &mut Child, who: &str) -> std::process::ExitStatus {
    for _ in 0..1000 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    panic!("{who} did not exit within 10s of the drain");
}

#[test]
fn sigterm_drains_router_and_backends_answering_everything_exactly_once() {
    let base = std::env::temp_dir().join(format!("mcc-route-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let shard_dirs: Vec<_> = (0..2).map(|i| base.join(format!("shard{i}"))).collect();
    let mut fleet = Vec::new();
    for dir in &shard_dirs {
        std::fs::create_dir_all(dir).unwrap();
        fleet.push(spawn_daemon(
            &["serve", "--port", "0"],
            &[("MCC_CACHE_DIR", dir.as_path())],
        ));
    }
    let (mut router, router_addr) = spawn_daemon(
        &[
            "route",
            "--backend",
            &fleet[0].1,
            "--backend",
            &fleet[1].1,
            "--port",
            "0",
            "--hedge-ms",
            "0", // hedging duplicates compiles; off, so cache counters count exactly
        ],
        &[],
    );

    // Closed-loop clients hammer the router with distinct cold compiles
    // until their connection dies with the drained daemon.
    const CLIENTS: usize = 3;
    let stop_sending = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..CLIENTS {
        let addr = router_addr.clone();
        let stop_sending = Arc::clone(&stop_sending);
        clients.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("router accepts");
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let (mut n200, mut n503) = (0u64, 0u64);
            for i in 0..5000 {
                // After the router exits, the send or the read fails —
                // that is the clean end of this client, not a violation.
                let src = format!("reg a = R0\nconst a, {}\nadd a, a, 1\nexit a\n", t * 10_000 + i);
                let line = proto::compile_line(&format!("c{t}-{i}"), "hm1", "yalll", &src);
                if writer.write_all(line.as_bytes()).is_err() {
                    break;
                }
                let mut resp = String::new();
                match reader.read_line(&mut resp) {
                    Ok(n) if n > 0 => {}
                    _ => break,
                }
                // Every answered request resolves to exactly one
                // structured response: 200 (compiled) or 503 (draining).
                match Response::field_num(&resp, "code") {
                    Some(200) => n200 += 1,
                    Some(503) => n503 += 1,
                    other => panic!("unexpected response code {other:?}: {resp}"),
                }
                if stop_sending.load(Ordering::Relaxed) && n503 > 0 {
                    break;
                }
            }
            (n200, n503)
        }));
    }

    // Mid-burst: SIGTERM the router. It must drain itself, answer what
    // is in flight, propagate the drain to both backends, and exit 0.
    std::thread::sleep(Duration::from_millis(300));
    let term = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", router.id())])
        .status()
        .expect("kill runs");
    assert!(term.success(), "SIGTERM delivered");
    stop_sending.store(true, Ordering::Relaxed);

    let (mut n200, mut n503) = (0u64, 0u64);
    for c in clients {
        let (a, b) = c.join().expect("client thread survived the drain");
        n200 += a;
        n503 += b;
    }
    assert!(n200 > 0, "some compiles completed before the drain");

    let status = wait_exit(&mut router, "mcc route");
    assert!(status.success(), "drained router exits 0, got {status}");
    for (i, (child, _)) in fleet.iter_mut().enumerate() {
        let status = wait_exit(child, "mcc serve");
        assert!(
            status.success(),
            "drain propagated: backend {i} exits 0, got {status}"
        );
    }

    // Exactly-once accounting across the fleet: with hedging off and
    // all-distinct sources, every 200 the clients saw is exactly one
    // cache miss and one store on exactly one shard — nothing executed
    // twice, nothing executed without being answered.
    let (mut misses, mut stores) = (0u64, 0u64);
    for dir in &shard_dirs {
        let stats = mcc::cache::read_stats(dir);
        misses += stats.misses;
        stores += stats.stores;
    }
    assert_eq!(
        misses, n200,
        "each answered 200 executed exactly once across the fleet ({n503} late requests shed)"
    );
    assert_eq!(stores, n200, "each executed compile persisted exactly once");

    let _ = std::fs::remove_dir_all(&base);
}
