//! The chaos soak as a subprocess conformance test: `mcc bench-serve
//! --chaos-soak` must pass its own gates (zero drops, rejoin after
//! every kill, quarantine of the sabotaged shard) AND print a stdout
//! that is a pure function of the seed — byte-identical across client
//! and worker counts, which is exactly what the CI job diffs.
//!
//! Single `#[test]` on purpose: each soak run owns a supervised fleet
//! of child processes.

use std::process::Command;

fn run_soak(clients: &str, jobs: &str, json: &str) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcc"))
        .args([
            "bench-serve",
            "--chaos-soak",
            "--backends",
            "2",
            "--bursts",
            "4",
            "--rps",
            "75",
            "--duration-ms",
            "800",
            "--seed",
            "42",
            "--clients",
            clients,
            "--jobs",
            jobs,
            "--json",
            json,
        ])
        .output()
        .expect("bench-serve runs");
    (
        String::from_utf8(out.stdout).expect("stdout is utf-8"),
        out.status.success(),
    )
}

#[test]
fn chaos_soak_passes_its_gates_with_seed_determined_stdout() {
    let json = std::env::temp_dir().join(format!("mcc-soak-test-{}.json", std::process::id()));
    let json_str = json.to_str().expect("temp path is utf-8");

    let (stdout_a, ok_a) = run_soak("4", "2", json_str);
    assert!(ok_a, "soak run exits 0; stdout:\n{stdout_a}");

    // The gates, as printed verdicts.
    assert!(
        stdout_a.contains(
            "chaos-soak verdict: dropped=ok conformance=ok rejoins=ok quarantined=[bx] \
             healthy_quarantined=none restart_budget=ok"
        ),
        "verdict line present and clean:\n{stdout_a}"
    );
    // A seeded schedule with at least three kills, sabotage included.
    assert_eq!(
        stdout_a.matches("schedule burst=").count(),
        3,
        "three kill bursts scheduled:\n{stdout_a}"
    );
    assert!(stdout_a.contains("victim=bx"), "the sabotage shard is on the schedule");
    assert!(
        stdout_a.contains("rejoined=ok rejoin_served=ok"),
        "a killed healthy shard served again after rejoin:\n{stdout_a}"
    );
    assert!(
        stdout_a.contains("quarantined=ok"),
        "the sabotaged shard was quarantined:\n{stdout_a}"
    );

    // The report carries the soak shape and the quarantine outcome.
    let report = std::fs::read_to_string(&json).expect("JSON report written");
    assert!(report.contains("\"mode\":\"chaos-soak\""), "report mode:\n{report}");
    assert!(report.contains("\"quarantined\":[\"bx\"]"), "report quarantine:\n{report}");
    assert!(report.contains("\"p99_inflation_pct\":"), "report p99 inflation:\n{report}");

    // Determinism: different client and worker counts, identical stdout.
    let (stdout_b, ok_b) = run_soak("8", "4", json_str);
    assert!(ok_b, "second soak run exits 0");
    assert_eq!(
        stdout_a, stdout_b,
        "soak stdout is a pure function of the seed (diffed across --clients/--jobs)"
    );

    let _ = std::fs::remove_file(&json);
}
