//! Kill-one-backend-mid-burst, end to end through the real binary:
//! `mcc bench-serve --backends 3 --kill-at K` spawns a fleet of real
//! `mcc serve` children, SIGKILLs the seed-chosen victim when request K
//! is drawn, and must prove — deterministically — that no accepted
//! request was dropped, every checksum conformed, the victim's keys
//! moved to its ring successor, and overload still sheds structured
//! `503`s instead of queueing without bound.
//!
//! Single `#[test]` on purpose: the run is ~1s of wall clock and the
//! second half re-runs the identical schedule under a different client
//! count to assert the stdout contract (byte-identical across
//! `--clients` / `--jobs`) that CI also diffs.

use std::process::Command;

fn bench_kill(dir: &std::path::Path, json: &str, topology: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mcc"))
        .args([
            "bench-serve",
            "--backends",
            "3",
            "--kill-at",
            "40",
            "--rps",
            "300",
            "--duration-ms",
            "600",
            "--json",
            json,
        ])
        .args(topology)
        .current_dir(dir)
        .output()
        .expect("bench-serve runs")
}

#[test]
fn kill_mode_is_lossless_conformant_and_deterministic() {
    let dir = std::env::temp_dir().join(format!("mcc-route-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let json1 = dir.join("kill1.json");
    let out1 = bench_kill(&dir, json1.to_str().unwrap(), &["--clients", "4"]);
    let stdout1 = String::from_utf8_lossy(&out1.stdout).to_string();
    assert!(
        out1.status.success(),
        "kill bench exits 0\nstdout: {stdout1}\nstderr: {}",
        String::from_utf8_lossy(&out1.stderr)
    );
    assert!(
        stdout1.contains(
            "dropped=0 conformance=ok victim_quiesced=ok successor_takeover=ok overload_shed=ok"
        ),
        "all kill invariants hold on stdout: {stdout1}"
    );

    // The JSON report carries the timing-dependent side; the robustness
    // facts must agree with stdout.
    let report = std::fs::read_to_string(&json1).expect("JSON report written");
    assert!(report.contains("\"mode\":\"kill\""), "kill mode report: {report}");
    assert!(report.contains("\"dropped\":0"), "no dropped requests: {report}");
    assert!(report.contains("\"conformance\":\"ok\""), "conformant: {report}");
    let shed: u64 = report
        .split("\"shed\":")
        .nth(1)
        .and_then(|r| r.split(',').next())
        .and_then(|v| v.parse().ok())
        .expect("shed field parses");
    assert!(shed > 0, "overload probe shed structured 503s: {report}");

    // Same seed, different concurrency: stdout is a pure function of the
    // schedule, so it must be byte-identical.
    let json2 = dir.join("kill2.json");
    let out2 = bench_kill(&dir, json2.to_str().unwrap(), &["--clients", "1", "--jobs", "3"]);
    assert!(out2.status.success(), "second run exits 0");
    let stdout2 = String::from_utf8_lossy(&out2.stdout).to_string();
    assert_eq!(
        stdout1, stdout2,
        "kill-mode stdout is byte-identical across --clients/--jobs"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
