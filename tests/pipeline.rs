//! End-to-end integration: every frontend × every machine, through the
//! whole pipeline, with simulated results checked against references.

use mcc::core::{Compiler, CompilerOptions};
use mcc::machine::machines::{all, bx2, hm1, vm1, wm64};
use mcc::machine::ConflictModel;
use mcc::compact::Algorithm;

/// A YALLL popcount kernel that runs unchanged on all four machines.
fn popcount_src(reg0: &str, reg1: &str, reg2: &str) -> String {
    format!(
        "\
reg x = {reg0}
reg n = {reg1}
reg bit = {reg2}
const x, 0xB7
const n, 0
loop: jump done if x = 0
    move bit, x
    and bit, bit, 1
    add n, n, bit
    shr x, x, 1
    jump loop
done: exit n
"
    )
}

#[test]
fn yalll_popcount_on_all_machines() {
    for m in all() {
        let gp = if m.name == "BX-2" { "G" } else { "R" };
        let src = popcount_src(&format!("{gp}0"), &format!("{gp}1"), &format!("{gp}2"));
        let c = Compiler::new(m.clone());
        let art = c
            .compile_yalll(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let (sim, _) = art.run().unwrap();
        assert_eq!(
            art.read_symbol(&sim, "n"),
            Some(0xB7u64.count_ones() as u64),
            "popcount wrong on {}",
            m.name
        );
    }
}

#[test]
fn simpl_case_dispatch_runs() {
    // case with a real dispatch on HM-1 and a compare chain on BX-2.
    let src = "\
program c;
begin
    case R1 of
        0: 10 -> R2;
        1: 11 -> R2;
        2: 12 -> R2;
        3: 13 -> R2;
    end;
end";
    for m in [hm1(), vm1(), wm64()] {
        let name = m.name.clone();
        let r1 = m.resolve_reg_name("R1").unwrap();
        let r2 = m.resolve_reg_name("R2").unwrap();
        let art = Compiler::new(m).compile_simpl(src).unwrap();
        for sel in 0..4u64 {
            let mut sim = art.simulator();
            sim.set_reg(r1, sel);
            sim.run(&Default::default()).unwrap();
            assert_eq!(sim.reg(r2), 10 + sel, "case {sel} on {name}");
        }
    }
    // BX-2 has no dispatch: legalisation builds a compare chain.
    let m = bx2();
    let src_bx = src.replace("R1", "G1").replace("R2", "G2");
    let g1 = m.resolve_reg_name("G1").unwrap();
    let g2 = m.resolve_reg_name("G2").unwrap();
    let art = Compiler::new(m).compile_simpl(&src_bx).unwrap();
    for sel in 0..4u64 {
        let mut sim = art.simulator();
        sim.set_reg(g1, sel);
        sim.run(&Default::default()).unwrap();
        assert_eq!(sim.reg(g2), 10 + sel, "case {sel} on BX-2 chain");
    }
}

#[test]
fn empl_multiply_divide_all_machines() {
    let src = "
DECLARE A FIXED; DECLARE B FIXED;
DECLARE P FIXED; DECLARE Q FIXED; DECLARE R FIXED;
A = 123; B = 37;
P = A * B;
Q = P / B;
R = P / 100;
";
    for m in all() {
        let name = m.name.clone();
        let c = Compiler::new(m);
        let art = c.compile_empl(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (sim, _) = art.run().unwrap();
        assert_eq!(art.read_symbol(&sim, "P"), Some(123 * 37), "{name}");
        assert_eq!(art.read_symbol(&sim, "Q"), Some(123), "{name}");
        assert_eq!(art.read_symbol(&sim, "R"), Some(123 * 37 / 100), "{name}");
        assert_eq!(art.read_symbol(&sim, "ERROR"), Some(0), "{name}");
    }
}

#[test]
fn empl_divide_by_zero_sets_error() {
    let src = "DECLARE A FIXED; DECLARE B FIXED; DECLARE C FIXED; A = 5; B = 0; C = A / B;";
    let art = Compiler::new(hm1()).compile_empl(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "ERROR"), Some(1));
}

#[test]
fn sstar_tuple_fields_roundtrip() {
    let src = "\
program t;
var ir: tuple opcode: seq [15..12] bit; addr: seq [11..0] bit; end with R4;
var o: seq [15..0] bit with R1, a: seq [15..0] bit with R2;
begin
    ir.opcode := 9;
    ir.addr := 0x123;
    o := ir.opcode;
    a := ir.addr;
end";
    let m = hm1();
    let art = Compiler::new(m).compile_sstar(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "o"), Some(9));
    assert_eq!(art.read_symbol(&sim, "a"), Some(0x123));
    // The packed register holds both fields.
    assert_eq!(art.read_symbol(&sim, "ir"), Some((9 << 12) | 0x123));
}

#[test]
fn every_algorithm_produces_equivalent_code() {
    // One nontrivial kernel, every algorithm × model: identical
    // architectural results, possibly different code size.
    let src = "\
program k;
begin
    R1 + R2 -> R3;
    R1 & R2 -> R4;
    R3 | R4 -> R5;
    R2 shr 2 -> R6;
    R6 + R5 -> R7;
    R1 ^ R7 -> R8;
end";
    let m = hm1();
    let regs: Vec<_> = (1..=8)
        .map(|i| m.resolve_reg_name(&format!("R{i}")).unwrap())
        .collect();
    let mut reference: Option<Vec<u64>> = None;
    let mut sizes = Vec::new();
    for algo in Algorithm::ALL {
        for model in [ConflictModel::Coarse, ConflictModel::Fine] {
            let opts = CompilerOptions {
                algorithm: algo,
                model,
                ..Default::default()
            };
            let art = Compiler::with_options(m.clone(), opts)
                .compile_simpl(src)
                .unwrap();
            let mut sim = art.simulator();
            sim.set_reg(regs[0], 0xAAAA);
            sim.set_reg(regs[1], 0x0F0F);
            sim.run(&Default::default()).unwrap();
            let state: Vec<u64> = regs.iter().map(|&r| sim.reg(r)).collect();
            match &reference {
                None => reference = Some(state),
                Some(want) => assert_eq!(
                    &state,
                    want,
                    "{:?}/{:?} changed semantics",
                    algo,
                    model
                ),
            }
            sizes.push((algo.name(), model, art.stats.micro_instrs));
        }
    }
    // The optimal schedule is never larger than linear's.
    let linear = sizes
        .iter()
        .find(|(n, m, _)| *n == "linear" && *m == ConflictModel::Fine)
        .unwrap()
        .2;
    let optimal = sizes
        .iter()
        .find(|(n, m, _)| *n == "optimal" && *m == ConflictModel::Fine)
        .unwrap()
        .2;
    assert!(optimal <= linear, "{sizes:?}");
}

#[test]
fn spills_preserve_semantics_under_tiny_budget() {
    // Twelve live sums forced through 4 registers.
    let mut src = String::from("DECLARE T FIXED;\n");
    for i in 0..12 {
        src.push_str(&format!("DECLARE V{i} FIXED;\n"));
    }
    for i in 0..12 {
        src.push_str(&format!("V{i} = {};\n", i * 3 + 1));
    }
    src.push_str("T = 0;\n");
    for i in 0..12 {
        src.push_str(&format!("T = T + V{i};\n"));
    }
    let want: u64 = (0..12).map(|i| i * 3 + 1).sum();

    let mut opts = CompilerOptions::default();
    opts.alloc.budget = Some(4);
    let art = Compiler::with_options(hm1(), opts).compile_empl(&src).unwrap();
    assert!(art.stats.spills > 0, "a 4-register budget must spill");
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "T"), Some(want));
}

#[test]
fn simpl_proc_call_and_for_loop() {
    let src = "\
program p;
proc addone;
begin R2 + 1 -> R2; end;
begin
    0 -> R2;
    for R1 := 1 to 5 do call addone;
end";
    let m = hm1();
    let r2 = m.resolve_reg_name("R2").unwrap();
    let art = Compiler::new(m).compile_simpl(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(sim.reg(r2), 5);
}

#[test]
fn wide_constants_work_on_narrow_machines() {
    // BX-2's 8-bit immediate path: 0xABCD must still arrive intact.
    let art = Compiler::new(bx2())
        .compile_yalll("reg x = G0\nconst x, 0xABCD\nexit x\n")
        .unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "x"), Some(0xABCD));
}

#[test]
fn encoding_roundtrips_for_compiled_kernels() {
    use mcc::machine::{decode_instr, encode_instr};
    let src = "\
program k;
begin
    R1 + R2 -> R3;
    while R3 <> 0 do R3 shr 1 -> R3;
end";
    for m in [hm1(), vm1(), wm64()] {
        let art = Compiler::new(m.clone()).compile_simpl(src).unwrap();
        for mi in art.program.flatten() {
            let w = encode_instr(&m, &mi).unwrap();
            let mut back = decode_instr(&m, w).unwrap();
            back.ops.sort_by_key(|o| o.template);
            let mut want = mi.clone();
            want.ops.sort_by_key(|o| o.template);
            assert_eq!(back, want, "roundtrip failed on {}", m.name);
        }
    }
}

#[test]
fn micro_subroutines_nest() {
    let src = "\
reg x = R0
call a
exit x
a: const x, 1
call b
inc x
ret
b: add x, x, 10
ret
";
    let art = Compiler::new(hm1()).compile_yalll(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "x"), Some(12));
}

#[test]
fn wm64_unit_choice_never_breaks_flag_semantics() {
    // Two back-to-back comparisons with an intervening independent add:
    // the compactor must not realise the flag-producing subtraction on
    // the flag-free second ALU just because the first is busy.
    let src = "\
reg a = R0
reg b = R1
reg c = R2
reg d = R3
const a, 5
const b, 5
const c, 1
add d, c, c
jump eq if a = b
const c, 99
eq: exit c
";
    let m = mcc::machine::machines::wm64();
    let art = Compiler::new(m).compile_yalll(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "c"), Some(1), "a = b must be taken");
}

#[test]
fn dead_flags_unlock_alu_shifter_packing() {
    // Independent add and shift: both write flags by default (output
    // dependence through the single flags register, §2.1.3), but when no
    // branch observes them the dead-flag pass frees the `.nf` variants
    // and they share one microinstruction.
    let src = "\
program k;
begin
    R1 + R2 -> R3;
    R4 shr 1 -> R5;
    R6 + R7 -> R0;
end";
    let m = hm1();
    let art = Compiler::new(m.clone()).compile_simpl(src).unwrap();
    assert!(art.stats.dead_flags >= 2, "{:?}", art.stats);
    // add ∥ shr in one MI, second add separately (one ALU): ≤ 2 body MIs
    // + halt.
    assert!(
        art.stats.micro_instrs <= 3,
        "expected packing, got {} MIs",
        art.stats.micro_instrs
    );
    // Semantics intact.
    let mut sim = art.simulator();
    sim.set_reg(m.resolve_reg_name("R1").unwrap(), 5);
    sim.set_reg(m.resolve_reg_name("R2").unwrap(), 6);
    sim.set_reg(m.resolve_reg_name("R4").unwrap(), 8);
    sim.run(&Default::default()).unwrap();
    assert_eq!(sim.reg(m.resolve_reg_name("R3").unwrap()), 11);
    assert_eq!(sim.reg(m.resolve_reg_name("R5").unwrap()), 4);
}

#[test]
fn flag_consumers_keep_flagful_forms() {
    // The compare feeding the branch must keep its flags even though an
    // independent shift sits between them.
    let src = "\
program k;
begin
    R1 - R2 -> R3;
    if UF = 1 then 7 -> R4;
end";
    // UF comes from a shift, so make a realistic one:
    let src2 = "\
program k;
begin
    R1 shr 1 -> R1;
    if UF = 1 then 7 -> R4 else 9 -> R4;
end";
    let _ = src;
    let m = hm1();
    let art = Compiler::new(m.clone()).compile_simpl(src2).unwrap();
    let mut sim = art.simulator();
    sim.set_reg(m.resolve_reg_name("R1").unwrap(), 0b11);
    sim.run(&Default::default()).unwrap();
    assert_eq!(sim.reg(m.resolve_reg_name("R4").unwrap()), 7);
    let mut sim = art.simulator();
    sim.set_reg(m.resolve_reg_name("R1").unwrap(), 0b10);
    sim.run(&Default::default()).unwrap();
    assert_eq!(sim.reg(m.resolve_reg_name("R4").unwrap()), 9);
}
