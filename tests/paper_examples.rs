//! The survey's own example programs, end to end — the strongest fidelity
//! evidence the repository can offer: the paper's §2.2.1/§2.2.3/§2.2.4
//! programs compile and compute correct results on the reference machines.

use mcc::core::Compiler;
use mcc::machine::machines::{bx2, hm1};
use mcc::sim::SimOptions;

/// §2.2.1 — SIMPL floating-point multiply (adapted to 16-bit fields:
/// sign 1 · exponent 5 · mantissa 10), checked against a Rust model of the
/// identical algorithm.
#[test]
fn simpl_fp_multiply() {
    const SRC: &str = "\
program fpmul;
const M3 = 0x7C00;
const M4 = 0x03FF;
begin
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    0 -> ACC;
    while R2 <> 0 do
    begin
        ACC shr 1 -> ACC;
        R2 shr 1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    R3 | ACC -> R3;
end";

    fn reference(r1: u16, r2: u16) -> u16 {
        const M3: u16 = 0x7C00;
        const M4: u16 = 0x03FF;
        let mut r3 = (r1 & M3).wrapping_add(r2 & M3);
        let m1 = r1 & M4;
        let mut m2 = r2 & M4;
        let mut acc: u16 = 0;
        while m2 != 0 {
            let uf = m2 & 1 != 0;
            acc >>= 1;
            m2 >>= 1;
            if uf {
                acc = acc.wrapping_add(m1);
            }
        }
        r3 |= acc;
        r3
    }

    let m = hm1();
    let art = Compiler::new(m.clone()).compile_simpl(SRC).unwrap();
    let (r1, r2, r3) = (
        m.resolve_reg_name("R1").unwrap(),
        m.resolve_reg_name("R2").unwrap(),
        m.resolve_reg_name("R3").unwrap(),
    );
    for (a, b) in [
        ((15 << 10) | 0b11_0000_0000u16, (16 << 10) | 0b01_0000_0000u16),
        ((14 << 10) | 0x155, (17 << 10) | 0x2AA),
        ((15 << 10) | 0x001, (15 << 10) | 0x3FF),
    ] {
        let mut sim = art.simulator();
        sim.set_reg(r1, a as u64);
        sim.set_reg(r2, b as u64);
        sim.run(&SimOptions::default()).unwrap();
        assert_eq!(sim.reg(r3) as u16, reference(a, b), "{a:#x} × {b:#x}");
    }
}

/// §2.2.3 — the S\* MPY program (multiplication by repeated addition with
/// `cocycle`/`cobegin`), checked for 6 × 7 = 42. The paper's cobegin
/// groups cannot co-schedule on HM-1's single move bus, so this version
/// keeps the cocycle structure with sequential moves — the very judgement
/// call the paper says an S\* programmer must make ("the programmer must
/// have intimate knowledge of the specific machine").
#[test]
fn sstar_mpy() {
    const SRC: &str = "\
program mpy;
var localstore: array [0..31] of seq [15..0] bit with LS;
const minus1 = 0xFFFF;
var left_alu_in: seq [15..0] bit with R1;
var right_alu_in: seq [15..0] bit with R2;
var aluout: seq [15..0] bit with R3;
syn mpr = localstore[0],
    mpnd = localstore[1],
    product = localstore[2];
begin
    mpr := 6;
    mpnd := 7;
    product := 0;
    repeat
        cocycle
            left_alu_in := product;
            right_alu_in := mpnd;
            aluout := left_alu_in + right_alu_in;
            product := aluout
        end;
        cocycle
            left_alu_in := mpr;
            right_alu_in := minus1;
            aluout := left_alu_in + right_alu_in;
            mpr := aluout
        end
    until aluout = 0;
end";
    let art = Compiler::new(hm1()).compile_sstar(SRC).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "product"), Some(42));
    assert_eq!(art.read_symbol(&sim, "mpr"), Some(0));
}

/// §2.2.4 — the YALLL transliteration program, on both machine roles,
/// differing "only in the declaration part" exactly as the paper reports.
#[test]
fn yalll_transliterate_two_machines() {
    const BODY: &str = "\
loop: load char, str
    jump out if char = 0
    add addr, char, tbl
    load char, addr
    stor char, str
    add str, str, 1
    jump loop
out: exit
";
    for (m, header) in [
        (
            hm1(),
            "reg str = R1\nreg tbl = R2\nreg char = R3\nreg addr = R4\nconst str, 0x100\nconst tbl, 0x200\n",
        ),
        (
            bx2(),
            "reg str = G1\nreg tbl = G2\nreg char = G3\nreg addr = G4\nconst str, 0x100\nconst tbl, 0x200\n",
        ),
    ] {
        let name = m.name.clone();
        let art = Compiler::new(m)
            .compile_yalll(&format!("{header}{BODY}"))
            .unwrap();
        let mut sim = art.simulator();
        for (i, &c) in b"MICROCODE".iter().enumerate() {
            sim.set_mem(0x100 + i as u64, c as u64);
        }
        sim.set_mem(0x100 + 9, 0);
        for c in 0..=255u64 {
            let mapped = if (65..=90).contains(&c) { c + 32 } else { c };
            sim.set_mem(0x200 + c, mapped);
        }
        sim.run(&SimOptions::default()).unwrap();
        let out: Vec<u8> = (0..9).map(|i| sim.mem(0x100 + i) as u8).collect();
        assert_eq!(&out, b"microcode", "on {name}");
    }
}

/// §2.2.2 — the EMPL STACK extension statement, with the paper's overflow
/// and underflow guards exercised.
#[test]
fn empl_stack_guards() {
    const SRC: &str = "
TYPE STACK
  DECLARE STK(16) FIXED;
  DECLARE STKPTR FIXED;
  INITIALLY DO; STKPTR = 0; END;
  PUSH: OPERATION ACCEPTS (VALUE);
    MICROOP PUSH 3 0;
    IF STKPTR = 16 THEN ERROR;
    ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END;
  END;
  POP: OPERATION RETURNS (VALUE);
    MICROOP POP 3 0;
    IF STKPTR = 0 THEN ERROR;
    ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END;
  END;
ENDTYPE;
DECLARE ADDRESS_STK STACK;
DECLARE X FIXED; DECLARE Y FIXED;
X = 11;
PUSH(ADDRESS_STK, X);
X = 22;
PUSH(ADDRESS_STK, X);
Y = POP(ADDRESS_STK);
X = POP(ADDRESS_STK);
";
    let art = Compiler::new(hm1()).compile_empl(SRC).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "Y"), Some(22));
    assert_eq!(art.read_symbol(&sim, "X"), Some(11));
    assert_eq!(art.read_symbol(&sim, "ERROR"), Some(0));

    // Underflow trips the guard.
    let under = "
TYPE S
  DECLARE A(4) FIXED;
  DECLARE P FIXED;
  INITIALLY DO; P = 0; END;
  POP: OPERATION RETURNS (V);
    IF P = 0 THEN ERROR; ELSE DO; V = A(P); P = P - 1; END;
  END;
ENDTYPE;
DECLARE T S;
DECLARE X FIXED;
X = POP(T);
";
    let art = Compiler::new(hm1()).compile_empl(under).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "ERROR"), Some(1));
}
