//! Golden wire fixtures: the exact bytes of representative v2 frames,
//! pinned as hex dumps under `tests/golden/wire/`.
//!
//! The codec battery (`tests/proto2_battery.rs`) proves encode∘decode
//! identity for arbitrary frames; these fixtures pin the *layout* — a
//! byte moved, a field reordered, or a changed varint encoding shows up
//! as a diff against the committed dump even though identity still
//! holds. That is what keeps an old client talking to a new server.
//!
//! To regenerate after an intentional layout change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_wire
//! ```

use std::fs;
use std::path::PathBuf;

use mcc::serve::proto2::{
    decode_frame, encode_frame, hello_body, hexdump, negotiate, Caps, FrameType,
    COMPRESS_MIN_BYTES,
};

fn wire_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wire")
}

fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn first_divergence(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("line {}: expected `{w}`, got `{g}`", i + 1);
        }
    }
    format!(
        "line counts differ: expected {}, got {}",
        want.lines().count(),
        got.lines().count()
    )
}

/// The pinned frames. Every entry is deterministic: fixed capability
/// offers, fixed cid/rid, and bodies built from pure functions.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let offer = Caps { compress: true, window: 16 };
    let mut out = Vec::new();

    let mut hello = Vec::new();
    encode_frame(&mut hello, FrameType::Hello, "", 0, &hello_body(&offer), None);
    out.push(("hello", hello));

    let mut ack = Vec::new();
    encode_frame(
        &mut ack,
        FrameType::HelloAck,
        "",
        0,
        &hello_body(&negotiate(&offer)),
        None,
    );
    out.push(("hello_ack", ack));

    let body = mcc::serve::proto::compile_line(
        "g1",
        "hm1",
        "yalll",
        "reg a = R0\nconst a, 3\nexit a\n",
    );
    let mut request = Vec::new();
    // Client::send strips the line terminator before framing; mirror it.
    encode_frame(
        &mut request,
        FrameType::Request,
        "golden",
        7,
        body.trim_end_matches('\n'),
        None,
    );
    out.push(("request", request));

    let mut response = Vec::new();
    encode_frame(
        &mut response,
        FrameType::Response,
        "golden",
        7,
        "{\"id\":\"g1\",\"code\":\"200\",\"tier\":\"0\",\"checksum\":\"00e570d682fa4ce1\"}",
        None,
    );
    out.push(("response", response));

    let mut error = Vec::new();
    encode_frame(
        &mut error,
        FrameType::Error,
        "",
        0,
        "{\"code\":\"400\",\"error\":\"declared frame length exceeds cap\"}",
        None,
    );
    out.push(("error", error));

    // A body long and repetitive enough that the threshold-gated
    // compressor always keeps the compressed payload.
    let padded = format!(
        "{}; {}",
        body.trim_end_matches('\n'),
        "pad pad pad pad ".repeat(COMPRESS_MIN_BYTES / 16 + 1)
    );
    let mut compressed = Vec::new();
    let squeezed = encode_frame(
        &mut compressed,
        FrameType::Request,
        "golden",
        8,
        &padded,
        Some(COMPRESS_MIN_BYTES),
    );
    assert!(squeezed, "the padded fixture body must take the compressed arm");
    out.push(("compressed", compressed));

    out
}

#[test]
fn wire_frames_match_goldens() {
    let update = update_requested();
    let mut failures = Vec::new();

    for (name, bytes) in fixtures() {
        // Whatever we pin must itself decode: a fixture that the decoder
        // refuses would freeze a broken layout into the suite.
        let (frame, used) =
            decode_frame(&bytes).unwrap_or_else(|e| panic!("{name}: fixture does not decode: {e:?}"));
        assert_eq!(used, bytes.len(), "{name}: trailing bytes after the frame");
        assert!(!frame.body.is_empty(), "{name}: every fixture carries a body");

        let dump = hexdump(&bytes);
        let path = wire_dir().join(format!("{name}.hex"));
        if update {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &dump).unwrap();
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want == dump => {}
            Ok(want) => failures.push(format!(
                "{name}: frame bytes diverge from {} ({}); run UPDATE_GOLDEN=1 if intentional",
                path.display(),
                first_divergence(&want, &dump)
            )),
            Err(e) => failures.push(format!(
                "{name}: cannot read {} ({e}); run UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }

    assert!(
        failures.is_empty(),
        "wire golden failures:\n  {}",
        failures.join("\n  ")
    );
}

/// The committed dumps round-trip through the decoder: parse the hex
/// back to bytes and decode. This catches a hand-edited fixture (or a
/// decoder regression against pinned history) independently of the
/// encoder path above.
#[test]
fn committed_wire_goldens_decode() {
    let update = update_requested();
    for (name, bytes) in fixtures() {
        let path = wire_dir().join(format!("{name}.hex"));
        let Ok(dump) = fs::read_to_string(&path) else {
            assert!(
                update,
                "{}: missing; run UPDATE_GOLDEN=1 to create it",
                path.display()
            );
            continue;
        };
        let parsed: Vec<u8> = dump
            .split_whitespace()
            .map(|h| {
                u8::from_str_radix(h, 16)
                    .unwrap_or_else(|e| panic!("{name}: bad hex byte `{h}`: {e}"))
            })
            .collect();
        let (committed, used) = decode_frame(&parsed)
            .unwrap_or_else(|e| panic!("{name}: committed fixture does not decode: {e:?}"));
        assert_eq!(used, parsed.len(), "{name}: committed fixture has trailing bytes");

        let (expected, _) = decode_frame(&bytes).unwrap();
        assert_eq!(
            committed, expected,
            "{name}: committed fixture decodes to different content"
        );
    }
}

/// The wire fixture directory must not accumulate stale files.
#[test]
fn no_orphan_wire_goldens() {
    let Ok(entries) = fs::read_dir(wire_dir()) else {
        return;
    };
    let known: Vec<String> = fixtures()
        .iter()
        .map(|(name, _)| format!("{name}.hex"))
        .collect();
    for e in entries {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            known.contains(&name),
            "tests/golden/wire/{name} does not match any pinned fixture"
        );
    }
}

/// Layout sanity pinned as plain assertions (readable without hex): the
/// magic pair, the version byte, and the frame-type byte lead every
/// fixture, and only the compressed fixture sets the compression flag.
#[test]
fn fixture_headers_carry_magic_version_type_flags() {
    for (name, bytes) in fixtures() {
        assert_eq!(&bytes[..2], &[0xB5, 0x32], "{name}: magic");
        assert_eq!(bytes[2], 0x02, "{name}: version");
        let expected_flags = u8::from(name == "compressed");
        assert_eq!(bytes[4], expected_flags, "{name}: flags byte");
        let frame = decode_frame(&bytes).unwrap().0;
        let expected_type = match frame.ftype {
            FrameType::Hello => 1,
            FrameType::HelloAck => 2,
            FrameType::Request => 3,
            FrameType::Response => 4,
            FrameType::Error => 5,
        };
        assert_eq!(bytes[3], expected_type, "{name}: type byte");
    }
}
