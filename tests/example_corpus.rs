//! The paper-example corpus: every program source under `examples/`
//! (SIMPL `.sim`, EMPL `.emp`, S* `.ss`, YALLL `.yll`) compiles — through
//! the compilation cache, like every other entry point — simulates to a
//! halt, and lands in exactly the expected final machine state.
//!
//! The manifest below is authoritative in both directions: a corpus file
//! without an entry fails the test (new example programs must be pinned
//! when added), and an entry without a file fails too (the corpus cannot
//! silently shrink).

use std::collections::BTreeSet;
use std::path::PathBuf;

use mcc::core::{Compiler, SourceLang};
use mcc::machine::machines::hm1;
use mcc::sim::SimOptions;

/// What to assert after the program halts: named language-level symbols
/// (registers or memory cells the artifact's symbol maps expose) and raw
/// machine registers (SIMPL operates on machine registers directly and
/// exports no symbols).
struct Expect {
    file: &'static str,
    symbols: &'static [(&'static str, u64)],
    registers: &'static [(&'static str, u64)],
}

const MANIFEST: &[Expect] = &[
    Expect {
        // Euclid's gcd(252, 105) from the README quickstart.
        file: "gcd.yll",
        symbols: &[("a", 21), ("b", 0), ("t", 0)],
        registers: &[],
    },
    Expect {
        // 5+4+3+2+1 with a counted-down loop.
        file: "countdown.yll",
        symbols: &[("a", 0), ("t", 15)],
        registers: &[],
    },
    Expect {
        // Accumulate 1..5 with a SIMPL for loop.
        file: "sum_loop.sim",
        symbols: &[],
        registers: &[("R2", 15)],
    },
    Expect {
        // §2.2.1 floating-point multiply, operands 0x4248 × 0x3E00;
        // the expected packed result follows the Rust reference model
        // in tests/paper_examples.rs.
        file: "fp_multiply.sim",
        symbols: &[],
        registers: &[("R3", 0x7E48)],
    },
    Expect {
        // §2.2.2 EMPL stack extension type: push/pop round-trips 6*7.
        file: "stack.emp",
        symbols: &[
            ("X", 6),
            ("Y", 7),
            ("Z", 42),
            ("ERROR", 0),
            ("ADDRESS_STK.STKPTR", 0),
        ],
        registers: &[],
    },
    Expect {
        // EMPL fixed-point array indexing read back through a scalar.
        file: "array.emp",
        symbols: &[("I", 7), ("ERROR", 0)],
        registers: &[],
    },
    Expect {
        // §2.2.3 S* multiply by repeated addition: 6 × 7 = 42, with the
        // multiplier counted down to zero and no assertion failures.
        file: "mpy.ss",
        symbols: &[("product", 42), ("mpr", 0), ("mpnd", 7), ("ASSERT", 0)],
        registers: &[],
    },
    Expect {
        // Smallest S* program with a WP-verified assertion.
        file: "assign.ss",
        symbols: &[("x", 3), ("ASSERT", 0)],
        registers: &[],
    },
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples")
}

#[test]
fn every_example_program_reaches_its_expected_state() {
    let m = hm1();
    let compiler = Compiler::new(m.clone());

    for e in MANIFEST {
        let path = corpus_dir().join(e.file);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
        let ext = e.file.rsplit('.').next().unwrap();
        let lang = SourceLang::from_name(ext)
            .unwrap_or_else(|| panic!("{}: unknown extension", e.file));

        let art = mcc::cache::compile_cached(&compiler, lang, &src, mcc::cache::Persist::Memory)
            .unwrap_or_else(|err| panic!("{}: {err}", e.file));
        let mut sim = art.simulator();
        sim.run(&SimOptions::default())
            .unwrap_or_else(|err| panic!("{}: simulation failed: {err}", e.file));

        for &(name, want) in e.symbols {
            let got = art
                .read_symbol(&sim, name)
                .unwrap_or_else(|| panic!("{}: no symbol `{name}`", e.file));
            assert_eq!(got, want, "{}: symbol `{name}`", e.file);
        }
        for &(name, want) in e.registers {
            let r = m
                .resolve_reg_name(name)
                .unwrap_or_else(|| panic!("{}: no register `{name}` on {}", e.file, m.name));
            assert_eq!(sim.reg(r), want, "{}: register {name}", e.file);
        }
    }
}

/// The manifest and the directory must agree exactly.
#[test]
fn corpus_and_manifest_cover_each_other() {
    let on_disk: BTreeSet<String> = std::fs::read_dir(corpus_dir())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| {
            matches!(
                n.rsplit('.').next(),
                Some("sim") | Some("emp") | Some("ss") | Some("yll")
            )
        })
        .collect();
    let in_manifest: BTreeSet<String> =
        MANIFEST.iter().map(|e| e.file.to_string()).collect();
    assert_eq!(
        on_disk, in_manifest,
        "examples/ and the corpus manifest disagree: add new programs to \
         the manifest with their expected final state"
    );
}
