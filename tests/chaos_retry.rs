//! Exactly-once over real TCP: a fault-injecting proxy kills the
//! connection *after* the server executed the compile but *before* the
//! client could read the response. The hardened client retries the same
//! frame — same request id — and the server's idempotency window must
//! replay the recorded response instead of compiling a second time.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcc::chaosnet::{ChaosProxy, Fault, FaultPlan};
use mcc::route::{Backend, TcpBackend};
use mcc::serve::proto::{self, Response};
use mcc::serve::{tcp, ServeConfig, Server};

#[test]
fn reset_after_execution_is_replayed_not_reexecuted() {
    let server = Arc::new(Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let server_addr = listener.local_addr().unwrap().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
        std::thread::spawn(move || {
            let _ = tcp::serve(server, listener, stop);
        })
    };

    // Frame numbering counts request frames only: frame 0 is the clean
    // warm-up ping, frame 1 — the compile — is executed upstream but its
    // response dies with the connection, frame 2 (the retry) is clean.
    let proxy_listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let mut proxy = ChaosProxy::start_with(
        proxy_listener,
        &server_addr,
        Box::new(|n| (n == 1).then_some(Fault::ResetPostWrite)),
        0,
        FaultPlan::default(),
    )
    .expect("start proxy");

    let backend = TcpBackend::new("b0", proxy.addr(), 1, 3)
        .with_wire(Some(Duration::from_secs(2)), 2);

    let ping = backend.call("{\"op\":\"ping\"}\n", "t").expect("warm-up ping");
    assert_eq!(Response::field_num(&ping, "code"), Some(200), "{ping}");

    // A source no other test compiles (the nonce comment carries the
    // process id), so this request is a genuine cold execution.
    let src = format!(
        "reg x = R0\nconst x, 200\nsub x, x, 100\nexit x\n; nonce pid-{}\n",
        std::process::id()
    );
    let bare = proto::compile_line("t-1", "hm1", "yalll", &src);
    let frame = proto::wrap_envelope("t", 7, bare.trim_end());

    let resp = backend.call(&frame, "t").expect("compile survives the reset");
    assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
    assert!(Response::field_str(&resp, "checksum").is_some(), "{resp}");

    let c = server.counters();
    assert_eq!(
        c.accepted.load(Ordering::Relaxed),
        1,
        "the compile must be admitted exactly once"
    );
    assert_eq!(
        c.completed.load(Ordering::Relaxed),
        1,
        "the compile must execute exactly once"
    );
    assert_eq!(
        c.replayed.load(Ordering::Relaxed),
        1,
        "the retry must be served from the idempotency window"
    );

    // The injected fault really happened — the proxy counted it.
    assert!(
        proxy.injected().iter().any(|&(kind, n)| kind == "reset-post-write" && n == 1),
        "{:?}",
        proxy.injected()
    );

    proxy.stop();
    stop.store(true, Ordering::SeqCst);
    let _ = acceptor.join();
    server.drain();
}
