//! Property-based tests over the WFQ intake queue (proptest): work
//! conservation, per-tenant FIFO, convergence to weighted shares under
//! an adversarial mix, and a starvation regression.

use proptest::prelude::*;

use mcc::serve::{Class, WfqQueue};

/// One adversarial push: which tenant, which class.
#[derive(Debug, Clone)]
struct Push {
    tenant: usize,
    class: Class,
}

fn gen_class() -> impl Strategy<Value = Class> {
    prop_oneof![
        Just(Class::Interactive),
        Just(Class::Batch),
        Just(Class::Background),
    ]
}

fn gen_push(tenants: usize) -> impl Strategy<Value = Push> {
    (0..tenants, gen_class()).prop_map(|(tenant, class)| Push { tenant, class })
}

/// Builds a queue with tenants `t0..tn` at the given weights.
fn queue(weights: &[u32]) -> WfqQueue<usize> {
    let named: Vec<(String, u32)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| (format!("t{i}"), *w))
        .collect();
    WfqQueue::new(1, &named)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work conservation: as long as anything is queued, `pop` yields it;
    /// every push comes back out exactly once.
    #[test]
    fn wfq_is_work_conserving(
        pushes in proptest::collection::vec(gen_push(4), 1..200),
        weights in proptest::collection::vec(1u32..16, 4..5),
    ) {
        let mut q = queue(&weights);
        for (i, p) in pushes.iter().enumerate() {
            q.push(&format!("t{}", p.tenant), p.class, i as u64, i);
        }
        let mut seen = vec![false; pushes.len()];
        while !q.is_empty() {
            let (_, payload) = q.pop().expect("non-empty queue pops");
            prop_assert!(!seen[payload], "payload {payload} popped twice");
            seen[payload] = true;
        }
        prop_assert!(q.pop().is_none());
        prop_assert!(seen.iter().all(|s| *s), "a push never popped");
    }

    /// Within one tenant, service order is arrival order — across classes
    /// too: a tenant's background request enqueued first still precedes
    /// its later interactive request (WFQ is fair *between* tenants; a
    /// tenant's own lane is strict FIFO).
    #[test]
    fn wfq_never_reorders_within_a_tenant(
        pushes in proptest::collection::vec(gen_push(3), 1..150),
        weights in proptest::collection::vec(1u32..8, 3..4),
    ) {
        let mut q = queue(&weights);
        for (i, p) in pushes.iter().enumerate() {
            q.push(&format!("t{}", p.tenant), p.class, i as u64, i);
        }
        let mut last: Vec<Option<usize>> = vec![None; 3];
        while let Some((_, payload)) = q.pop() {
            let t = pushes[payload].tenant;
            if let Some(prev) = last[t] {
                prop_assert!(prev < payload, "tenant {t} served {payload} after {prev}");
            }
            last[t] = Some(payload);
        }
    }

    /// Under full backlog, service converges to shares proportional to
    /// `weight / cost`: each tenant pushes one class exclusively, all
    /// demand is queued up front, and after `N` pops every tenant's
    /// service count is within 25% (± a constant floor for small `N`) of
    /// its analytic share.
    #[test]
    fn wfq_converges_to_weighted_shares(
        seed in 0u64..1_000,
        weights in proptest::collection::vec(1u32..8, 2..5),
    ) {
        let classes = [Class::Interactive, Class::Batch, Class::Background];
        let n = weights.len();
        let mut q = queue(&weights);
        // Adversarial arrival order: seed-shuffled round-robin so no
        // tenant gets all its pushes contiguously.
        let per_tenant = 400usize;
        let mut order: Vec<usize> = (0..n * per_tenant).map(|i| i % n).collect();
        for i in (1..order.len()).rev() {
            let j = (seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                >> 33) as usize
                % (i + 1);
            order.swap(i, j);
        }
        let mut counters = vec![0u64; n];
        for t in &order {
            let k = counters[*t];
            counters[*t] += 1;
            q.push(&format!("t{t}"), classes[*t % classes.len()], (*t as u64) << 32 | k, *t);
        }
        // Pop while every tenant is still backlogged: stop at half the
        // smallest entitlement so nobody drains dry mid-measurement.
        let rate =
            |t: usize| f64::from(weights[t]) / classes[t % classes.len()].cost() as f64;
        let total_rate: f64 = (0..n).map(rate).sum();
        let rate_max = (0..n).map(rate).fold(0.0f64, f64::max);
        let pops = (per_tenant as f64 / 2.0 * total_rate / rate_max) as usize;
        let pops = pops.min(n * per_tenant / 2).max(n * 8);
        let mut served = vec![0u64; n];
        for _ in 0..pops {
            let (_, t) = q.pop().expect("backlogged queue pops");
            served[t] += 1;
        }
        for (t, &count) in served.iter().enumerate() {
            let expect = pops as f64 * rate(t) / total_rate;
            let got = count as f64;
            let tol = (expect * 0.25).max(3.0);
            prop_assert!(
                (got - expect).abs() <= tol,
                "tenant {t}: served {got}, analytic {expect:.1} ± {tol:.1} (weights {weights:?})"
            );
        }
    }
}

/// Starvation regression: a weight-7 interactive flood (cheapest class,
/// heaviest weight) against a single weight-1 background tenant. The
/// victim's first request must still be served within one full virtual
/// round — `cost/weight / (cost/weight of the flood)` flood services —
/// not pushed behind the flood forever.
#[test]
fn background_tenant_is_never_starved() {
    let mut q = queue(&[7, 1]);
    // The victim arrives first with one background request…
    q.push("t1", Class::Background, u64::MAX, usize::MAX);
    // …then the flood swamps the queue.
    for k in 0..10_000u64 {
        q.push("t0", Class::Interactive, k, 0);
    }
    // Victim finish = 4/1 = 4 virtual units; flood spacing = 1/7. The
    // victim must surface within ceil(4 × 7) + 1 = 29 pops.
    let mut pops = 0;
    loop {
        let (_, payload) = q.pop().expect("queue is backlogged");
        pops += 1;
        if payload == usize::MAX {
            break;
        }
        assert!(pops <= 29, "background request starved past {pops} pops");
    }
    assert!(pops <= 29, "background request starved: served after {pops} pops");
}
