//! Property battery over the v2 binary wire codec (proptest).
//!
//! The invariants proven here are the ones the serving path leans on:
//!
//! - `decode_frame(encode_frame(f)) == f` for arbitrary frames, with and
//!   without compression in play (encode keeps a compressed payload only
//!   when it is strictly smaller, so identity must hold either way);
//! - LEB128 varints round-trip for every `u64` and overlong images —
//!   a terminal zero group after continuation bytes — are rejected;
//! - the decoder never panics on arbitrary byte soup, whether or not it
//!   starts with valid magic;
//! - flipping any single byte of a valid frame is either rejected or
//!   yields a content-identical frame (the trailing FNV-1a checksum
//!   covers everything after the magic, so silent corruption cannot
//!   produce a different accepted frame);
//! - the mlz compressor round-trips arbitrary payloads through
//!   `mlz_decompress` under an exact output budget.

use proptest::prelude::*;

use mcc::serve::proto2::{
    decode_frame, encode_frame, frame_len, mlz_compress, mlz_decompress, read_varint,
    write_varint, DecodeErr, Frame, FrameType, COMPRESS_MIN_BYTES, MAX_CID_BYTES,
};

fn ftype_strategy() -> BoxedStrategy<FrameType> {
    prop_oneof![
        Just(FrameType::Hello),
        Just(FrameType::HelloAck),
        Just(FrameType::Request),
        Just(FrameType::Response),
        Just(FrameType::Error),
    ]
    .boxed()
}

/// Arbitrary text from lossy-decoded random bytes. Lossy decoding maps
/// each input byte to at most one char of up to three UTF-8 bytes, so a
/// `max` of 64 keeps cids safely under [`MAX_CID_BYTES`].
fn text(max: usize) -> BoxedStrategy<String> {
    prop::collection::vec(any::<u8>(), 0..max)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
        .boxed()
}

/// A compressible body: a short random seed repeated enough times to
/// clear the compression threshold, so `Some(..)` minimums really do
/// exercise the compressed arm of the codec.
fn repetitive_body() -> BoxedStrategy<String> {
    (text(24), 1usize..80)
        .prop_map(|(seed, n)| {
            let unit = if seed.is_empty() { "pad ".to_string() } else { seed };
            unit.repeat(n.max(COMPRESS_MIN_BYTES / unit.len().max(1) + 1))
        })
        .boxed()
}

fn compress_min_strategy() -> BoxedStrategy<Option<usize>> {
    prop_oneof![
        Just(None),
        Just(Some(0usize)),
        Just(Some(COMPRESS_MIN_BYTES)),
    ]
    .boxed()
}

fn frame_strategy() -> BoxedStrategy<(FrameType, String, u64, String)> {
    (ftype_strategy(), text(64), any::<u64>(), text(2048)).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn varints_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        let back = read_varint(&buf, &mut pos).expect("canonical image decodes");
        prop_assert_eq!(back, v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn overlong_varint_images_are_rejected(n in 1usize..10) {
        // n continuation groups followed by a zero terminal group encode
        // a value that fits in fewer bytes only when the terminal group
        // is zero — the canonical decoder must refuse the overlong image.
        let mut buf = vec![0x80u8; n];
        buf.push(0x00);
        let mut pos = 0;
        prop_assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(DecodeErr::Corrupt(_))
        ));
    }

    #[test]
    fn frames_round_trip_under_every_compression_policy(
        parts in frame_strategy(),
        compress_min in compress_min_strategy(),
    ) {
        let (ftype, cid, rid, body) = parts;
        assert!(cid.len() <= MAX_CID_BYTES, "text(64) stays under the cid cap");
        let mut wire = Vec::new();
        encode_frame(&mut wire, ftype, &cid, rid, &body, compress_min);
        let total = frame_len(&wire)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(total, wire.len());
        let (frame, used) = decode_frame(&wire).expect("own frame decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(frame, Frame { ftype, cid, rid, body });
    }

    #[test]
    fn compressed_frames_round_trip(
        body in repetitive_body(),
        cid in text(32),
        rid in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        let squeezed =
            encode_frame(&mut wire, FrameType::Request, &cid, rid, &body, Some(0));
        // A body this repetitive must actually take the compressed arm.
        prop_assert!(squeezed, "repetitive body should compress");
        let (frame, _) = decode_frame(&wire).expect("compressed frame decodes");
        prop_assert_eq!(frame.body, body);
    }

    #[test]
    fn decoder_never_panics_on_byte_soup(
        soup in prop::collection::vec(any::<u8>(), 0..4096),
        with_magic in any::<bool>(),
    ) {
        let mut bytes = soup;
        if with_magic && bytes.len() >= 2 {
            bytes[0] = 0xB5;
            bytes[1] = 0x32;
        }
        // Both entry points must return, never panic, on arbitrary input.
        let _ = frame_len(&bytes);
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn single_byte_corruption_is_rejected_or_content_identical(
        parts in frame_strategy(),
        at_pick in any::<u64>(),
        flip_pick in any::<u8>(),
    ) {
        let (ftype, cid, rid, body) = parts;
        assert!(cid.len() <= MAX_CID_BYTES, "text(64) stays under the cid cap");
        let mut wire = Vec::new();
        encode_frame(&mut wire, ftype, &cid, rid, &body, None);
        let original = Frame { ftype, cid, rid, body };
        let mut hit = wire.clone();
        let at = (at_pick as usize) % hit.len();
        let flip = (flip_pick % 255) + 1; // non-zero xor: always a real change
        hit[at] ^= flip;
        match frame_len(&hit) {
            // Structurally refused, or the mutated header now wants more
            // bytes than exist — either way nothing wrong was accepted.
            Err(_) | Ok(None) => {}
            Ok(Some(total)) if total > hit.len() => {}
            Ok(Some(_)) => match decode_frame(&hit) {
                Err(_) => {}
                Ok((frame, _)) => prop_assert_eq!(frame, original),
            },
        }
    }

    #[test]
    fn mlz_round_trips_under_an_exact_budget(
        payload in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let packed = mlz_compress(&payload);
        let back = mlz_decompress(&packed, payload.len()).expect("round trip");
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn mlz_truncation_never_yields_the_original(
        payload in prop::collection::vec(any::<u8>(), 64..2048),
        cut in any::<u64>(),
    ) {
        let packed = mlz_compress(&payload);
        assert!(packed.len() > 1, "a 64+ byte payload never packs to one byte");
        let keep = 1 + (cut as usize) % (packed.len() - 1);
        // Every strict prefix either errors or decodes to something
        // shorter than the original — a truncated stream can never be
        // mistaken for the full payload.
        if let Ok(out) = mlz_decompress(&packed[..keep], payload.len()) {
            prop_assert!(out.len() < payload.len());
        }
    }
}
