//! Quarantine under supervision, end to end: a fleet whose third shard
//! is sabotaged to die before its banner on *every* life must burn its
//! restart budget and land in quarantine — never hot-loop — while the
//! healthy rest of the fleet answers every accepted request exactly
//! once (cache-counter accounting, the PR 5/6 invariant lifted onto the
//! supervisor).
//!
//! Single `#[test]` on purpose: this file owns a whole supervised
//! fleet of child processes and their cache directories.

use std::time::Duration;

use mcc::fleet::{child, Fleet, FleetConfig, ShardSpec, ShardState};
use mcc::harness::backoff::BackoffConfig;
use mcc::harness::restart::RestartPolicy;
use mcc::serve::proto::{self, Response};

#[test]
fn crash_looping_shard_is_quarantined_while_the_fleet_serves_exactly_once() {
    let base = std::env::temp_dir().join(format!("mcc-fleet-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let budget = 2u32;
    let mut cfg = FleetConfig::new(env!("CARGO_BIN_EXE_mcc").into(), base.clone());
    cfg.hedge_ms = 0; // no hedging: cache counters count exactly once
    cfg.restart = RestartPolicy {
        budget,
        backoff: BackoffConfig {
            base: Duration::from_millis(25),
            cap: Duration::from_millis(100),
        },
    };
    cfg.log = true;

    // b2's argv is unparseable: every life exits before the banner.
    let specs = vec![
        ShardSpec::stock("b0"),
        ShardSpec::stock("b1"),
        ShardSpec {
            name: "b2".to_string(),
            argv: Some(vec![
                "serve".to_string(),
                "--port".to_string(),
                "not-a-port".to_string(),
            ]),
            restart_argv: None,
        },
    ];
    let mut fleet = Fleet::start(cfg, specs).expect("two healthy shards are enough to start");

    // The sabotaged shard must reach quarantine (budget restarts, then
    // the supervisor gives up) while b0/b1 come up and join.
    assert!(
        fleet.wait_until(Duration::from_secs(30), |shards| {
            shards.iter().any(|s| s.name == "b2" && s.state == ShardState::Quarantined)
                && shards
                    .iter()
                    .filter(|s| s.name != "b2")
                    .all(|s| s.state == ShardState::Up && s.joined)
        }),
        "b2 quarantined and b0/b1 up, got {:?}",
        fleet.snapshot()
    );

    let b2 = fleet.registry().get("b2").expect("b2 registered");
    assert_eq!(
        b2.restarts,
        u64::from(budget),
        "quarantine came after exactly the budgeted restarts"
    );
    assert_eq!(
        b2.crashes,
        u64::from(budget) + 1,
        "the crash after the last budgeted restart trips quarantine"
    );
    assert!(!b2.joined, "a quarantined shard is not a ring member");

    // The surviving fleet answers every request: M distinct cold
    // compiles through the router child, all 200.
    let addr = fleet.router_addr();
    const M: usize = 40;
    let mut n200 = 0u64;
    for i in 0..M {
        let src = format!("reg a = R0\nconst a, {i}\nadd a, a, 1\nexit a\n");
        let line = proto::compile_line(&format!("q{i}"), "hm1", "yalll", &src);
        let resp = child::line_call(&addr, &line, Duration::from_secs(30))
            .expect("router answers while a shard is quarantined");
        assert_eq!(
            Response::field_num(&resp, "code"),
            Some(200),
            "request {i} compiled: {resp}"
        );
        let backend = Response::field_str(&resp, "backend").unwrap_or_default();
        assert_ne!(backend, "b2", "the quarantined shard serves nothing");
        n200 += 1;
    }

    // Quarantine is sticky: give the supervisor a beat, then confirm the
    // restart count never moved (no hot loop).
    std::thread::sleep(Duration::from_millis(500));
    let b2 = fleet.registry().get("b2").expect("b2 registered");
    assert_eq!(b2.state, ShardState::Quarantined);
    assert_eq!(b2.restarts, u64::from(budget), "no restarts after quarantine");

    let healthy_crashes: u64 = fleet
        .snapshot()
        .iter()
        .filter(|s| s.name != "b2")
        .map(|s| s.crashes)
        .sum();
    assert_eq!(healthy_crashes, 0, "healthy shards never crashed");

    fleet.shutdown();

    // Exactly-once accounting: with hedging off and all-distinct
    // sources, every 200 is one miss and one store on exactly one
    // healthy shard — nothing ran twice, nothing went unanswered.
    let (mut misses, mut stores) = (0u64, 0u64);
    for name in ["b0", "b1"] {
        let stats = mcc::cache::read_stats(&base.join(name));
        misses += stats.misses;
        stores += stats.stores;
    }
    assert_eq!(misses, n200, "each accepted compile executed exactly once");
    assert_eq!(stores, n200, "each executed compile persisted exactly once");

    let _ = std::fs::remove_dir_all(&base);
}
