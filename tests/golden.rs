//! The golden conformance suite: every deterministic experiment table
//! (E1–E8, including E6b) is pinned byte-for-byte against a committed
//! golden file under `tests/golden/`.
//!
//! Each table is rendered **twice** in the same process — the second
//! render is served by the compilation cache — and both renders must
//! equal the golden bytes. Together with the CI cache job (which diffs a
//! cold-process `exp_all` against a warm-process rerun) this pins the
//! cache's core contract: a hit is indistinguishable from a compile.
//!
//! E9 and E10 are excluded: they are seeded campaigns whose tables are
//! covered by `tests/campaign.rs` and the `exp_all` CI diff, and their
//! trial counts make them too slow for a table-per-commit golden.
//!
//! To regenerate after an intentional table change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::fs;
use std::path::PathBuf;

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.txt"))
}

fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Points at the first differing line so a regression report is readable
/// without an external diff tool.
fn first_divergence(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("line {}: expected `{w}`, got `{g}`", i + 1);
        }
    }
    format!(
        "line counts differ: expected {}, got {}",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn tables_match_goldens_cold_and_warm() {
    let update = update_requested();
    let before = mcc::cache::global().counters();
    let mut failures = Vec::new();

    for &(id, title, f) in mcc::bench::experiments::GOLDEN_TABLES.iter() {
        let cold = f().render(title);
        // Second render: every compile behind the table is now a cache
        // hit. Any byte the cache fails to reproduce shows up here.
        let warm = f().render(title);
        if cold != warm {
            failures.push(format!(
                "{id}: warm render diverges from cold ({})",
                first_divergence(&cold, &warm)
            ));
            continue;
        }

        let path = golden_path(id);
        if update {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &cold).unwrap();
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want == cold => {}
            Ok(want) => failures.push(format!(
                "{id}: table diverges from {} ({}); run UPDATE_GOLDEN=1 if intentional",
                path.display(),
                first_divergence(&want, &cold)
            )),
            Err(e) => failures.push(format!(
                "{id}: cannot read {} ({e}); run UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }

    let after = mcc::cache::global().counters();
    assert!(
        after.hits() > before.hits(),
        "warm renders produced no cache hits — the cache is not wired \
         through the experiment tables"
    );
    assert!(
        failures.is_empty(),
        "golden conformance failures:\n  {}",
        failures.join("\n  ")
    );
}

/// The golden directory must not accumulate stale files: every committed
/// golden corresponds to a table in the catalog.
#[test]
fn no_orphan_golden_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let Ok(entries) = fs::read_dir(&dir) else {
        // Directory appears once goldens are generated; the main test
        // reports the missing files themselves.
        return;
    };
    let known: Vec<String> = mcc::bench::experiments::GOLDEN_TABLES
        .iter()
        .map(|&(id, _, _)| format!("{id}.txt"))
        .collect();
    for e in entries {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        // The wire-protocol frame fixtures live in their own
        // subdirectory with their own orphan guard (tests/golden_wire.rs).
        if name == "wire" {
            continue;
        }
        assert!(
            known.contains(&name),
            "tests/golden/{name} does not match any table in GOLDEN_TABLES"
        );
    }
}
