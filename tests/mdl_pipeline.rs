//! MDL end-to-end: a machine described purely as text goes through the
//! whole pipeline (MPGL's §2.2.5 machine-specification idea).

use mcc::core::Compiler;
use mcc::machine::mdl;

/// A deliberately small 8-bit machine with one ALU and one move path.
const TINY: &str = "\
machine TINY-8 width 8 phases 2
file R count 4 width 8 macro
file S count 2 width 8
file F count 1 width 8
special mar = S 0
special mbr = S 1
special flags = F 0
class gp = R[0..4]
class mv = R[0..4], S[0..2]
resource alu kind alu
resource bus kind bus
resource mem kind memory
resource seq kind sequencer
field alu_op width 3
field alu_a width 2
field alu_b width 2
field alu_d width 2
field alu_sel width 1
field mv_op width 2
field mv_s width 3
field mv_d width 3
field mem_op width 2
field imm width 8
field seq_op width 2
field cond width 2
field addr width 8
cond true
cond zero
cond notzero
cond neg
template add semantic alu.add
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 1
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template sub semantic alu.sub
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 2
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template subi semantic alu.sub
  dst gp
  src gp
  imm 8
  flags
  set alu_op = const 2
  set alu_sel = const 1
  set alu_a = src 0
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template pass semantic alu.pass
  dst gp
  src gp
  flags
  set alu_op = const 3
  set alu_sel = const 0
  set alu_a = src 0
  set alu_d = dst
  occupy alu 0..2
end
template mov semantic move
  dst mv
  src mv
  set mv_op = const 1
  set mv_s = src 0
  set mv_d = dst
  occupy bus 0..1
end
template ldi semantic loadimm
  dst mv
  imm 8
  set mv_op = const 2
  set mv_d = dst
  set imm = imm
  occupy bus 0..1
end
template read semantic memread
  reads S 0
  writes S 1
  set mem_op = const 1
  occupy mem 0..2
end
template write semantic memwrite
  reads S 0
  reads S 1
  set mem_op = const 2
  occupy mem 0..2
end
template jmp semantic jump
  target
  set seq_op = const 1
  set addr = target
  occupy seq 1..2
end
template br semantic branch
  cond
  target
  set seq_op = const 2
  set cond = cond
  set addr = target
  occupy seq 1..2
end
template halt semantic halt
  set seq_op = const 3
  occupy seq 1..2
end
";

#[test]
fn text_machine_compiles_and_runs_yalll() {
    let m = mdl::parse(TINY).unwrap();
    m.validate().unwrap();
    assert_eq!(m.name, "TINY-8");

    let src = "\
reg n = R0
reg acc = R1
const n, 10
const acc, 0
loop: jump done if n = 0
    add acc, acc, n
    sub n, n, 1
    jump loop
done: exit acc
";
    let art = Compiler::new(m).compile_yalll(src).unwrap();
    let (sim, _) = art.run().unwrap();
    // 8-bit machine: 55 fits.
    assert_eq!(art.read_symbol(&sim, "acc"), Some(55));
}

#[test]
fn text_machine_legalises_wide_constants() {
    // 200 fits 8 bits; 300 does not exist on an 8-bit datapath (values
    // wrap) — but a 16-bit constant *request* is masked by legalisation
    // through the 8-bit ldi path. Check wrapping semantics end to end.
    let m = mdl::parse(TINY).unwrap();
    let art = Compiler::new(m)
        .compile_yalll("reg x = R0\nconst x, 200\nsub x, x, 100\nexit x\n")
        .unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "x"), Some(100));
}

#[test]
fn text_machine_memory_roundtrip() {
    let m = mdl::parse(TINY).unwrap();
    let src = "\
reg a = R0
reg v = R1
const a, 0x20
const v, 77
stor v, a
reg w = R2
load w, a
exit w
";
    let art = Compiler::new(m).compile_yalll(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "w"), Some(77));
    assert_eq!(sim.mem(0x20), 77);
}

#[test]
fn text_machine_encodes_and_decodes() {
    let m = mdl::parse(TINY).unwrap();
    let art = Compiler::new(m.clone())
        .compile_yalll("reg x = R0\nconst x, 5\nadd x, x, x\nexit x\n")
        .unwrap();
    let words = art.encode().unwrap();
    assert_eq!(words.len(), art.program.instr_count());
    for (mi, w) in art.program.flatten().iter().zip(&words) {
        let mut back = mcc::machine::decode_instr(&m, *w).unwrap();
        back.ops.sort_by_key(|o| o.template);
        let mut want = mi.clone();
        want.ops.sort_by_key(|o| o.template);
        assert_eq!(back, want);
    }
}

#[test]
fn dump_and_reparse_reference_machines_compile() {
    // by_name → to_mdl → parse → compile: the full circle.
    for name in ["hm1", "vm1", "bx2", "wm64"] {
        let m = mcc::machine::machines::by_name(name).unwrap();
        let text = mdl::to_mdl(&m);
        let back = mdl::parse(&text).unwrap();
        let gp = if back.find_file("R").is_some() { "R0" } else { "G0" };
        let art = Compiler::new(back)
            .compile_yalll(&format!("reg x = {gp}\nconst x, 3\nadd x, x, 4\nexit x\n"))
            .unwrap();
        let (sim, _) = art.run().unwrap();
        assert_eq!(art.read_symbol(&sim, "x"), Some(7), "{name}");
    }
}
