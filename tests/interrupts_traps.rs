//! Integration tests for the §2.1.5 problems: interrupts and microtraps,
//! the two facilities the survey says every language neglected.

use mcc::core::{Compiler, CompilerOptions};
use mcc::machine::machines::{bx2, hm1};
use mcc::sim::{SimOptions, PAGE_WORDS};

fn long_loop_src() -> &'static str {
    "\
reg n = R0
reg acc = R1
const n, 50
const acc, 0
loop: jump done if n = 0
    add acc, acc, n
    sub n, n, 1
    jump loop
done: exit acc
"
}

#[test]
fn interrupts_wait_without_polls() {
    let art = Compiler::new(hm1()).compile_yalll(long_loop_src()).unwrap();
    let (_, stats) = art
        .run_with(&SimOptions {
            interrupts: vec![10],
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.interrupts, 1, "serviced at halt");
    assert!(
        stats.interrupt_latency_max > 100,
        "latency is the whole remaining run: {}",
        stats.interrupt_latency_max
    );
}

#[test]
fn loop_header_polls_bound_latency() {
    let opts = CompilerOptions {
        poll_interval: Some(1000), // interval never triggers; headers do
        ..Default::default()
    };
    let art = Compiler::with_options(hm1(), opts)
        .compile_yalll(long_loop_src())
        .unwrap();
    assert!(art.stats.polls >= 1);
    let (sim, stats) = art
        .run_with(&SimOptions {
            interrupts: vec![10, 60, 110],
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.interrupts, 3);
    assert!(
        stats.interrupt_latency_max <= 20,
        "one poll per iteration bounds latency: {}",
        stats.interrupt_latency_max
    );
    // And the computation is still right.
    assert_eq!(art.read_symbol(&sim, "acc"), Some((1..=50u64).sum()));
}

#[test]
fn polled_program_still_correct_on_bx2() {
    let src = "\
reg n = G0
reg acc = G1
const n, 20
const acc, 0
loop: jump done if n = 0
    add acc, acc, n
    sub n, n, 1
    jump loop
done: exit acc
";
    let opts = CompilerOptions {
        poll_interval: Some(2),
        ..Default::default()
    };
    let art = Compiler::with_options(bx2(), opts).compile_yalll(src).unwrap();
    let (sim, stats) = art
        .run_with(&SimOptions {
            interrupts: (1..=5).map(|k| k * 30).collect(),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.interrupts, 5);
    assert_eq!(art.read_symbol(&sim, "acc"), Some((1..=20u64).sum()));
}

#[test]
fn trap_restart_preserves_compiled_loop_results() {
    // A loop reading 8 words that all sit on an initially-unmapped page:
    // the first read faults, the program restarts from scratch, and the
    // result must still be correct because everything before the fault is
    // recomputed from constants (restart-safe by construction).
    let src = "\
reg ptr = R0
reg n = R1
reg acc = R2
reg t = R3
const ptr, 0x3000
const n, 8
const acc, 0
loop: jump done if n = 0
    load t, ptr
    add acc, acc, t
    add ptr, ptr, 1
    sub n, n, 1
    jump loop
done: exit acc
";
    let art = Compiler::new(hm1()).compile_yalll(src).unwrap();
    assert!(
        art.warnings.is_empty(),
        "this loop is restart-safe: {:?}",
        art.warnings
    );
    let mut sim = art.simulator();
    for i in 0..8u64 {
        sim.set_mem(0x3000 + i, 10 + i);
    }
    let stats = sim
        .run(&SimOptions {
            unmapped_pages: vec![0x3000 / PAGE_WORDS],
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.traps, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(
        art.read_symbol(&sim, "acc"),
        Some((0..8u64).map(|i| 10 + i).sum())
    );
}

#[test]
fn trap_unsafe_loop_is_flagged_and_misbehaves() {
    // The same loop but accumulating INTO a macro-visible register that
    // also carries state across the fault: ptr is bumped before the read,
    // so a restart re-reads with a half-advanced pointer… except ptr is
    // re-initialised by `const` on restart. To build a genuinely unsafe
    // case the increment must precede the first faultable access without
    // a reinitialisation — the paper's incread shape:
    let src = "\
reg p = R0
reg d = R5
inc p
load d, p
exit d
";
    let art = Compiler::new(hm1()).compile_yalll(src).unwrap();
    assert!(!art.warnings.is_empty(), "incread shape must warn");
    let p = art.machine.resolve_reg_name("R0").unwrap();
    let mut sim = art.simulator();
    sim.set_reg(p, 0x4FF);
    let stats = sim
        .run(&SimOptions {
            unmapped_pages: vec![0x500 / PAGE_WORDS],
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.restarts, 1);
    assert_eq!(sim.reg(p), 0x501, "double increment observed");
}

#[test]
fn multiple_traps_multiple_restarts() {
    // Two separate unmapped pages touched by straight-line code: two
    // traps, two restarts, correct final state (idempotent writes only).
    let src = "\
reg a = R1
reg b = R2
reg t = R3
const t, 0
const a, 0x2800
load t, a
move b, t
const a, 0x2900
load t, a
add b, b, t
exit b
";
    let art = Compiler::new(hm1()).compile_yalll(src).unwrap();
    let mut sim = art.simulator();
    sim.set_mem(0x2800, 30);
    sim.set_mem(0x2900, 12);
    let stats = sim
        .run(&SimOptions {
            unmapped_pages: vec![0x2800 / PAGE_WORDS, 0x2900 / PAGE_WORDS],
            max_cycles: 100_000,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.traps, 2);
    assert_eq!(art.read_symbol(&sim, "b"), Some(42));
}

#[test]
fn injected_page_fault_restarts_incread_and_compiler_warned() {
    // The §2.1.5 hazard driven by the fault-injection layer instead of a
    // pre-unmapped page: an `UnmapPage` fault lands mid-run, the next
    // touch traps, the microprogram restarts from address 0 with
    // registers preserved, and the macro-visible pointer is incremented
    // twice. The compiler must have flagged exactly this shape, so the
    // wrong architectural result is a *warned* wrong result.
    use mcc::sim::{FaultKind, FaultPlan};
    let src = "\
reg p = R0
reg d = R5
inc p
load d, p
exit d
";
    let art = Compiler::new(hm1()).compile_yalll(src).unwrap();
    assert!(
        art.warnings.iter().any(|w| w.message.contains("restart")),
        "trap-safety analysis must flag incread: {:?}",
        art.warnings
    );
    let p = art.machine.resolve_reg_name("R0").unwrap();
    let mut sim = art.simulator();
    sim.set_reg(p, 0x4FF);
    sim.set_mem(0x501, 77);
    let stats = sim
        .run(&SimOptions {
            faults: FaultPlan::single(
                1,
                FaultKind::UnmapPage {
                    page: 0x500 / PAGE_WORDS,
                },
            ),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.traps, 1, "the injected unmap must fault the load");
    assert_eq!(stats.restarts, 1);
    assert_eq!(sim.reg(p), 0x501, "double increment after injected fault");
    // The restarted load reads from the doubly-incremented address.
    let d = art.machine.resolve_reg_name("R5").unwrap();
    assert_eq!(sim.reg(d), 77);
}

#[test]
fn sstar_procedures_run_through_pipeline() {
    let src = "\
program t;
var x: seq [15..0] bit with R1;
proc bump (x); x := x + 1;
begin
    x := 40;
    call bump;
    call bump;
end";
    let art = Compiler::new(hm1()).compile_sstar(src).unwrap();
    let (sim, _) = art.run().unwrap();
    assert_eq!(art.read_symbol(&sim, "x"), Some(42));
}
