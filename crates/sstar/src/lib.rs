//! # `mcc-sstar` — an S\* instantiation frontend
//!
//! S\* (Dasgupta 1978) is the survey's §2.2.3 language — not a language
//! but a *language schema*: for a machine M it instantiates to S(M),
//! whose elementary statements are M's micro-operations. Its design goals
//! are verifiability and explicit control over parallelism. This crate
//! implements S(M) for any toolkit machine:
//!
//! * **machine-bound declarations**: `var x: seq [15..0] bit with R1`,
//!   arrays bound to register files (`with LS`) or to main memory
//!   (`with mem 4096`), `syn` renamings, bitfield `tuple`s over one
//!   register, and `stack`s (memory-resident, with a pointer register);
//! * **explicit parallelism**: `cobegin … coend` statements *must* share
//!   one microinstruction — the pipeline verifies this and rejects
//!   programs the hardware cannot co-schedule;
//! * `cocycle … coend` groups are compiled as an unreorderable sequence
//!   (our machines latch registers once per cycle, so the paper's
//!   phase-chained single-instruction semantics is approximated by
//!   consecutive microinstructions — recorded in DESIGN.md);
//! * `region … end` sections are emitted one statement per
//!   microinstruction, in source order, exactly as written;
//! * **assertions**: `assert(pred)` both compiles to a runtime check and
//!   feeds the `mcc-verify` weakest-precondition machinery: each
//!   straight-line segment between assertions becomes a Hoare triple.
//!
//! Expressions are arbitrarily complex (unlike SIMPL/EMPL); the frontend
//! introduces compiler temporaries, which is precisely the §2.1.6 cost the
//! survey attributes to that choice.

use std::collections::HashMap;

use mcc_lang::{parse_int, Cursor, DepthGuard, Diagnostic, FrontendLimits, Span, TokenBudget};
use mcc_machine::{AluOp, CondKind, MachineDesc, RegRef, ShiftOp};
use mcc_mir::{BlockId, FuncBuilder, MirFunction, Operand, Term};
use mcc_verify::{check_triple, Assign, Pred, Verdict};

/// Where a declared S\* object lives.
#[derive(Debug, Clone, PartialEq)]
enum Place {
    /// A single register (or compiler-allocated vreg).
    Reg(Operand),
    /// A register-file-bound array: base file register, element count.
    RegArray { file: mcc_machine::ids::FileId, lo: u16, len: u16 },
    /// A memory-resident array at this base address.
    MemArray { base: u64, len: u64 },
    /// A bitfield tuple over one register: (register, fields).
    Tuple { reg: Operand, fields: Vec<(String, u16, u16)> }, // (name, hi, lo)
    /// A memory stack: base, capacity, pointer register.
    Stack { base: u64, cap: u64, ptr: Operand },
    /// A named constant.
    Const(u64),
}

/// A recorded assertion with its verification context.
#[derive(Debug, Clone)]
pub struct AssertInfo {
    /// 1-based index in source order.
    pub index: usize,
    /// The predicate text as written.
    pub text: String,
    /// Parsed predicate.
    pub pred: Pred,
    /// The precondition in force (previous assertion or `true`).
    pub pre: Pred,
    /// The straight-line assignments between `pre` and this assertion,
    /// or `None` when control flow intervened (not statically checkable).
    pub segment: Option<Vec<Assign>>,
}

/// A parsed-and-lowered S\* program.
#[derive(Debug)]
pub struct SstarProgram {
    /// The program name.
    pub name: String,
    /// The lowered function.
    pub func: MirFunction,
    /// Blocks holding `cobegin` groups: each must compile to exactly one
    /// microinstruction (checked by the pipeline after compaction).
    pub cogroups: Vec<BlockId>,
    /// Declared variable locations, for observability.
    pub vars: HashMap<String, Operand>,
    /// Assertions for static verification.
    pub asserts: Vec<AssertInfo>,
    /// Register holding the runtime assertion status: 0 = all passed,
    /// n = assertion #n failed first.
    pub assert_flag: Option<Operand>,
}

impl SstarProgram {
    /// Statically checks every assertion whose segment is straight-line:
    /// the Hoare triple `{previous} segment {this}` via weakest
    /// preconditions. Returns `(index, verdict)` pairs; assertions whose
    /// segment crossed control flow are skipped.
    pub fn check_asserts(&self, width: u16) -> Vec<(usize, Verdict)> {
        self.asserts
            .iter()
            .filter_map(|a| {
                a.segment
                    .as_ref()
                    .map(|seg| (a.index, check_triple(&a.pre, seg, &a.pred, width)))
            })
            .collect()
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sym(String),
    Eof,
}

struct Lexer<'a> {
    c: Cursor<'a>,
    tok: Tok,
    span: Span,
    budget: TokenBudget,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, limits: &FrontendLimits) -> Result<Self, Diagnostic> {
        let mut l = Lexer {
            c: Cursor::new(src),
            tok: Tok::Eof,
            span: Span::default(),
            budget: TokenBudget::new(limits),
        };
        l.advance()?;
        Ok(l)
    }

    fn advance(&mut self) -> Result<(), Diagnostic> {
        // `#` starts a comment to end of line (the paper uses `# … #`;
        // line comments are close enough and unambiguous).
        self.c.skip_ws_and_line_comments("#");
        let start = self.c.pos();
        // Ticking on Eof too makes the budget a backstop against any
        // parser loop that fails to notice end-of-input.
        self.budget.tick(Span::new(start, start))?;
        let tok = match self.c.peek() {
            None => Tok::Eof,
            Some(ch) if ch.is_alphabetic() || ch == '_' => {
                let w = self
                    .c
                    .take_while(|c| c.is_alphanumeric() || c == '_')
                    .to_string();
                Tok::Ident(w.to_ascii_lowercase())
            }
            Some(ch) if ch.is_ascii_digit() => {
                let w = self.c.take_while(|c| c.is_alphanumeric());
                match parse_int(w) {
                    Some(v) => Tok::Num(v),
                    None => {
                        return Err(Diagnostic::new(
                            format!("bad number `{w}`"),
                            Span::new(start, self.c.pos()),
                        ))
                    }
                }
            }
            Some(_) => {
                let mut sym = None;
                for s in [":=", "..", "<>", "<=", ">="] {
                    if self.c.eat_str(s) {
                        sym = Some(s.to_string());
                        break;
                    }
                }
                let s = match sym {
                    Some(s) => s,
                    None => {
                        let ch = self.c.bump().expect("peeked");
                        ch.to_string()
                    }
                };
                Tok::Sym(s)
            }
        };
        self.span = Span::new(start, self.c.pos());
        self.tok = tok;
        Ok(())
    }
}

// ----------------------------------------------------------- expressions --

/// S\* expression AST (kept so assertions can mirror assignments).
#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Num(u64),
    Name(String),
    Index(String, u64),
    Field(String, String),
    Bin(char, Box<Ast>, Box<Ast>),
    Shift(ShiftOp, Box<Ast>, u64),
    Not(Box<Ast>),
    Neg(Box<Ast>),
}

// ---------------------------------------------------------------- parser --

struct Parser<'a, 'm> {
    lx: Lexer<'a>,
    m: &'m MachineDesc,
    b: FuncBuilder,
    places: HashMap<String, Place>,
    cogroups: Vec<BlockId>,
    /// Verification state.
    asserts: Vec<AssertInfo>,
    seg: Option<Vec<Assign>>,
    pre: Pred,
    assert_fail_block: Option<BlockId>,
    assert_flag: Option<Operand>,
    next_mem: u64,
    /// In a `region`: isolate every statement in its own block.
    region_depth: u32,
    /// Declared procedures: name → entry block.
    procs: HashMap<String, BlockId>,
    /// One guard for statement *and* expression nesting: what matters is
    /// the cumulative native stack, not either grammar alone.
    depth: DepthGuard,
}

impl<'a, 'm> Parser<'a, 'm> {
    fn diag(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.lx.span)
    }

    fn kw(&mut self, word: &str) -> Result<bool, Diagnostic> {
        if matches!(&self.lx.tok, Tok::Ident(w) if w == word) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn peek_kw(&self, word: &str) -> bool {
        matches!(&self.lx.tok, Tok::Ident(w) if w == word)
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), Diagnostic> {
        if self.kw(word)? {
            Ok(())
        } else {
            Err(self.diag(format!("expected `{word}`")))
        }
    }

    fn sym(&mut self, s: &str) -> Result<bool, Diagnostic> {
        if matches!(&self.lx.tok, Tok::Sym(x) if x == s) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), Diagnostic> {
        if self.sym(s)? {
            Ok(())
        } else {
            Err(self.diag(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match &self.lx.tok {
            Tok::Ident(w) => {
                let w = w.clone();
                self.lx.advance()?;
                Ok(w)
            }
            _ => Err(self.diag("expected identifier")),
        }
    }

    fn number(&mut self) -> Result<u64, Diagnostic> {
        match self.lx.tok {
            Tok::Num(v) => {
                self.lx.advance()?;
                Ok(v)
            }
            _ => Err(self.diag("expected number")),
        }
    }

    // ---- declarations ------------------------------------------------------

    /// `seq [h..l] bit` → width.
    fn seq_type(&mut self) -> Result<u16, Diagnostic> {
        self.expect_kw("seq")?;
        self.expect_sym("[")?;
        let h = self.number()?;
        self.expect_sym("..")?;
        let l = self.number()?;
        self.expect_sym("]")?;
        self.expect_kw("bit")?;
        if h < l {
            return Err(self.diag("seq bounds must be high..low"));
        }
        if h - l >= 64 {
            return Err(self.diag("seq wider than 64 bits"));
        }
        Ok((h - l + 1) as u16)
    }

    fn declaration(&mut self) -> Result<(), Diagnostic> {
        if self.kw("const")? {
            let name = self.ident()?;
            self.expect_sym("=")?;
            let v = self.number()?;
            self.expect_sym(";")?;
            self.places.insert(name, Place::Const(v));
            return Ok(());
        }
        if self.kw("syn")? {
            loop {
                let name = self.ident()?;
                self.expect_sym("=")?;
                let target = self.ident()?;
                let place = if self.sym("[")? {
                    let idx = self.number()?;
                    self.expect_sym("]")?;
                    self.element_place(&target, idx)?
                } else {
                    self.places
                        .get(&target)
                        .cloned()
                        .ok_or_else(|| self.diag(format!("unknown object `{target}`")))?
                };
                self.places.insert(name, place);
                if !self.sym(",")? {
                    break;
                }
            }
            self.expect_sym(";")?;
            return Ok(());
        }
        if self.kw("var")? {
            loop {
                let name = self.ident()?;
                self.expect_sym(":")?;
                self.var_type(&name)?;
                if !self.sym(",")? {
                    break;
                }
            }
            self.expect_sym(";")?;
            return Ok(());
        }
        Err(self.diag("expected declaration"))
    }

    fn var_type(&mut self, name: &str) -> Result<(), Diagnostic> {
        if self.peek_kw("seq") {
            let width = self.seq_type()?;
            let place = if self.kw("with")? {
                let target = self.ident()?;
                let r = self
                    .m
                    .resolve_reg_name(&target)
                    .ok_or_else(|| self.diag(format!("`{target}` is not a register")))?;
                if self.m.reg_width(r) < width {
                    return Err(self.diag(format!(
                        "`{name}` needs {width} bits but {target} has {}",
                        self.m.reg_width(r)
                    )));
                }
                Place::Reg(Operand::Reg(r))
            } else {
                Place::Reg(Operand::Vreg(self.b.vreg()))
            };
            self.places.insert(name.to_string(), place);
            return Ok(());
        }
        if self.kw("array")? {
            self.expect_sym("[")?;
            let lo = self.number()?;
            self.expect_sym("..")?;
            let hi = self.number()?;
            self.expect_sym("]")?;
            self.expect_kw("of")?;
            let _width = self.seq_type()?;
            if lo != 0 {
                return Err(self.diag("array lower bound must be 0"));
            }
            let len = hi
                .checked_add(1)
                .ok_or_else(|| self.diag("array too large"))?;
            self.expect_kw("with")?;
            if self.kw("mem")? {
                let base = self.number()?;
                if base.checked_add(len).is_none() {
                    return Err(self.diag("array extends past the address space"));
                }
                self.places
                    .insert(name.to_string(), Place::MemArray { base, len });
            } else {
                let fname = self.ident()?;
                let fid = self
                    .m
                    .find_file(&fname.to_ascii_uppercase())
                    .ok_or_else(|| self.diag(format!("no register file `{fname}`")))?;
                if len > self.m.file(fid).count as u64 {
                    return Err(self.diag(format!(
                        "array `{name}` does not fit file `{fname}`"
                    )));
                }
                self.places.insert(
                    name.to_string(),
                    Place::RegArray {
                        file: fid,
                        lo: 0,
                        len: len as u16,
                    },
                );
            }
            return Ok(());
        }
        if self.kw("tuple")? {
            // tuple f1: seq [h..l] bit; f2: …; end with REG
            let mut fields = Vec::new();
            while !self.kw("end")? {
                let fname = self.ident()?;
                self.expect_sym(":")?;
                self.expect_kw("seq")?;
                self.expect_sym("[")?;
                let h = self.number()?;
                self.expect_sym("..")?;
                let l = self.number()?;
                self.expect_sym("]")?;
                self.expect_kw("bit")?;
                self.expect_sym(";")?;
                // Tuples overlay one register, so fields must fit a word;
                // the mask arithmetic downstream relies on these bounds.
                if h < l || h >= 64 {
                    return Err(self.diag(format!("bad field bounds [{h}..{l}]")));
                }
                fields.push((fname, h as u16, l as u16));
            }
            self.expect_kw("with")?;
            let target = self.ident()?;
            let r = self
                .m
                .resolve_reg_name(&target)
                .ok_or_else(|| self.diag(format!("`{target}` is not a register")))?;
            self.places.insert(
                name.to_string(),
                Place::Tuple {
                    reg: Operand::Reg(r),
                    fields,
                },
            );
            return Ok(());
        }
        if self.kw("stack")? {
            self.expect_sym("[")?;
            let cap = self.number()?;
            if cap == 0 || cap > 1 << 16 {
                return Err(self.diag("stack capacity must be 1..=65536"));
            }
            self.expect_sym("]")?;
            self.expect_kw("of")?;
            let _w = self.seq_type()?;
            // Pointer register: `with PTRREG` or compiler-allocated.
            let ptr = if self.kw("with")? {
                let t = self.ident()?;
                Operand::Reg(
                    self.m
                        .resolve_reg_name(&t)
                        .ok_or_else(|| self.diag(format!("`{t}` is not a register")))?,
                )
            } else {
                Operand::Vreg(self.b.vreg())
            };
            let base = self.next_mem;
            self.next_mem += cap;
            self.places
                .insert(name.to_string(), Place::Stack { base, cap, ptr });
            // The stack pointer starts at 0 (empty).
            self.b.ldi(ptr, 0);
            return Ok(());
        }
        Err(self.diag("expected type"))
    }

    /// `proc name (used, vars); <stmt>` — a parameterless micro-subroutine.
    fn proc_decl(&mut self) -> Result<(), Diagnostic> {
        self.expect_kw("proc")?;
        let name = self.ident()?;
        // The parenthesised uses-list: every entry must be declared.
        if self.sym("(")? {
            loop {
                let used = self.ident()?;
                if !self.places.contains_key(&used) {
                    return Err(self.diag(format!(
                        "procedure `{name}` lists undeclared variable `{used}`"
                    )));
                }
                if !self.sym(",")? {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_sym(";")?;
        let entry = self.b.new_labeled_block(format!("proc_{name}"));
        let after = self.b.current();
        self.b.switch_to(entry);
        self.seg_break();
        self.statement()?;
        let _ = self.sym(";")?;
        self.b.terminate(Term::Ret);
        self.b.switch_to(after);
        self.procs.insert(name, entry);
        Ok(())
    }

    fn element_place(&mut self, array: &str, idx: u64) -> Result<Place, Diagnostic> {
        match self.places.get(array) {
            Some(Place::RegArray { file, lo, len }) => {
                if idx >= *len as u64 {
                    return Err(self.diag(format!("index {idx} out of bounds for `{array}`")));
                }
                Ok(Place::Reg(Operand::Reg(RegRef::new(*file, lo + idx as u16))))
            }
            Some(Place::MemArray { base, len }) => {
                if idx >= *len {
                    return Err(self.diag(format!("index {idx} out of bounds for `{array}`")));
                }
                Ok(Place::Const(base + idx)) // address constant; loads/stores resolve it
            }
            _ => Err(self.diag(format!("`{array}` is not an array"))),
        }
    }

    // ---- expressions --------------------------------------------------------

    fn expr_ast(&mut self) -> Result<Ast, Diagnostic> {
        let mut a = self.term_ast()?;
        loop {
            if self.sym("+")? {
                a = Ast::Bin('+', Box::new(a), Box::new(self.term_ast()?));
            } else if self.sym("-")? {
                a = Ast::Bin('-', Box::new(a), Box::new(self.term_ast()?));
            } else {
                return Ok(a);
            }
        }
    }

    fn term_ast(&mut self) -> Result<Ast, Diagnostic> {
        let mut a = self.shift_ast()?;
        loop {
            if self.sym("&")? {
                a = Ast::Bin('&', Box::new(a), Box::new(self.shift_ast()?));
            } else if self.sym("|")? {
                a = Ast::Bin('|', Box::new(a), Box::new(self.shift_ast()?));
            } else if self.sym("^")? {
                a = Ast::Bin('^', Box::new(a), Box::new(self.shift_ast()?));
            } else {
                return Ok(a);
            }
        }
    }

    fn shift_ast(&mut self) -> Result<Ast, Diagnostic> {
        let mut a = self.atom_ast()?;
        loop {
            let op = if self.kw("shl")? {
                ShiftOp::Shl
            } else if self.kw("shr")? {
                ShiftOp::Shr
            } else if self.kw("sar")? {
                ShiftOp::Sar
            } else if self.kw("rol")? {
                ShiftOp::Rol
            } else if self.kw("ror")? {
                ShiftOp::Ror
            } else {
                return Ok(a);
            };
            let n = self.number()?;
            a = Ast::Shift(op, Box::new(a), n);
        }
    }

    fn atom_ast(&mut self) -> Result<Ast, Diagnostic> {
        self.depth.enter(self.lx.span)?;
        let r = self.atom_ast_inner();
        self.depth.leave();
        r
    }

    fn atom_ast_inner(&mut self) -> Result<Ast, Diagnostic> {
        if self.sym("(")? {
            let e = self.expr_ast()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.sym("~")? {
            return Ok(Ast::Not(Box::new(self.atom_ast()?)));
        }
        if self.sym("-")? {
            return Ok(Ast::Neg(Box::new(self.atom_ast()?)));
        }
        match self.lx.tok.clone() {
            Tok::Num(v) => {
                self.lx.advance()?;
                Ok(Ast::Num(v))
            }
            Tok::Ident(w) => {
                self.lx.advance()?;
                if self.sym("[")? {
                    let idx = self.number()?;
                    self.expect_sym("]")?;
                    Ok(Ast::Index(w, idx))
                } else if self.sym(".")? {
                    let f = self.ident()?;
                    Ok(Ast::Field(w, f))
                } else {
                    Ok(Ast::Name(w))
                }
            }
            _ => Err(self.diag("expected expression")),
        }
    }

    /// Lowers an expression, returning the operand holding its value.
    fn eval(&mut self, a: &Ast) -> Result<Operand, Diagnostic> {
        match a {
            Ast::Num(v) => {
                let t = Operand::Vreg(self.b.vreg());
                self.b.ldi(t, *v);
                Ok(t)
            }
            Ast::Name(n) => match self.places.get(n).cloned() {
                Some(Place::Reg(r)) => Ok(r),
                Some(Place::Const(v)) => {
                    let t = Operand::Vreg(self.b.vreg());
                    self.b.ldi(t, v);
                    Ok(t)
                }
                Some(_) => Err(self.diag(format!("`{n}` is not a simple value"))),
                None => Err(self.diag(format!("unknown name `{n}`"))),
            },
            Ast::Index(arr, idx) => match self.element_place_q(arr, *idx)? {
                Place::Reg(r) => Ok(r),
                Place::Const(addr) => {
                    // Memory array element: load it.
                    let at = Operand::Vreg(self.b.vreg());
                    self.b.ldi(at, addr);
                    let t = Operand::Vreg(self.b.vreg());
                    self.b.load(t, at);
                    Ok(t)
                }
                _ => unreachable!("element places are Reg or Const"),
            },
            Ast::Field(obj, field) => {
                let (reg, h, l) = self.field_of(obj, field)?;
                let t = Operand::Vreg(self.b.vreg());
                if l > 0 {
                    self.b.shift(ShiftOp::Shr, t, reg, l as u64);
                    self.b
                        .alu_imm(AluOp::And, t, t, mask_of(h - l + 1));
                } else {
                    self.b.alu_imm(AluOp::And, t, reg, mask_of(h - l + 1));
                }
                Ok(t)
            }
            Ast::Bin(op, x, y) => {
                let vx = self.eval(x)?;
                // Constant right operands use the immediate path.
                if let Ast::Num(v) = **y {
                    let t = Operand::Vreg(self.b.vreg());
                    let aop = bin_aluop(*op);
                    self.b.alu_imm(aop, t, vx, v);
                    return Ok(t);
                }
                let vy = self.eval(y)?;
                let t = Operand::Vreg(self.b.vreg());
                self.b.alu(bin_aluop(*op), t, vx, vy);
                Ok(t)
            }
            Ast::Shift(op, x, n) => {
                let vx = self.eval(x)?;
                let t = Operand::Vreg(self.b.vreg());
                self.b.shift(*op, t, vx, *n);
                Ok(t)
            }
            Ast::Not(x) => {
                let vx = self.eval(x)?;
                let t = Operand::Vreg(self.b.vreg());
                self.b.alu_un(AluOp::Not, t, vx);
                Ok(t)
            }
            Ast::Neg(x) => {
                let vx = self.eval(x)?;
                let t = Operand::Vreg(self.b.vreg());
                self.b.alu_un(AluOp::Neg, t, vx);
                Ok(t)
            }
        }
    }

    /// Like [`element_place`] but without consuming tokens.
    fn element_place_q(&mut self, array: &str, idx: u64) -> Result<Place, Diagnostic> {
        match self.places.get(array) {
            Some(Place::RegArray { file, lo, len }) => {
                if idx >= *len as u64 {
                    return Err(self.diag(format!("index {idx} out of bounds")));
                }
                Ok(Place::Reg(Operand::Reg(RegRef::new(*file, lo + idx as u16))))
            }
            Some(Place::MemArray { base, len }) => {
                if idx >= *len {
                    return Err(self.diag(format!("index {idx} out of bounds")));
                }
                Ok(Place::Const(base + idx))
            }
            _ => Err(self.diag(format!("`{array}` is not an array"))),
        }
    }

    fn field_of(&self, obj: &str, field: &str) -> Result<(Operand, u16, u16), Diagnostic> {
        match self.places.get(obj) {
            Some(Place::Tuple { reg, fields }) => fields
                .iter()
                .find(|(n, _, _)| n == field)
                .map(|&(_, h, l)| (*reg, h, l))
                .ok_or_else(|| self.diag(format!("`{obj}` has no field `{field}`"))),
            _ => Err(self.diag(format!("`{obj}` is not a tuple"))),
        }
    }

    // ---- verification bookkeeping -------------------------------------------

    /// Records an assignment into the current straight-line segment.
    fn seg_record(&mut self, lhs: &str, rhs: &Ast) {
        if let Some(seg) = &mut self.seg {
            if let Some(e) = ast_to_verify(rhs) {
                seg.push(Assign::new(lhs, e));
                return;
            }
        }
        self.seg = None; // unrepresentable: give up on this segment
    }

    /// Control flow kills static segments.
    fn seg_break(&mut self) {
        self.seg = None;
    }

    // ---- statements -----------------------------------------------------------

    fn statement(&mut self) -> Result<(), Diagnostic> {
        if self.region_depth > 0 {
            // Isolate in a fresh block so nothing packs across statements.
            let nb = self.b.new_block();
            self.b.jump_and_switch(nb);
        }
        self.statement_inner()
    }

    fn statement_inner(&mut self) -> Result<(), Diagnostic> {
        self.depth.enter(self.lx.span)?;
        let r = self.statement_body();
        self.depth.leave();
        r
    }

    fn statement_body(&mut self) -> Result<(), Diagnostic> {
        if self.sym(";")? {
            return Ok(());
        }
        if self.kw("begin")? {
            while !self.kw("end")? {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            return Ok(());
        }
        if self.kw("region")? {
            self.region_depth += 1;
            while !self.kw("end")? {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            self.region_depth -= 1;
            return Ok(());
        }
        if self.kw("cobegin")? {
            // All statements share one microinstruction: lower into a
            // dedicated block recorded in `cogroups`.
            self.seg_break();
            let grp = self.b.new_labeled_block("cobegin");
            let cont = self.b.new_block();
            self.b.jump_and_switch(grp);
            while !self.kw("coend")? {
                self.statement_inner()?;
                let _ = self.sym(";")?;
            }
            self.cogroups.push(grp);
            self.b.terminate(Term::Jump(cont));
            self.b.switch_to(cont);
            return Ok(());
        }
        if self.kw("cocycle")? {
            // Unreorderable sequence: same mechanism as `region`.
            self.region_depth += 1;
            while !(self.kw("coend")? || self.kw("end")?) {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            self.region_depth -= 1;
            return Ok(());
        }
        if self.kw("dur")? {
            // dur S0 do S1; …; Sn end — S0 runs alongside the sequence.
            // Approximated by prefixing S0 (see crate docs).
            self.statement()?;
            self.expect_kw("do")?;
            while !self.kw("end")? {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            return Ok(());
        }
        if self.kw("if")? {
            self.seg_break();
            let join = self.b.new_labeled_block("fi");
            loop {
                let cond = self.condition()?;
                self.expect_kw("then")?;
                let then_b = self.b.new_block();
                let else_b = self.b.new_block();
                self.b.branch(cond, then_b, else_b);
                self.b.switch_to(then_b);
                while !(self.peek_kw("elif") || self.peek_kw("else") || self.peek_kw("fi")) {
                    self.statement()?;
                    let _ = self.sym(";")?;
                }
                self.b.terminate(Term::Jump(join));
                self.b.switch_to(else_b);
                if self.kw("elif")? {
                    continue;
                }
                if self.kw("else")? {
                    while !self.peek_kw("fi") {
                        self.statement()?;
                        let _ = self.sym(";")?;
                    }
                }
                self.expect_kw("fi")?;
                break;
            }
            self.b.terminate(Term::Jump(join));
            self.b.switch_to(join);
            return Ok(());
        }
        if self.kw("while")? {
            self.seg_break();
            let head = self.b.new_labeled_block("while");
            let body = self.b.new_block();
            let done = self.b.new_block();
            self.b.jump_and_switch(head);
            let cond = self.condition()?;
            self.expect_kw("do")?;
            self.b.branch(cond, body, done);
            self.b.switch_to(body);
            while !self.kw("od")? {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            self.b.terminate(Term::Jump(head));
            self.b.switch_to(done);
            return Ok(());
        }
        if self.kw("repeat")? {
            self.seg_break();
            let body = self.b.new_labeled_block("repeat");
            let done = self.b.new_block();
            self.b.jump_and_switch(body);
            while !self.kw("until")? {
                self.statement()?;
                let _ = self.sym(";")?;
            }
            let cond = self.condition()?;
            self.b.branch(cond, done, body);
            self.b.switch_to(done);
            return Ok(());
        }
        if self.kw("assert")? {
            self.expect_sym("(")?;
            // Capture the raw predicate text up to the matching `)`.
            let text = self.capture_pred_text()?;
            let pred = mcc_verify::parse_pred(&text)
                .map_err(|e| self.diag(format!("bad assertion: {e}")))?;
            let info = AssertInfo {
                index: self.asserts.len() + 1,
                text: text.clone(),
                pred: pred.clone(),
                pre: self.pre.clone(),
                segment: self.seg.clone(),
            };
            self.asserts.push(info);
            self.pre = pred.clone();
            self.seg = Some(Vec::new());
            self.lower_runtime_assert(&pred)?;
            return Ok(());
        }
        if self.kw("call")? {
            let name = self.ident()?;
            let entry = *self
                .procs
                .get(&name)
                .ok_or_else(|| self.diag(format!("unknown procedure `{name}`")))?;
            self.seg_break();
            self.b.call(entry);
            return Ok(());
        }
        if self.kw("push")? {
            // push(stack, expr)
            self.expect_sym("(")?;
            let sname = self.ident()?;
            self.expect_sym(",")?;
            let e = self.expr_ast()?;
            self.expect_sym(")")?;
            self.seg_break();
            let (base, cap, ptr) = self.stack_of(&sname)?;
            let v = self.eval(&e)?;
            // addr = base + ptr; MEM[addr] = v; ptr += 1 (no overflow check
            // here: S* pre/postconditions are the intended guard).
            let at = Operand::Vreg(self.b.vreg());
            self.b.alu_imm(AluOp::Add, at, ptr, base);
            self.b.store(at, v);
            self.b.alu_imm(AluOp::Add, ptr, ptr, 1);
            let _ = cap;
            return Ok(());
        }
        if self.kw("pop")? {
            // pop(stack, var)
            self.expect_sym("(")?;
            let sname = self.ident()?;
            self.expect_sym(",")?;
            let dst_name = self.ident()?;
            self.expect_sym(")")?;
            self.seg_break();
            let (base, _cap, ptr) = self.stack_of(&sname)?;
            let dst = match self.places.get(&dst_name) {
                Some(Place::Reg(r)) => *r,
                _ => return Err(self.diag(format!("`{dst_name}` is not a simple variable"))),
            };
            self.b.alu_imm(AluOp::Sub, ptr, ptr, 1);
            let at = Operand::Vreg(self.b.vreg());
            self.b.alu_imm(AluOp::Add, at, ptr, base);
            self.b.load(dst, at);
            return Ok(());
        }

        // Assignment: lhs := expr
        let name = self.ident()?;
        let lhs = if self.sym("[")? {
            let idx = self.number()?;
            self.expect_sym("]")?;
            Lhs::Element(name.clone(), idx)
        } else if self.sym(".")? {
            let f = self.ident()?;
            Lhs::Field(name.clone(), f)
        } else {
            Lhs::Simple(name.clone())
        };
        self.expect_sym(":=")?;
        let rhs = self.expr_ast()?;
        self.lower_assign(&lhs, &rhs)
    }

    fn stack_of(&self, name: &str) -> Result<(u64, u64, Operand), Diagnostic> {
        match self.places.get(name) {
            Some(Place::Stack { base, cap, ptr }) => Ok((*base, *cap, *ptr)),
            _ => Err(self.diag(format!("`{name}` is not a stack"))),
        }
    }

    fn lower_assign(&mut self, lhs: &Lhs, rhs: &Ast) -> Result<(), Diagnostic> {
        match lhs {
            Lhs::Simple(n) => match self.places.get(n).cloned() {
                Some(Place::Reg(dst)) => {
                    self.seg_record(n, rhs);
                    self.assign_into(dst, rhs)
                }
                Some(_) => Err(self.diag(format!("cannot assign to `{n}` as a whole"))),
                None => Err(self.diag(format!("unknown name `{n}`"))),
            },
            Lhs::Element(arr, idx) => {
                match self.element_place_q(arr, *idx)? {
                    Place::Reg(dst) => {
                        self.seg_record(&format!("{arr}{idx}"), rhs);
                        self.assign_into(dst, rhs)
                    }
                    Place::Const(addr) => {
                        self.seg_break();
                        let v = self.eval(rhs)?;
                        let at = Operand::Vreg(self.b.vreg());
                        self.b.ldi(at, addr);
                        self.b.store(at, v);
                        Ok(())
                    }
                    _ => unreachable!(),
                }
            }
            Lhs::Field(obj, field) => {
                // Read-modify-write of the bitfield.
                self.seg_break();
                let (reg, h, l) = self.field_of(obj, field)?;
                let fmask = mask_of(h - l + 1) << l;
                let v = self.eval(rhs)?;
                let shifted = Operand::Vreg(self.b.vreg());
                if l > 0 {
                    self.b.shift(ShiftOp::Shl, shifted, v, l as u64);
                } else {
                    self.b.mov(shifted, v);
                }
                self.b.alu_imm(AluOp::And, shifted, shifted, fmask);
                let cleared = Operand::Vreg(self.b.vreg());
                self.b
                    .alu_imm(AluOp::And, cleared, reg, !fmask & 0xFFFF);
                self.b.alu(AluOp::Or, reg, cleared, shifted);
                Ok(())
            }
        }
    }

    /// Lowers `dst := rhs`, using the immediate path for constants and
    /// avoiding a temp for single-operation right-hand sides.
    fn assign_into(&mut self, dst: Operand, rhs: &Ast) -> Result<(), Diagnostic> {
        match rhs {
            Ast::Num(v) => {
                self.b.ldi(dst, *v);
                Ok(())
            }
            Ast::Name(n) => match self.places.get(n).cloned() {
                Some(Place::Reg(src)) => {
                    if src != dst {
                        self.b.mov(dst, src);
                    }
                    Ok(())
                }
                Some(Place::Const(v)) => {
                    self.b.ldi(dst, v);
                    Ok(())
                }
                _ => Err(self.diag(format!("`{n}` is not a simple value"))),
            },
            Ast::Bin(op, x, y) => {
                let vx = self.eval(x)?;
                if let Ast::Num(v) = **y {
                    self.b.alu_imm(bin_aluop(*op), dst, vx, v);
                } else {
                    let vy = self.eval(y)?;
                    self.b.alu(bin_aluop(*op), dst, vx, vy);
                }
                Ok(())
            }
            Ast::Shift(op, x, n) => {
                let vx = self.eval(x)?;
                self.b.shift(*op, dst, vx, *n);
                Ok(())
            }
            Ast::Not(x) => {
                let vx = self.eval(x)?;
                self.b.alu_un(AluOp::Not, dst, vx);
                Ok(())
            }
            Ast::Neg(x) => {
                let vx = self.eval(x)?;
                self.b.alu_un(AluOp::Neg, dst, vx);
                Ok(())
            }
            _ => {
                let v = self.eval(rhs)?;
                self.b.mov(dst, v);
                Ok(())
            }
        }
    }

    /// Parses `expr relop expr` (or `uf = 0|1`), emits the flag-setting
    /// code, and returns the branch condition.
    fn condition(&mut self) -> Result<CondKind, Diagnostic> {
        if self.kw("uf")? {
            self.expect_sym("=")?;
            let v = self.number()?;
            return Ok(if v == 1 { CondKind::Uf } else { CondKind::NotUf });
        }
        self.seg_break();
        let a = self.expr_ast()?;
        let rel = match &self.lx.tok {
            Tok::Sym(s) if ["=", "<>", "<", "<=", ">", ">="].contains(&s.as_str()) => s.clone(),
            _ => return Err(self.diag("expected relational operator")),
        };
        self.lx.advance()?;
        let b = self.expr_ast()?;
        let (a, rel, b) = match rel.as_str() {
            ">" => (b, "<".to_string(), a),
            "<=" => (b, ">=".to_string(), a),
            r => (a, r.to_string(), b),
        };
        let va = self.eval(&a)?;
        if matches!(b, Ast::Num(0)) && (rel == "=" || rel == "<>") {
            self.b.alu_un(AluOp::Pass, va, va);
        } else {
            let t = Operand::Vreg(self.b.vreg());
            if let Ast::Num(v) = b {
                self.b.alu_imm(AluOp::Sub, t, va, v);
            } else {
                let vb = self.eval(&b)?;
                self.b.alu(AluOp::Sub, t, va, vb);
            }
        }
        Ok(match rel.as_str() {
            "=" => CondKind::Zero,
            "<>" => CondKind::NotZero,
            "<" => CondKind::Neg,
            ">=" => CondKind::NotNeg,
            _ => unreachable!(),
        })
    }

    /// Captures the raw text of an assertion up to its closing paren.
    fn capture_pred_text(&mut self) -> Result<String, Diagnostic> {
        // Re-lex from the raw source: find the matching `)`.
        let src = self.lx.c.source();
        let start = self.lx.span.start;
        let mut depth = 1usize;
        let mut end = start;
        for (i, ch) in src[start..].char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = start + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(self.diag("unterminated assert"));
        }
        let text = src[start..end].to_string();
        // Skip the lexer past the captured region.
        while self.lx.span.start < end {
            self.lx.advance()?;
        }
        self.expect_sym(")")?;
        Ok(text)
    }

    /// Runtime check: a simple comparison assertion compiles to a branch
    /// to the shared fail block. Non-comparison predicates are checked
    /// statically only.
    fn lower_runtime_assert(&mut self, pred: &Pred) -> Result<(), Diagnostic> {
        let Pred::Cmp(op, lhs, rhs) = pred else {
            return Ok(());
        };
        // Only variable-vs-constant and variable-vs-variable checks are
        // lowered (expressions would re-enter the expression compiler with
        // verify-AST terms; static checking covers those).
        let as_operand = |p: &Self, e: &mcc_verify::Expr| -> Option<Operand> {
            match e {
                mcc_verify::Expr::Var(n) => match p.places.get(n) {
                    Some(Place::Reg(r)) => Some(*r),
                    _ => None,
                },
                _ => None,
            }
        };
        let lv = as_operand(self, lhs);
        let (cond, va, vb) = match (lv, rhs) {
            (Some(va), mcc_verify::Expr::Const(c)) => {
                let idx = self.asserts.len() as u64;
                let _ = idx;
                (op, va, RegOrConst::Const(*c))
            }
            (Some(va), mcc_verify::Expr::Var(_)) => match as_operand(self, rhs) {
                Some(vb) => (op, va, RegOrConst::Reg(vb)),
                None => return Ok(()),
            },
            _ => return Ok(()),
        };
        let kind = match cond {
            mcc_verify::CmpOp::Eq => CondKind::Zero,
            mcc_verify::CmpOp::Ne => CondKind::NotZero,
            mcc_verify::CmpOp::Lt => CondKind::Neg,
            mcc_verify::CmpOp::Ge => CondKind::NotNeg,
            _ => return Ok(()), // Le/Gt: static only
        };
        // Ensure the fail block and flag exist.
        let flag = *self.assert_flag.get_or_insert_with(|| {
            // Flag is created lazily; initialised at entry by a fixup in
            // `parse` (block 0 prologue).
            Operand::Vreg(self.b.vreg())
        });
        let fail = match self.assert_fail_block {
            Some(b) => b,
            None => {
                let b = self.b.new_labeled_block("assert_fail");
                self.assert_fail_block = Some(b);
                b
            }
        };
        let idx = self.asserts.len() as u64; // 1-based already pushed
        // Compare and branch.
        let t = Operand::Vreg(self.b.vreg());
        match vb {
            RegOrConst::Const(0) if matches!(kind, CondKind::Zero | CondKind::NotZero) => {
                self.b.alu_un(AluOp::Pass, va, va);
            }
            RegOrConst::Const(c) => self.b.alu_imm(AluOp::Sub, t, va, c),
            RegOrConst::Reg(r) => self.b.alu(AluOp::Sub, t, va, r),
        }
        let ok = self.b.new_block();
        let set = self.b.new_block();
        self.b.branch(kind, ok, set);
        self.b.switch_to(set);
        self.b.ldi(flag, idx);
        self.b.terminate(Term::Jump(fail));
        self.b.switch_to(ok);
        Ok(())
    }
}

enum RegOrConst {
    Reg(Operand),
    Const(u64),
}

enum Lhs {
    Simple(String),
    Element(String, u64),
    Field(String, String),
}

fn bin_aluop(c: char) -> AluOp {
    match c {
        '+' => AluOp::Add,
        '-' => AluOp::Sub,
        '&' => AluOp::And,
        '|' => AluOp::Or,
        _ => AluOp::Xor,
    }
}

fn mask_of(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Converts an S\* expression AST into a verification expression, when
/// representable (no array/field/memory references).
fn ast_to_verify(a: &Ast) -> Option<mcc_verify::Expr> {
    use mcc_verify::Expr as V;
    Some(match a {
        Ast::Num(v) => V::Const(*v),
        Ast::Name(n) => V::Var(n.clone()),
        Ast::Index(arr, i) => V::Var(format!("{arr}{i}")),
        Ast::Field(_, _) => return None,
        Ast::Bin(op, x, y) => {
            let x = ast_to_verify(x)?;
            let y = ast_to_verify(y)?;
            match op {
                '+' => V::add(x, y),
                '-' => V::sub(x, y),
                '&' => V::and(x, y),
                '|' => V::or(x, y),
                _ => V::xor(x, y),
            }
        }
        Ast::Shift(ShiftOp::Shl, x, n) => V::shl(ast_to_verify(x)?, *n),
        Ast::Shift(ShiftOp::Shr, x, n) => V::shr(ast_to_verify(x)?, *n),
        Ast::Shift(_, _, _) => return None,
        Ast::Not(x) => V::Not(Box::new(ast_to_verify(x)?)),
        Ast::Neg(x) => V::sub(V::Const(0), ast_to_verify(x)?),
    })
}

/// Parses and lowers an S(M) program for machine `m`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] with the span of the offending token.
pub fn parse(src: &str, m: &MachineDesc) -> Result<SstarProgram, Diagnostic> {
    parse_with_limits(src, m, &FrontendLimits::default())
}

/// [`parse`] under explicit resource limits: any input — however large,
/// deep, or malformed — terminates with a [`Diagnostic`] instead of
/// exhausting the stack or spinning.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for syntax errors and limit violations alike.
pub fn parse_with_limits(
    src: &str,
    m: &MachineDesc,
    limits: &FrontendLimits,
) -> Result<SstarProgram, Diagnostic> {
    limits.check_source(src)?;
    let lx = Lexer::new(src, limits)?;
    let mut p = Parser {
        lx,
        m,
        b: FuncBuilder::new("sstar"),
        places: HashMap::new(),
        cogroups: Vec::new(),
        asserts: Vec::new(),
        seg: Some(Vec::new()),
        pre: Pred::True,
        assert_fail_block: None,
        assert_flag: None,
        next_mem: 0x6000,
        region_depth: 0,
        procs: HashMap::new(),
        depth: DepthGuard::new(limits),
    };

    p.expect_kw("program")?;
    let name = p.ident()?;
    p.expect_sym(";")?;

    while p.peek_kw("var") || p.peek_kw("const") || p.peek_kw("syn") {
        p.declaration()?;
    }

    // Parameterless procedures (§2.2.3: "the procedure name must be
    // followed by a parenthesized list of the variables used in the
    // body" — the list is parsed and checked against declarations).
    while p.peek_kw("proc") {
        p.proc_decl()?;
    }

    p.expect_kw("begin")?;
    while !p.kw("end")? {
        p.statement()?;
        let _ = p.sym(";")?;
    }
    p.b.terminate(Term::Halt);

    // Fail block: just halts (the flag already carries the index).
    if let Some(fb) = p.assert_fail_block {
        p.b.switch_to(fb);
        p.b.terminate(Term::Halt);
    }

    // Observability: every register-bound variable plus the assert flag.
    let mut vars = HashMap::new();
    for (n, place) in &p.places {
        match place {
            Place::Reg(r) => {
                vars.insert(n.clone(), *r);
                p.b.mark_live_out(*r);
            }
            Place::Tuple { reg, .. } => {
                vars.insert(n.clone(), *reg);
                p.b.mark_live_out(*reg);
            }
            _ => {}
        }
    }
    if let Some(flag) = p.assert_flag {
        p.b.mark_live_out(flag);
    }

    let asserts = std::mem::take(&mut p.asserts);
    let cogroups = std::mem::take(&mut p.cogroups);
    let assert_flag = p.assert_flag;
    let mut func = p.b.finish();
    func.name = name.clone();
    // Initialise the assert flag at entry (prepend to block 0).
    if let Some(flag) = assert_flag {
        func.blocks[0]
            .ops
            .insert(0, mcc_mir::MirOp::ldi(flag, 0));
    }
    func.validate()
        .map_err(|e| Diagnostic::new(format!("internal lowering error: {e}"), Span::default()))?;
    Ok(SstarProgram {
        name,
        func,
        cogroups,
        vars,
        asserts,
        assert_flag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;

    fn p(src: &str) -> SstarProgram {
        parse(src, &hm1()).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn minimal_program() {
        let prog = p("program t; var x: seq [15..0] bit with R1; begin x := 5; end");
        assert_eq!(prog.name, "t");
        assert_eq!(prog.func.op_count(), 1);
    }

    #[test]
    fn unbound_variables_are_virtual() {
        let prog = p("program t; var x: seq [15..0] bit; begin x := 5; end");
        assert!(prog.func.has_virtual_regs());
    }

    #[test]
    fn width_checked_against_register() {
        let e = parse(
            "program t; var x: seq [31..0] bit with R1; begin x := 5; end",
            &hm1(),
        )
        .unwrap_err();
        assert!(e.message.contains("needs 32 bits"));
    }

    #[test]
    fn complex_expression_introduces_temps() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1, y: seq [15..0] bit with R2; \
             begin x := (x + y) & (x - 1); end",
        );
        // add, sub-imm, and — three ops with temporaries.
        assert!(prog.func.op_count() >= 3);
        assert!(prog.func.has_virtual_regs());
    }

    #[test]
    fn localstore_array_and_syn() {
        let prog = p(
            "program t; \
             var localstore: array [0..31] of seq [15..0] bit with LS; \
             syn mpr = localstore[0], mpnd = localstore[1]; \
             begin mpr := 3; mpnd := mpr + 1; end",
        );
        let m = hm1();
        let ls = m.find_file("LS").unwrap();
        assert_eq!(prog.vars.get("mpr"), Some(&Operand::Reg(RegRef::new(ls, 0))));
    }

    #[test]
    fn memory_array() {
        let prog = p(
            "program t; var buf: array [0..7] of seq [15..0] bit with mem 0x4000; \
             var x: seq [15..0] bit with R1; \
             begin buf[3] := 9; x := buf[3]; end",
        );
        // store path: ldi + ldi-addr + store; load path: ldi-addr + load.
        assert!(prog.func.op_count() >= 4);
    }

    #[test]
    fn tuple_bitfields() {
        let prog = p(
            "program t; \
             var ir: tuple opcode: seq [15..12] bit; addr: seq [11..0] bit; end with R4; \
             var x: seq [15..0] bit with R1; \
             begin x := ir.opcode; ir.addr := 5; end",
        );
        // Field read: shr + and; field write: read-modify-write.
        assert!(prog.func.op_count() >= 5);
    }

    #[test]
    fn cobegin_records_group() {
        let prog = p(
            "program t; \
             var a: seq [15..0] bit with R1, b: seq [15..0] bit with R2, \
                 c: seq [15..0] bit with R3, d: seq [15..0] bit with R4; \
             begin cobegin a := c; b := d coend; end",
        );
        assert_eq!(prog.cogroups.len(), 1);
        let grp = prog.cogroups[0] as usize;
        assert_eq!(prog.func.blocks[grp].ops.len(), 2);
    }

    #[test]
    fn repeat_until_shape() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1; \
             begin repeat x := x - 1 until x = 0; end",
        );
        prog.func.validate().unwrap();
        assert!(prog.func.blocks.len() >= 3);
    }

    #[test]
    fn if_elif_else_fi() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1; \
             begin if x = 0 then x := 1; elif x = 1 then x := 2; else x := 3; fi; end",
        );
        prog.func.validate().unwrap();
    }

    #[test]
    fn stack_push_pop() {
        let prog = p(
            "program t; var s: stack [8] of seq [15..0] bit with R7; \
             var x: seq [15..0] bit with R1; \
             begin push(s, 42); pop(s, x); end",
        );
        prog.func.validate().unwrap();
        // ldi(ptr=0) + push: eval+add+store+inc, pop: dec+add+load.
        assert!(prog.func.op_count() >= 7);
    }

    #[test]
    fn asserts_recorded_and_checkable() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1; \
             begin x := 5; assert(x = 5); x := x + 1; assert(x = 6); end",
        );
        assert_eq!(prog.asserts.len(), 2);
        let verdicts = prog.check_asserts(16);
        assert_eq!(verdicts.len(), 2);
        for (_, v) in &verdicts {
            assert_eq!(*v, Verdict::Valid, "{verdicts:?}");
        }
    }

    #[test]
    fn wrong_assert_is_refuted() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1; \
             begin x := 5; assert(x = 6); end",
        );
        let verdicts = prog.check_asserts(16);
        assert!(matches!(verdicts[0].1, Verdict::Invalid { .. }));
    }

    #[test]
    fn paper_mpy_example() {
        // The §2.2.3 multiplication program, adapted to this instantiation.
        let src = "\
program mpy;
var localstore: array [0..31] of seq [15..0] bit with LS;
const minus1 = 0xFFFF;
var left_alu_in: seq [15..0] bit with R1;
var right_alu_in: seq [15..0] bit with R2;
var aluout: seq [15..0] bit with R3;
syn mpr = localstore[0],
    mpnd = localstore[1],
    product = localstore[2];
begin
    repeat
        cocycle
            cobegin left_alu_in := product; right_alu_in := mpnd coend;
            aluout := left_alu_in + right_alu_in;
            product := aluout
        end;
        cocycle
            cobegin left_alu_in := mpr; right_alu_in := minus1 coend;
            aluout := left_alu_in + right_alu_in;
            mpr := aluout
        end
    until aluout = 0;
end";
        let prog = p(src);
        prog.func.validate().unwrap();
        assert_eq!(prog.cogroups.len(), 2);
    }

    #[test]
    fn procedures_compile_and_call() {
        let prog = p(
            "program t; var x: seq [15..0] bit with R1; \
             proc bump (x); x := x + 1; \
             begin x := 5; call bump; call bump; end",
        );
        prog.func.validate().unwrap();
        let calls = prog
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| o.sem == mcc_machine::Semantic::Call)
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn proc_uses_list_checked() {
        let e = parse(
            "program t; var x: seq [15..0] bit with R1; \
             proc bump (nosuch); x := x + 1; begin end",
            &hm1(),
        )
        .unwrap_err();
        assert!(e.message.contains("undeclared variable"));
    }

    #[test]
    fn deep_expression_nesting_is_limited() {
        let mut src = String::from("program t; var x: seq [15..0] bit with R1; begin x := ");
        src.push_str(&"(".repeat(500));
        src.push('1');
        src.push_str(&")".repeat(500));
        src.push_str("; end");
        let e = parse(&src, &hm1()).unwrap_err();
        assert!(e.message.contains("nesting"), "{}", e.message);
    }

    #[test]
    fn inverted_tuple_field_bounds_rejected() {
        let e = parse(
            "program t; var ir: tuple f: seq [0..12] bit; end with R4; begin end",
            &hm1(),
        )
        .unwrap_err();
        assert!(e.message.contains("bad field bounds"), "{}", e.message);
    }

    #[test]
    fn huge_array_bound_rejected() {
        let e = parse(
            "program t; var a: array [0..18446744073709551615] of seq [15..0] bit with mem 0; \
             begin end",
            &hm1(),
        )
        .unwrap_err();
        assert!(e.message.contains("too large"), "{}", e.message);
    }

    #[test]
    fn token_budget_is_enforced() {
        let limits = FrontendLimits {
            max_tokens: 8,
            ..FrontendLimits::default()
        };
        let e = parse_with_limits(
            "program t; var x: seq [15..0] bit with R1; begin x := 5; end",
            &hm1(),
            &limits,
        )
        .unwrap_err();
        assert!(e.message.contains("token budget"), "{}", e.message);
    }

    #[test]
    fn region_isolates_statements() {
        let prog = p(
            "program t; var a: seq [15..0] bit with R1, b: seq [15..0] bit with R2; \
             begin region a := 1; b := 2; end end",
        );
        // Each region statement sits in its own block.
        let nonempty = prog
            .func
            .blocks
            .iter()
            .filter(|b| !b.ops.is_empty())
            .count();
        assert!(nonempty >= 2);
    }
}
