//! # `mcc-simpl` — the SIMPL frontend
//!
//! SIMPL (*Single Identity Micro Programming Language*, Ramamoorthy &
//! Tsuchiya 1974) is the survey's §2.2.1 language: the first language to
//! let a programmer write a horizontal microprogram *sequentially* and
//! leave composition to the compiler. Its hallmarks, all reproduced here:
//!
//! * variables **are** machine registers (`R0`…`R15`, `ACC`), with an
//!   `equiv` statement for aliasing;
//! * assignments are written *dataflow-style*, `expr -> register`;
//! * expressions contain **one operator** (the paper is explicit);
//! * the **single identity principle**: source order distinguishes the
//!   values a register holds, and only data dependence constrains
//!   execution order — which is exactly what the toolkit's dependence DAG
//!   implements downstream;
//! * control: `begin/end`, `while…do`, `if…then[…else]`, `for`, `case`
//!   (multiway branch), `proc`/`call`, and the shifter's `UF` condition;
//! * a single datatype (the word) and no data structuring whatsoever —
//!   the survey's main criticism.
//!
//! # Example (the paper's floating-point multiply, §2.2.1)
//!
//! ```text
//! program fpmul;
//! const M3 = 0x1FFF;
//! begin
//!     R1 & M3 -> ACC;
//!     ...
//!     while R2 <> 0 do
//!     begin
//!         ACC shr 1 -> ACC;
//!         R2 shr 1 -> R2;
//!         if UF = 1 then R1 + ACC -> ACC;
//!     end;
//! end
//! ```

use std::collections::HashMap;

use mcc_lang::{parse_int, Cursor, DepthGuard, Diagnostic, FrontendLimits, Span, TokenBudget};
use mcc_machine::{AluOp, CondKind, MachineDesc, ShiftOp};
use mcc_mir::{FuncBuilder, MirFunction, Operand, Term};

/// A parsed-and-lowered SIMPL program.
#[derive(Debug)]
pub struct SimplProgram {
    /// The program name from the header.
    pub name: String,
    /// The lowered function (operands are physical registers, plus
    /// compiler temporaries for comparisons).
    pub func: MirFunction,
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    Arrow,     // ->
    Semi,      // ;
    Colon,     // :
    Assign,    // :=
    LParen,
    RParen,
    Op(String),    // + - & | ^ ~ shl shr sar rol ror (alphabetic ops lex as Ident)
    Rel(String),   // = <> < <= > >=
    Eof,
}

struct Lexer<'a> {
    c: Cursor<'a>,
    tok: Tok,
    span: Span,
    budget: TokenBudget,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, limits: &FrontendLimits) -> Result<Self, Diagnostic> {
        let mut l = Lexer {
            c: Cursor::new(src),
            tok: Tok::Eof,
            span: Span::default(),
            budget: TokenBudget::new(limits),
        };
        l.advance()?;
        Ok(l)
    }

    fn advance(&mut self) -> Result<(), Diagnostic> {
        self.c.skip_ws();
        let start = self.c.pos();
        // Ticking on Eof too makes the budget a backstop against any
        // parser loop that fails to notice end-of-input.
        self.budget.tick(Span::new(start, start))?;
        let tok = match self.c.peek() {
            None => Tok::Eof,
            Some(ch) if ch.is_alphabetic() || ch == '_' => {
                let w = self
                    .c
                    .take_while(|c| c.is_alphanumeric() || c == '_')
                    .to_string();
                Tok::Ident(w)
            }
            Some(ch) if ch.is_ascii_digit() => {
                let w = self.c.take_while(|c| c.is_alphanumeric());
                match parse_int(w) {
                    Some(v) => Tok::Num(v),
                    None => {
                        return Err(Diagnostic::new(
                            format!("bad number `{w}`"),
                            Span::new(start, self.c.pos()),
                        ))
                    }
                }
            }
            Some('-') => {
                self.c.bump();
                if self.c.eat('>') {
                    Tok::Arrow
                } else {
                    Tok::Op("-".into())
                }
            }
            Some(':') => {
                self.c.bump();
                if self.c.eat('=') {
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            Some('<') => {
                self.c.bump();
                if self.c.eat('>') {
                    Tok::Rel("<>".into())
                } else if self.c.eat('=') {
                    Tok::Rel("<=".into())
                } else {
                    Tok::Rel("<".into())
                }
            }
            Some('>') => {
                self.c.bump();
                if self.c.eat('=') {
                    Tok::Rel(">=".into())
                } else {
                    Tok::Rel(">".into())
                }
            }
            Some('=') => {
                self.c.bump();
                Tok::Rel("=".into())
            }
            Some(';') => {
                self.c.bump();
                Tok::Semi
            }
            Some('(') => {
                self.c.bump();
                Tok::LParen
            }
            Some(')') => {
                self.c.bump();
                Tok::RParen
            }
            Some(c @ ('+' | '&' | '|' | '^' | '~')) => {
                self.c.bump();
                Tok::Op(c.to_string())
            }
            Some(other) => {
                return Err(Diagnostic::new(
                    format!("unexpected character `{other}`"),
                    Span::new(start, start + other.len_utf8()),
                ))
            }
        };
        self.span = Span::new(start, self.c.pos());
        self.tok = tok;
        Ok(())
    }
}

// ---------------------------------------------------------------- parser --

struct Parser<'a, 'm> {
    lx: Lexer<'a>,
    m: &'m MachineDesc,
    b: FuncBuilder,
    consts: HashMap<String, u64>,
    equivs: HashMap<String, Operand>,
    procs: HashMap<String, u32>,
    /// Call sites awaiting proc resolution: (name, (block, op index), span).
    pending_calls: Vec<(String, (u32, usize), Span)>,
    depth: DepthGuard,
}

/// A parsed single-operator expression.
enum Expr {
    Operand(Val),
    Bin(String, Val, Val),
    Un(String, Val),
    Shift(ShiftOp, Val, u64),
}

#[derive(Clone, Copy)]
enum Val {
    Reg(Operand),
    Imm(u64),
}

impl<'a, 'm> Parser<'a, 'm> {
    fn diag(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.lx.span)
    }

    fn kw(&mut self, word: &str) -> Result<bool, Diagnostic> {
        if matches!(&self.lx.tok, Tok::Ident(w) if w.eq_ignore_ascii_case(word)) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), Diagnostic> {
        if self.kw(word)? {
            Ok(())
        } else {
            Err(self.diag(format!("expected `{word}`")))
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), Diagnostic> {
        if &self.lx.tok == t {
            self.lx.advance()?;
            Ok(())
        } else {
            Err(self.diag(format!("expected {what}")))
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match &self.lx.tok {
            Tok::Ident(w) => {
                let w = w.clone();
                self.lx.advance()?;
                Ok(w)
            }
            _ => Err(self.diag("expected identifier")),
        }
    }

    fn register(&mut self, name: &str) -> Result<Operand, Diagnostic> {
        let key = name.to_ascii_lowercase();
        if let Some(&r) = self.equivs.get(&key) {
            return Ok(r);
        }
        self.m
            .resolve_reg_name(name)
            .map(Operand::Reg)
            .ok_or_else(|| self.diag(format!("`{name}` is not a register of {}", self.m.name)))
    }

    fn val(&mut self) -> Result<Val, Diagnostic> {
        match self.lx.tok.clone() {
            Tok::Num(v) => {
                self.lx.advance()?;
                Ok(Val::Imm(v))
            }
            Tok::Ident(w) => {
                self.lx.advance()?;
                if let Some(&c) = self.consts.get(&w.to_ascii_lowercase()) {
                    Ok(Val::Imm(c))
                } else {
                    Ok(Val::Reg(self.register(&w)?))
                }
            }
            _ => Err(self.diag("expected register, constant or number")),
        }
    }

    /// expr ::= '~' val | '-' val | val [binop val] | val shiftop amount
    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        if let Tok::Op(op) = self.lx.tok.clone() {
            if op == "~" || op == "-" {
                self.lx.advance()?;
                let v = self.val()?;
                return Ok(Expr::Un(op, v));
            }
        }
        let a = self.val()?;
        match self.lx.tok.clone() {
            Tok::Op(op) => {
                self.lx.advance()?;
                let b = self.val()?;
                Ok(Expr::Bin(op, a, b))
            }
            Tok::Ident(w)
                if ["shl", "shr", "sar", "rol", "ror"]
                    .contains(&w.to_ascii_lowercase().as_str()) =>
            {
                self.lx.advance()?;
                let op = match w.to_ascii_lowercase().as_str() {
                    "shl" => ShiftOp::Shl,
                    "shr" => ShiftOp::Shr,
                    "sar" => ShiftOp::Sar,
                    "rol" => ShiftOp::Rol,
                    _ => ShiftOp::Ror,
                };
                let n = match self.val()? {
                    Val::Imm(n) => n,
                    Val::Reg(_) => {
                        return Err(self.diag("shift amounts must be constants in SIMPL"))
                    }
                };
                Ok(Expr::Shift(op, a, n))
            }
            _ => Ok(Expr::Operand(a)),
        }
    }

    /// Emits `expr -> dst`.
    fn emit_assign(&mut self, e: Expr, dst: Operand) -> Result<(), Diagnostic> {
        let to_reg = |p: &mut Self, v: Val| -> Operand {
            match v {
                Val::Reg(r) => r,
                Val::Imm(c) => {
                    let t = Operand::Vreg(p.b.vreg());
                    p.b.ldi(t, c);
                    t
                }
            }
        };
        match e {
            Expr::Operand(Val::Imm(c)) => self.b.ldi(dst, c),
            Expr::Operand(Val::Reg(r)) => self.b.mov(dst, r),
            Expr::Un(op, v) => {
                let r = to_reg(self, v);
                let a = if op == "~" { AluOp::Not } else { AluOp::Neg };
                self.b.alu_un(a, dst, r);
            }
            Expr::Bin(op, a, bv) => {
                let aop = match op.as_str() {
                    "+" => AluOp::Add,
                    "-" => AluOp::Sub,
                    "&" => AluOp::And,
                    "|" => AluOp::Or,
                    "^" => AluOp::Xor,
                    other => return Err(self.diag(format!("unknown operator `{other}`"))),
                };
                match (a, bv) {
                    (Val::Reg(ra), Val::Imm(c)) => self.b.alu_imm(aop, dst, ra, c),
                    (Val::Imm(c), Val::Reg(rb)) if matches!(aop, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor) => {
                        // Commutative: swap.
                        self.b.alu_imm(aop, dst, rb, c)
                    }
                    (a, bv) => {
                        let ra = to_reg(self, a);
                        let rb = to_reg(self, bv);
                        self.b.alu(aop, dst, ra, rb);
                    }
                }
            }
            Expr::Shift(op, v, n) => {
                let r = to_reg(self, v);
                self.b.shift(op, dst, r, n);
            }
        }
        Ok(())
    }

    /// Parses a condition and emits its flag-setting code; returns the
    /// [`CondKind`] meaning "condition holds".
    fn condition(&mut self) -> Result<CondKind, Diagnostic> {
        // `UF = 0|1` tests the shifter's underflow bit directly.
        if matches!(&self.lx.tok, Tok::Ident(w) if w.eq_ignore_ascii_case("uf")) {
            self.lx.advance()?;
            let rel = match &self.lx.tok {
                Tok::Rel(r) => r.clone(),
                _ => return Err(self.diag("expected `=` or `<>` after UF")),
            };
            self.lx.advance()?;
            let v = match self.lx.tok {
                Tok::Num(v) => v,
                _ => return Err(self.diag("expected 0 or 1 after UF test")),
            };
            self.lx.advance()?;
            return Ok(match (rel.as_str(), v) {
                ("=", 1) | ("<>", 0) => CondKind::Uf,
                ("=", 0) | ("<>", 1) => CondKind::NotUf,
                _ => return Err(self.diag("UF compares only against 0 or 1")),
            });
        }
        let a = self.val()?;
        let rel = match &self.lx.tok {
            Tok::Rel(r) => r.clone(),
            _ => return Err(self.diag("expected relational operator")),
        };
        self.lx.advance()?;
        let bv = self.val()?;
        let (a, rel, bv) = match rel.as_str() {
            // a > b ≡ b < a ; a <= b ≡ b >= a — normalise to < and >=.
            ">" => (bv, "<".to_string(), a),
            "<=" => (bv, ">=".to_string(), a),
            r => (a, r.to_string(), bv),
        };
        let ra = match a {
            Val::Reg(r) => r,
            Val::Imm(c) => {
                let t = Operand::Vreg(self.b.vreg());
                self.b.ldi(t, c);
                t
            }
        };
        if matches!(bv, Val::Imm(0)) && (rel == "=" || rel == "<>") {
            self.b.alu_un(AluOp::Pass, ra, ra);
        } else {
            let t = Operand::Vreg(self.b.vreg());
            match bv {
                Val::Reg(rb) => self.b.alu(AluOp::Sub, t, ra, rb),
                Val::Imm(c) => self.b.alu_imm(AluOp::Sub, t, ra, c),
            }
        }
        Ok(match rel.as_str() {
            "=" => CondKind::Zero,
            "<>" => CondKind::NotZero,
            "<" => CondKind::Neg,
            ">=" => CondKind::NotNeg,
            _ => unreachable!(),
        })
    }

    /// stmt — returns whether the statement terminated the current block
    /// (it never does; all SIMPL statements fall through).
    fn stmt(&mut self) -> Result<(), Diagnostic> {
        self.depth.enter(self.lx.span)?;
        let r = self.stmt_inner();
        self.depth.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<(), Diagnostic> {
        // Empty statement: stray `;` (Pascal-style separators).
        if self.lx.tok == Tok::Semi {
            self.lx.advance()?;
            return Ok(());
        }
        if self.kw("comment")? {
            // Skip to the next semicolon.
            while !matches!(self.lx.tok, Tok::Semi | Tok::Eof) {
                self.lx.advance()?;
            }
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(());
        }
        if self.kw("begin")? {
            while !self.kw("end")? {
                self.stmt()?;
            }
            return Ok(());
        }
        if self.kw("while")? {
            let head = self.b.new_labeled_block("while_head");
            let body = self.b.new_block();
            let done = self.b.new_block();
            self.b.jump_and_switch(head);
            let cond = self.condition()?;
            self.expect_kw("do")?;
            self.b.branch(cond, body, done);
            self.b.switch_to(body);
            self.stmt()?;
            self.b.terminate(Term::Jump(head));
            self.b.switch_to(done);
            return Ok(());
        }
        if self.kw("if")? {
            let cond = self.condition()?;
            self.expect_kw("then")?;
            let then_b = self.b.new_block();
            let else_b = self.b.new_block();
            self.b.branch(cond, then_b, else_b);
            self.b.switch_to(then_b);
            self.stmt()?;
            if self.kw("else")? {
                let join = self.b.new_block();
                self.b.terminate(Term::Jump(join));
                self.b.switch_to(else_b);
                self.stmt()?;
                self.b.terminate(Term::Jump(join));
                self.b.switch_to(join);
            } else {
                self.b.terminate(Term::Jump(else_b));
                self.b.switch_to(else_b);
            }
            return Ok(());
        }
        if self.kw("for")? {
            // for R := e1 to e2 do stmt
            let name = self.ident()?;
            let var = self.register(&name)?;
            self.expect(&Tok::Assign, "`:=`")?;
            let from = self.expr()?;
            self.emit_assign(from, var)?;
            self.expect_kw("to")?;
            let limit_plus = Operand::Vreg(self.b.vreg());
            let to = self.expr()?;
            self.emit_assign(to, limit_plus)?;
            self.b.alu_imm(AluOp::Add, limit_plus, limit_plus, 1);
            self.expect_kw("do")?;
            let head = self.b.new_labeled_block("for_head");
            let body = self.b.new_block();
            let done = self.b.new_block();
            self.b.jump_and_switch(head);
            let t = Operand::Vreg(self.b.vreg());
            self.b.alu(AluOp::Sub, t, var, limit_plus);
            self.b.branch(CondKind::Neg, body, done);
            self.b.switch_to(body);
            self.stmt()?;
            self.b.alu_imm(AluOp::Add, var, var, 1);
            self.b.terminate(Term::Jump(head));
            self.b.switch_to(done);
            return Ok(());
        }
        if self.kw("case")? {
            return self.case_stmt();
        }
        if self.kw("call")? {
            let name = self.ident()?;
            if self.lx.tok == Tok::Semi {
                self.lx.advance()?;
            }
            // Emit a call with a placeholder target, fixed up once every
            // proc is known (procs may be declared in any order).
            let at = self.lx.span;
            let blk = self.b.current();
            self.b.call(u32::MAX);
            let idx = self.b.ops_in_current() - 1;
            self.pending_calls
                .push((name.to_ascii_lowercase(), (blk, idx), at));
            return Ok(());
        }
        // assignment: expr -> dest [;]  (the semicolon is a separator, so
        // it is optional before `else`/`end`)
        let e = self.expr()?;
        self.expect(&Tok::Arrow, "`->`")?;
        let name = self.ident()?;
        let dst = self.register(&name)?;
        if self.lx.tok == Tok::Semi {
            self.lx.advance()?;
        }
        self.emit_assign(e, dst)?;
        Ok(())
    }

    /// `case R of 0: s; 1: s; … [else s;] end` — lowered to the machine's
    /// multiway dispatch (or a compare chain after legalisation).
    fn case_stmt(&mut self) -> Result<(), Diagnostic> {
        let name = self.ident()?;
        let var = self.register(&name)?;
        self.expect_kw("of")?;
        // Arm bodies are parsed straight into fresh blocks.
        let dispatch_block = self.b.current();
        let mut arm_targets: HashMap<u64, u32> = HashMap::new();
        let mut else_target: Option<u32> = None;
        let join = self.b.new_labeled_block("case_join");

        loop {
            if self.kw("end")? {
                break;
            }
            if self.kw("else")? {
                let blk = self.b.new_block();
                self.b.switch_to(blk);
                self.stmt()?;
                self.b.terminate(Term::Jump(join));
                else_target = Some(blk);
                continue;
            }
            let v = match self.lx.tok {
                Tok::Num(v) => v,
                _ => return Err(self.diag("expected case label")),
            };
            self.lx.advance()?;
            self.expect(&Tok::Colon, "`:`")?;
            let blk = self.b.new_block();
            self.b.switch_to(blk);
            self.stmt()?;
            self.b.terminate(Term::Jump(join));
            if arm_targets.insert(v, blk).is_some() {
                return Err(self.diag(format!("duplicate case label {v}")));
            }
        }

        let max = arm_targets.keys().copied().max().unwrap_or(0);
        if max > 255 {
            return Err(self.diag("case labels limited to 0..=255"));
        }
        let size = (max + 1).next_power_of_two();
        let mask = size - 1;
        let default = else_target.unwrap_or(join);

        // Build the consecutive jump table.
        let mut table = Vec::with_capacity(size as usize);
        for v in 0..size {
            let t = self.b.new_block();
            self.b.switch_to(t);
            self.b
                .terminate(Term::Jump(*arm_targets.get(&v).unwrap_or(&default)));
            table.push(t);
        }
        self.b.switch_to(dispatch_block);
        self.b.terminate(Term::Dispatch {
            src: var,
            mask,
            table,
        });
        self.b.switch_to(join);
        Ok(())
    }

    fn program(&mut self) -> Result<String, Diagnostic> {
        self.expect_kw("program")?;
        let name = self.ident()?;
        // Optional (n) parameter list in the paper's style: skip it.
        if self.lx.tok == Tok::LParen {
            while self.lx.tok != Tok::RParen {
                if self.lx.tok == Tok::Eof {
                    return Err(self.diag("unterminated parameter list"));
                }
                self.lx.advance()?;
            }
            self.lx.advance()?;
        }
        self.expect(&Tok::Semi, "`;`")?;

        // Declarations: const / equiv / proc.
        loop {
            if self.lx.tok == Tok::Semi {
                self.lx.advance()?;
                continue;
            }
            if self.kw("const")? {
                let n = self.ident()?;
                self.expect(&Tok::Rel("=".into()), "`=`")?;
                let v = match self.lx.tok {
                    Tok::Num(v) => v,
                    _ => return Err(self.diag("expected number")),
                };
                self.lx.advance()?;
                self.expect(&Tok::Semi, "`;`")?;
                self.consts.insert(n.to_ascii_lowercase(), v);
            } else if self.kw("equiv")? {
                let n = self.ident()?;
                self.expect(&Tok::Rel("=".into()), "`=`")?;
                let target = self.ident()?;
                let r = self.register(&target)?;
                self.expect(&Tok::Semi, "`;`")?;
                self.equivs.insert(n.to_ascii_lowercase(), r);
            } else if self.kw("proc")? {
                let n = self.ident()?;
                self.expect(&Tok::Semi, "`;`")?;
                let entry = self.b.new_labeled_block(format!("proc_{n}"));
                let after = self.b.current();
                self.b.switch_to(entry);
                self.stmt()?;
                self.b.terminate(Term::Ret);
                self.procs.insert(n.to_ascii_lowercase(), entry);
                self.b.switch_to(after);
            } else {
                break;
            }
        }

        // Main body.
        self.expect_kw("begin")?;
        while !self.kw("end")? {
            self.stmt()?;
        }
        self.b.terminate(Term::Halt);
        Ok(name)
    }
}

/// Parses and lowers a SIMPL program for machine `m`.
///
/// Because SIMPL identifies variables with machine registers, every
/// register the program mentions is marked live at exit (observable).
///
/// # Errors
///
/// Returns a [`Diagnostic`] with the span of the offending token.
pub fn parse(src: &str, m: &MachineDesc) -> Result<SimplProgram, Diagnostic> {
    parse_with_limits(src, m, &FrontendLimits::default())
}

/// [`parse`] under explicit resource limits: any input — however large,
/// deep, or malformed — terminates with a [`Diagnostic`] instead of
/// exhausting the stack or spinning.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for syntax errors and limit violations alike.
pub fn parse_with_limits(
    src: &str,
    m: &MachineDesc,
    limits: &FrontendLimits,
) -> Result<SimplProgram, Diagnostic> {
    limits.check_source(src)?;
    let lx = Lexer::new(src, limits)?;
    let mut p = Parser {
        lx,
        m,
        b: FuncBuilder::new("simpl"),
        consts: HashMap::new(),
        equivs: HashMap::new(),
        procs: HashMap::new(),
        pending_calls: Vec::new(),
        depth: DepthGuard::new(limits),
    };
    let name = p.program()?;

    // Fix up call targets now every proc is known.
    let pend = std::mem::take(&mut p.pending_calls);
    let mut func = p.b.finish();
    for (pname, (blk, idx), span) in pend {
        let entry = *p
            .procs
            .get(&pname)
            .ok_or_else(|| Diagnostic::new(format!("unknown proc `{pname}`"), span))?;
        func.blocks[blk as usize].ops[idx].target = Some(entry);
    }

    // Every physical register mentioned is an observable output.
    let mut seen = std::collections::BTreeSet::new();
    for b in &func.blocks {
        for op in &b.ops {
            if let Some(Operand::Reg(r)) = op.dst {
                seen.insert(r);
            }
        }
    }
    for r in seen {
        func.live_out.push(Operand::Reg(r));
    }

    func.validate()
        .map_err(|e| Diagnostic::new(format!("internal lowering error: {e}"), Span::default()))?;
    Ok(SimplProgram {
        name: name.clone(),
        func: {
            let mut f = func;
            f.name = name;
            f
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::Semantic;

    fn p(src: &str) -> SimplProgram {
        parse(src, &hm1()).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn trivial_assignment() {
        let prog = p("program t; begin R1 + R2 -> R3; end");
        assert_eq!(prog.name, "t");
        assert_eq!(prog.func.op_count(), 1);
    }

    #[test]
    fn immediates_and_constants() {
        let prog = p("program t; const M3 = 0x1FFF; begin R1 & M3 -> ACC; 5 -> R0; end");
        // and-imm + ldi
        assert_eq!(prog.func.op_count(), 2);
    }

    #[test]
    fn equiv_aliases_registers() {
        let prog = p("program t; equiv mant = R4; begin mant + R1 -> mant; end");
        let m = hm1();
        let r4 = m.resolve_reg_name("R4").unwrap();
        let op = &prog.func.blocks[0].ops[0];
        assert_eq!(op.dst, Some(Operand::Reg(r4)));
    }

    #[test]
    fn single_operator_rule_enforced() {
        let e = parse("program t; begin R1 + R2 + R3 -> R0; end", &hm1()).unwrap_err();
        assert!(e.message.contains("expected `->`"), "{}", e.message);
    }

    #[test]
    fn while_loop_shape() {
        let prog = p("program t; begin while R2 <> 0 do begin R2 shr 1 -> R2; end; end");
        assert!(prog.func.blocks.len() >= 4);
        prog.func.validate().unwrap();
    }

    #[test]
    fn uf_condition() {
        let prog = p("program t; begin R2 shr 1 -> R2; if UF = 1 then R1 + ACC -> ACC; end");
        let has_branch = prog.func.blocks.iter().any(|b| {
            matches!(
                b.term,
                Some(Term::Branch {
                    cond: CondKind::Uf,
                    ..
                })
            )
        });
        assert!(has_branch);
    }

    #[test]
    fn if_else_joins() {
        let prog = p("program t; begin if R1 = 0 then R2 -> R3 else R4 -> R3; R5 -> R6; end");
        prog.func.validate().unwrap();
    }

    #[test]
    fn for_loop() {
        let prog = p("program t; begin for R1 := 1 to 5 do begin R2 + R1 -> R2; end; end");
        prog.func.validate().unwrap();
        assert!(prog.func.blocks.len() >= 4);
    }

    #[test]
    fn case_builds_dispatch_table() {
        let prog = p(
            "program t; begin case R1 of 0: R2 -> R3; 1: R4 -> R3; 2: R5 -> R3; end; end",
        );
        prog.func.validate().unwrap();
        let disp = prog
            .func
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Some(Term::Dispatch { mask, table, .. }) => Some((*mask, table.len())),
                _ => None,
            })
            .expect("dispatch emitted");
        assert_eq!(disp, (3, 4), "2 labels +1 → table of 4, mask 3");
    }

    #[test]
    fn proc_and_call() {
        let prog = p("program t; proc clear; begin 0 -> ACC; end; begin call clear; R1 -> R2; end");
        prog.func.validate().unwrap();
        let has_call = prog
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| o.sem == Semantic::Call && o.target.is_some() && o.target != Some(0));
        assert!(has_call);
    }

    #[test]
    fn comment_statement_skipped() {
        let prog = p("program t; begin comment extract the exponent; R1 -> R2; end");
        assert_eq!(prog.func.op_count(), 1);
    }

    #[test]
    fn paper_fp_multiply_parses() {
        // Simplified version of the paper's §2.2.1 example.
        let src = "\
program fpmul;
const M3 = 0x1FFF;
const M4 = 0x3FF;
begin
    comment extract and determine exponent for product;
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    comment extract mantissas and clear ACC;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    R0 -> ACC;
    comment multiplication proper by shift and add;
    while R2 <> 0 do
    begin
        ACC shr 1 -> ACC;
        R2 shr 1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    comment pack exponent and mantissa;
    R3 | ACC -> R3;
end";
        let prog = p(src);
        prog.func.validate().unwrap();
        assert!(prog.func.op_count() >= 10);
    }

    /// An unclosed parameter list used to spin forever at end-of-input.
    #[test]
    fn unterminated_param_list_is_an_error_not_a_hang() {
        let e = parse("program t (;", &hm1()).unwrap_err();
        assert!(e.message.contains("unterminated"), "{}", e.message);
    }

    #[test]
    fn nesting_depth_is_limited() {
        let mut src = String::from("program t; begin ");
        for _ in 0..200 {
            src.push_str("if R1 = 0 then ");
        }
        src.push_str("R1 -> R2; end");
        let e = parse(&src, &hm1()).unwrap_err();
        assert!(e.message.contains("nesting"), "{}", e.message);
    }

    #[test]
    fn token_budget_is_enforced() {
        let limits = FrontendLimits {
            max_tokens: 10,
            ..FrontendLimits::default()
        };
        let e = parse_with_limits(
            "program t; begin R1 -> R2; R2 -> R3; R3 -> R4; end",
            &hm1(),
            &limits,
        )
        .unwrap_err();
        assert!(e.message.contains("token budget"), "{}", e.message);
    }

    #[test]
    fn oversize_source_is_rejected() {
        let limits = FrontendLimits {
            max_source_bytes: 16,
            ..FrontendLimits::default()
        };
        let e = parse_with_limits("program t; begin R1 -> R2; end", &hm1(), &limits).unwrap_err();
        assert!(e.message.contains("exceeds"), "{}", e.message);
    }

    #[test]
    fn unknown_register_is_an_error() {
        let e = parse("program t; begin Q1 -> R0; end", &hm1()).unwrap_err();
        assert!(e.message.contains("not a register"));
    }

    #[test]
    fn mentioned_registers_are_live_out() {
        let prog = p("program t; begin R1 + R2 -> R3; end");
        let m = hm1();
        let r3 = m.resolve_reg_name("R3").unwrap();
        assert!(prog.func.live_out.contains(&Operand::Reg(r3)));
    }
}
