//! Self-healing fleet supervision for the compile service: `mcc fleet`
//! spawns the router and N `mcc serve` shards as real child processes,
//! keeps a heartbeat [`registry`] of their health, reaps and restarts
//! dead children under a budgeted, backed-off [`RestartTracker`], and
//! drives **live ring membership** — a restarted shard is re-announced
//! to the router with a `join` frame and picks its old keys back up
//! warm through its persistent per-shard disk cache.
//!
//! The microprogramming-survey connection is the same one the router
//! made: a writable control store is only as good as the machinery
//! that keeps it loaded. Surveyed installations that shipped microcode
//! to field machines paired the loader with a watchdog — verify the
//! store, reload on parity error, and fall back to a known-good image
//! after repeated failures rather than re-burning forever. `mcc fleet`
//! is that watchdog for the compile fleet: restart with backoff,
//! quarantine on a burned budget, and route around the hole.
//!
//! Determinism discipline: everything the supervisor *decides* (restart
//! delays, quarantine points) is a pure function of `(policy, seed,
//! shard name, crash ordinal)`. Wall-clock shows up only in *when*
//! those decisions execute, and all narration goes to stderr.

pub mod child;
pub mod registry;

pub use registry::{Registry, ShardInfo, ShardState};

use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mcc_harness::restart::{RestartDecision, RestartPolicy, RestartTracker};
use mcc_serve::metrics;
use mcc_serve::proto::{self, Response};

/// How the supervisor runs one fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The `mcc` binary to spawn for both router and shards (tests use
    /// `std::env::current_exe()`-adjacent paths; the CLI uses its own).
    pub exe: PathBuf,
    /// Router listen port; `0` lets the OS pick (the banner reports the
    /// real address either way).
    pub router_port: u16,
    /// Per-shard `--jobs`.
    pub workers: usize,
    /// Per-shard `--queue-bound`.
    pub queue_bound: usize,
    /// Seed threaded into the router and the restart backoff jitter.
    pub seed: u64,
    /// Restart budget and backoff shape, per shard.
    pub restart: RestartPolicy,
    /// How often each `Up` shard is pinged for its heartbeat.
    pub heartbeat_interval: Duration,
    /// An `Up` shard silent for this long is killed and restarted.
    pub unhealthy_after: Duration,
    /// Uptime after which a shard is declared stable (refills its
    /// restart budget).
    pub stable_after: Duration,
    /// Router `--hedge-ms` (0 disables hedging).
    pub hedge_ms: u64,
    /// Router `--probe-interval-ms`.
    pub probe_interval_ms: u64,
    /// Root under which each shard keeps a **persistent** cache dir
    /// (`<root>/<name>`): a restarted shard rejoins warm.
    pub cache_root: PathBuf,
    /// How long a child gets to print its listen banner.
    pub spawn_timeout: Duration,
    /// Narrate supervision transitions on stderr.
    pub log: bool,
}

impl FleetConfig {
    /// A config with test-friendly defaults around the two paths that
    /// have none.
    pub fn new(exe: PathBuf, cache_root: PathBuf) -> FleetConfig {
        FleetConfig {
            exe,
            router_port: 0,
            workers: 2,
            queue_bound: 64,
            seed: 0,
            restart: RestartPolicy::default(),
            heartbeat_interval: Duration::from_millis(100),
            unhealthy_after: Duration::from_secs(2),
            stable_after: Duration::from_secs(1),
            hedge_ms: 0,
            probe_interval_ms: 50,
            cache_root,
            spawn_timeout: Duration::from_secs(10),
            log: false,
        }
    }
}

/// One shard to supervise.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Ring name (also the cache subdirectory name).
    pub name: String,
    /// Argv for the first spawn; `None` means the stock
    /// `serve --port 0 --jobs W --queue-bound Q`.
    pub argv: Option<Vec<String>>,
    /// Argv for respawns after a crash; `None` means same as `argv`.
    /// Tests aim a crash-looping binary here to exercise quarantine.
    pub restart_argv: Option<Vec<String>>,
}

impl ShardSpec {
    /// A stock shard named `name`.
    pub fn stock(name: &str) -> ShardSpec {
        ShardSpec {
            name: name.to_string(),
            argv: None,
            restart_argv: None,
        }
    }
}

/// Supervisor-side state for one shard.
struct Slot {
    spec: ShardSpec,
    tracker: RestartTracker,
    child: Option<Child>,
    addr: Option<String>,
    up_since: Option<Instant>,
    last_ok: Instant,
    next_heartbeat: Instant,
    restart_due: Option<Instant>,
    stable_reported: bool,
    quarantined: bool,
    /// Lives spawned so far — folded into frame ids so every admin
    /// frame this shard ever causes has a distinct, readable id.
    incarnation: u64,
}

struct Inner {
    router: Option<Child>,
    router_addr: String,
    slots: Vec<Slot>,
}

/// A running fleet: router + shards as children, plus the supervisor
/// thread that keeps them alive. Dropping the fleet kills every child.
pub struct Fleet {
    cfg: FleetConfig,
    registry: Arc<Registry>,
    inner: Arc<Mutex<Inner>>,
    stop: Arc<AtomicBool>,
    supervisor: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Spawns every shard, then the router fronting whichever shards
    /// came up, then the supervisor thread. Fails only if *no* shard
    /// comes up or the router itself cannot start; individual shard
    /// failures go down the ordinary crash path.
    pub fn start(cfg: FleetConfig, specs: Vec<ShardSpec>) -> Result<Fleet, String> {
        if specs.is_empty() {
            return Err("fleet: need at least one shard spec".to_string());
        }
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let registry = Arc::new(Registry::new(&names));
        let mut slots = Vec::with_capacity(specs.len());
        let now = Instant::now();
        for spec in specs {
            let mut slot = Slot {
                tracker: RestartTracker::new(cfg.restart),
                child: None,
                addr: None,
                up_since: None,
                last_ok: now,
                next_heartbeat: now,
                restart_due: None,
                stable_reported: false,
                quarantined: false,
                incarnation: 0,
                spec,
            };
            match spawn_shard(&cfg, &slot.spec, true) {
                Ok((ch, addr)) => {
                    if cfg.log {
                        eprintln!("mcc fleet: shard {} up at {addr}", slot.spec.name);
                    }
                    registry.mark_up(&slot.spec.name, &addr);
                    slot.child = Some(ch);
                    slot.addr = Some(addr);
                    slot.up_since = Some(Instant::now());
                    slot.last_ok = Instant::now();
                    slot.incarnation = 1;
                }
                Err(e) => {
                    if cfg.log {
                        eprintln!("mcc fleet: shard {} failed to start: {e}", slot.spec.name);
                    }
                    crash_decide(&cfg, &registry, &mut slot);
                }
            }
            slots.push(slot);
        }
        let up: Vec<(String, String)> = slots
            .iter()
            .filter_map(|s| s.addr.clone().map(|a| (s.spec.name.clone(), a)))
            .collect();
        if up.is_empty() {
            for s in &mut slots {
                if let Some(ch) = s.child.as_mut() {
                    child::reap(ch);
                }
            }
            return Err("fleet: no shard came up".to_string());
        }
        let (router, router_addr) = spawn_router(&cfg, &up)?;
        for (name, _) in &up {
            registry.mark_joined(name, true);
        }
        if cfg.log {
            eprintln!(
                "mcc fleet: router up at {router_addr} fronting {} of {} shards",
                up.len(),
                slots.len()
            );
        }
        let inner = Arc::new(Mutex::new(Inner {
            router: Some(router),
            router_addr,
            slots,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let supervisor = {
            let cfg = cfg.clone();
            let registry = Arc::clone(&registry);
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || supervise(&cfg, &registry, &inner, &stop, &frames))
        };
        Ok(Fleet {
            cfg,
            registry,
            inner,
            stop,
            supervisor: Some(supervisor),
        })
    }

    /// The router's current listen address. Re-read it after a router
    /// respawn if calls start failing.
    pub fn router_addr(&self) -> String {
        self.inner.lock().unwrap().router_addr.clone()
    }

    /// The heartbeat registry (shared with the supervisor).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Snapshot of every shard's registry entry.
    pub fn snapshot(&self) -> Vec<ShardInfo> {
        self.registry.snapshot()
    }

    /// Rolls every Up shard's Prometheus exposition into one document
    /// under a `shard="<name>"` label, prefixed by the fleet's own
    /// per-shard lifecycle gauges. Shards that are down, restarting, or
    /// quarantined simply drop out of this scrape — their absence is
    /// the signal, not an error.
    pub fn metrics_rollup(&self) -> String {
        let mut out = String::new();
        let snap = self.registry.snapshot();
        out.push_str(
            "# HELP mcc_fleet_shard_up Shard lifecycle state (1 = up).\n# TYPE mcc_fleet_shard_up gauge\n",
        );
        for s in &snap {
            out.push_str(&format!(
                "mcc_fleet_shard_up{{shard=\"{}\",state=\"{}\"}} {}\n",
                metrics::sanitize_label(&s.name),
                s.state.name(),
                u8::from(s.state == ShardState::Up)
            ));
        }
        out.push_str(
            "# HELP mcc_fleet_shard_restarts_total Restart attempts per shard.\n# TYPE mcc_fleet_shard_restarts_total counter\n",
        );
        for s in &snap {
            out.push_str(&format!(
                "mcc_fleet_shard_restarts_total{{shard=\"{}\"}} {}\n",
                metrics::sanitize_label(&s.name),
                s.restarts
            ));
        }
        for s in &snap {
            if s.state != ShardState::Up {
                continue;
            }
            let Some(addr) = &s.addr else { continue };
            let frame = "{\"op\":\"metrics\",\"id\":\"fleet-metrics\"}\n";
            if let Ok(reply) = child::line_call(addr, frame, Duration::from_secs(2)) {
                if let Some(text) = Response::field_str(&reply, "text") {
                    metrics::merge_with_label(&mut out, &text, "shard", &s.name);
                }
            }
        }
        out
    }

    /// SIGKILLs a shard's current child (chaos injection). The
    /// supervisor's next tick reaps the zombie and runs the ordinary
    /// crash→restart path. Returns false if the shard has no live child.
    pub fn kill_shard(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.slots.iter_mut().find(|s| s.spec.name == name) else {
            return false;
        };
        match slot.child.as_mut() {
            Some(ch) => ch.kill().is_ok(),
            None => false,
        }
    }

    /// Polls the registry until `pred` holds or `timeout` elapses.
    pub fn wait_until(&self, timeout: Duration, pred: impl Fn(&[ShardInfo]) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(&self.registry.snapshot()) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops supervision, drains the router (which drains the shards),
    /// and reaps every child. Idempotent via Drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let mut inner = self.inner.lock().unwrap();
        let drain = "{\"op\":\"drain\",\"id\":\"fleet-drain\"}\n".to_string();
        let _ = child::line_call(&inner.router_addr, &drain, Duration::from_secs(2));
        if let Some(router) = inner.router.as_mut() {
            if child::wait_timeout(router, Duration::from_secs(5)).is_none() {
                child::reap(router);
            }
        }
        inner.router = None;
        for slot in &mut inner.slots {
            if let Some(ch) = slot.child.as_mut() {
                if let Some(addr) = &slot.addr {
                    let d = format!("{{\"op\":\"drain\",\"id\":\"fleet-drain-{}\"}}\n", slot.spec.name);
                    let _ = child::line_call(addr, &d, Duration::from_secs(2));
                }
                if child::wait_timeout(ch, Duration::from_secs(5)).is_none() {
                    child::reap(ch);
                }
            }
            slot.child = None;
        }
        if self.cfg.log {
            eprintln!("mcc fleet: shut down");
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(router) = inner.router.as_mut() {
            child::reap(router);
        }
        inner.router = None;
        for slot in &mut inner.slots {
            if let Some(ch) = slot.child.as_mut() {
                child::reap(ch);
            }
            slot.child = None;
        }
    }
}

/// Builds the argv for one shard life and spawns it, waiting for the
/// banner. `first` picks `argv`; respawns prefer `restart_argv`.
fn spawn_shard(cfg: &FleetConfig, spec: &ShardSpec, first: bool) -> Result<(Child, String), String> {
    let stock = vec![
        "serve".to_string(),
        "--port".to_string(),
        "0".to_string(),
        "--jobs".to_string(),
        cfg.workers.to_string(),
        "--queue-bound".to_string(),
        cfg.queue_bound.to_string(),
    ];
    let argv: &[String] = if first {
        spec.argv.as_deref().unwrap_or(&stock)
    } else {
        spec.restart_argv
            .as_deref()
            .or(spec.argv.as_deref())
            .unwrap_or(&stock)
    };
    let mut cmd = Command::new(&cfg.exe);
    cmd.args(argv)
        .env("MCC_CACHE_DIR", cfg.cache_root.join(&spec.name));
    child::spawn_with_banner(&mut cmd, cfg.spawn_timeout)
}

/// Spawns the router fronting `backends` on the configured port.
fn spawn_router(cfg: &FleetConfig, backends: &[(String, String)]) -> Result<(Child, String), String> {
    let mut cmd = Command::new(&cfg.exe);
    cmd.arg("route")
        .arg("--port")
        .arg(cfg.router_port.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--hedge-ms")
        .arg(cfg.hedge_ms.to_string())
        .arg("--probe-interval-ms")
        .arg(cfg.probe_interval_ms.to_string());
    for (name, addr) in backends {
        cmd.arg("--backend").arg(format!("{name}={addr}"));
    }
    child::spawn_with_banner(&mut cmd, cfg.spawn_timeout)
}

/// Feeds one crash into the slot's tracker and records the verdict in
/// the registry. The caller has already reaped the child (if any).
fn crash_decide(cfg: &FleetConfig, registry: &Registry, slot: &mut Slot) {
    slot.child = None;
    slot.addr = None;
    slot.up_since = None;
    slot.stable_reported = false;
    match slot.tracker.on_crash(cfg.seed, &slot.spec.name) {
        RestartDecision::Restart { attempt, delay } => {
            registry.mark_restarting(&slot.spec.name);
            slot.restart_due = Some(Instant::now() + delay);
            if cfg.log {
                eprintln!(
                    "mcc fleet: shard {} down; restart #{attempt} in {delay:?}",
                    slot.spec.name
                );
            }
        }
        RestartDecision::Quarantine => {
            slot.quarantined = true;
            slot.restart_due = None;
            registry.mark_quarantined(&slot.spec.name);
            if cfg.log {
                eprintln!(
                    "mcc fleet: shard {} quarantined after {} restarts ({} crashes)",
                    slot.spec.name,
                    slot.tracker.restarts(),
                    slot.tracker.crashes()
                );
            }
        }
    }
}

/// One admin frame to the router, best-effort, with a readable id.
fn router_frame(inner_addr: &str, line: &str) -> Result<String, String> {
    child::line_call(inner_addr, line, Duration::from_secs(2))
}

/// The supervisor loop: reap exits, run restarts that are due, ping for
/// heartbeats, keep the router alive, maintain ring membership.
fn supervise(
    cfg: &FleetConfig,
    registry: &Registry,
    inner: &Arc<Mutex<Inner>>,
    stop: &AtomicBool,
    frames: &AtomicU64,
) {
    while !stop.load(Ordering::SeqCst) {
        {
            let mut inner = inner.lock().unwrap();
            let inner = &mut *inner;

            // 1. Reap dead shards and decide restart vs quarantine.
            for slot in &mut inner.slots {
                let exited = match slot.child.as_mut() {
                    Some(ch) => match ch.try_wait() {
                        Ok(Some(status)) => {
                            if cfg.log {
                                eprintln!(
                                    "mcc fleet: reaped shard {} (status {status})",
                                    slot.spec.name
                                );
                            }
                            true
                        }
                        Ok(None) => false,
                        Err(_) => true,
                    },
                    None => false,
                };
                if exited {
                    // Membership first: tell the router the shard is
                    // gone so its keys move to ring successors instead
                    // of burning the breaker on a dead address.
                    let id = format!(
                        "fleet-leave-{}-{}",
                        slot.spec.name,
                        frames.fetch_add(1, Ordering::Relaxed)
                    );
                    let _ = router_frame(
                        &inner.router_addr,
                        &proto::leave_line(&id, &slot.spec.name),
                    );
                    registry.mark_joined(&slot.spec.name, false);
                    crash_decide(cfg, registry, slot);
                }
            }

            // 2. Restarts that have cleared their backoff.
            for slot in &mut inner.slots {
                let due = slot
                    .restart_due
                    .is_some_and(|t| Instant::now() >= t);
                if !due || slot.quarantined {
                    continue;
                }
                slot.restart_due = None;
                registry.mark_restart_attempt(&slot.spec.name);
                match spawn_shard(cfg, &slot.spec, false) {
                    Ok((ch, addr)) => {
                        slot.child = Some(ch);
                        slot.addr = Some(addr.clone());
                        slot.up_since = Some(Instant::now());
                        slot.last_ok = Instant::now();
                        slot.stable_reported = false;
                        slot.incarnation += 1;
                        registry.mark_up(&slot.spec.name, &addr);
                        if cfg.log {
                            eprintln!(
                                "mcc fleet: shard {} back up at {addr} (life {})",
                                slot.spec.name, slot.incarnation
                            );
                        }
                        let id = format!(
                            "fleet-join-{}-{}",
                            slot.spec.name,
                            frames.fetch_add(1, Ordering::Relaxed)
                        );
                        match router_frame(
                            &inner.router_addr,
                            &proto::join_line(&id, &slot.spec.name, &addr),
                        ) {
                            Ok(resp) if Response::field_num(&resp, "code") == Some(200) => {
                                registry.mark_joined(&slot.spec.name, true);
                                if cfg.log {
                                    eprintln!(
                                        "mcc fleet: shard {} rejoined the ring",
                                        slot.spec.name
                                    );
                                }
                            }
                            Ok(resp) => {
                                if cfg.log {
                                    eprintln!(
                                        "mcc fleet: join for {} rejected: {}",
                                        slot.spec.name,
                                        resp.trim_end()
                                    );
                                }
                            }
                            Err(e) => {
                                // Router down? Its own respawn path
                                // re-fronts every Up shard.
                                if cfg.log {
                                    eprintln!(
                                        "mcc fleet: join for {} failed: {e}",
                                        slot.spec.name
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        if cfg.log {
                            eprintln!(
                                "mcc fleet: respawn of {} failed: {e}",
                                slot.spec.name
                            );
                        }
                        crash_decide(cfg, registry, slot);
                    }
                }
            }

            // 3. Heartbeats: ping Up shards, kill the silent ones.
            for slot in &mut inner.slots {
                let Some(addr) = slot.addr.clone() else { continue };
                if Instant::now() < slot.next_heartbeat {
                    continue;
                }
                slot.next_heartbeat = Instant::now() + cfg.heartbeat_interval;
                let id = format!(
                    "fleet-hb-{}-{}",
                    slot.spec.name,
                    frames.fetch_add(1, Ordering::Relaxed)
                );
                let ping = format!("{{\"op\":\"ping\",\"id\":\"{id}\"}}\n");
                match child::line_call(&addr, &ping, cfg.heartbeat_interval.max(Duration::from_millis(250))) {
                    Ok(pong) if Response::field_str(&pong, "pong").is_some() => {
                        slot.last_ok = Instant::now();
                        registry.heartbeat(
                            &slot.spec.name,
                            Response::field_num(&pong, "queue_depth").unwrap_or(0),
                            Response::field_str(&pong, "draining").as_deref() == Some("true"),
                        );
                        if !slot.stable_reported
                            && slot
                                .up_since
                                .is_some_and(|t| t.elapsed() >= cfg.stable_after)
                        {
                            slot.tracker.on_stable();
                            slot.stable_reported = true;
                            if cfg.log {
                                eprintln!(
                                    "mcc fleet: shard {} stable; restart budget refilled",
                                    slot.spec.name
                                );
                            }
                        }
                    }
                    _ => {
                        if slot.last_ok.elapsed() >= cfg.unhealthy_after {
                            if cfg.log {
                                eprintln!(
                                    "mcc fleet: shard {} unresponsive for {:?}; killing it",
                                    slot.spec.name,
                                    slot.last_ok.elapsed()
                                );
                            }
                            if let Some(ch) = slot.child.as_mut() {
                                child::reap(ch);
                            }
                            // The reap above already waited; the next
                            // tick's try_wait sees no child, so take the
                            // crash path here.
                            let id = format!(
                                "fleet-leave-{}-{}",
                                slot.spec.name,
                                frames.fetch_add(1, Ordering::Relaxed)
                            );
                            let _ = router_frame(
                                &inner.router_addr,
                                &proto::leave_line(&id, &slot.spec.name),
                            );
                            registry.mark_joined(&slot.spec.name, false);
                            crash_decide(cfg, registry, slot);
                        }
                    }
                }
            }

            // 4. Keep the router itself alive.
            let router_dead = match inner.router.as_mut() {
                Some(r) => matches!(r.try_wait(), Ok(Some(_)) | Err(_)),
                None => true,
            };
            if router_dead && !stop.load(Ordering::SeqCst) {
                inner.router = None;
                let up: Vec<(String, String)> = inner
                    .slots
                    .iter()
                    .filter_map(|s| s.addr.clone().map(|a| (s.spec.name.clone(), a)))
                    .collect();
                if !up.is_empty() {
                    // Respawn on the same port so clients holding the
                    // old address keep working.
                    let mut rcfg = cfg.clone();
                    if let Some(port) = inner.router_addr.rsplit(':').next() {
                        if let Ok(p) = port.parse::<u16>() {
                            rcfg.router_port = p;
                        }
                    }
                    match spawn_router(&rcfg, &up) {
                        Ok((ch, addr)) => {
                            if cfg.log {
                                eprintln!("mcc fleet: router respawned at {addr}");
                            }
                            inner.router = Some(ch);
                            inner.router_addr = addr;
                            for (name, _) in &up {
                                registry.mark_joined(name, true);
                            }
                        }
                        Err(e) => {
                            if cfg.log {
                                eprintln!("mcc fleet: router respawn failed: {e}; will retry");
                            }
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
