//! Child-process plumbing shared by the fleet supervisor and the
//! bench's chaos modes: spawn-and-wait-for-banner, a zombie-free
//! reaper, and a one-shot TCP line client.

use std::cell::RefCell;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mcc_serve::proto::MAX_FRAME_BYTES;
use mcc_serve::tcp::{read_frame_into, write_frame, FrameRead};

thread_local! {
    /// Reusable read buffer for [`line_call`]: the supervisor heartbeats
    /// every tick from the same thread, and a fresh `Vec` per call was
    /// pure churn. Cleared before each call, so a timed-out partial
    /// frame never leaks into the next round trip.
    static CALL_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Kills `child` (if still running) and **waits** on it, so the kernel
/// releases the process entry. SIGKILLing without the wait leaks a
/// zombie until the parent exits — exactly what a long soak cannot
/// afford. Idempotent: killing an already-dead child is a no-op and the
/// wait reaps whatever is there.
pub fn reap(child: &mut Child) -> Option<ExitStatus> {
    let _ = child.kill();
    child.wait().ok()
}

/// Spawns `cmd` and waits (up to `timeout`) for it to print a
/// `listening on <addr>` banner on stderr, returning the child and the
/// parsed address. The rest of the child's stderr is drained by a
/// detached thread so the pipe can never fill up and wedge the child.
///
/// On timeout, immediate exit, or EOF-before-banner the child is
/// reaped and an error describing the failure is returned.
pub fn spawn_with_banner(cmd: &mut Command, timeout: Duration) -> Result<(Child, String), String> {
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn: {e}"))?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let (tx, rx) = mpsc::channel::<Option<String>>();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stderr);
        let mut banner = None;
        let mut line = String::new();
        while banner.is_none() {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if let Some(at) = line.find("listening on ") {
                        let rest = &line[at + "listening on ".len()..];
                        let addr = rest.split_whitespace().next().unwrap_or("").to_string();
                        banner = Some(addr);
                    }
                }
            }
        }
        let _ = tx.send(banner.clone());
        if banner.is_some() {
            // Keep draining so the child never blocks on a full pipe.
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        }
    });
    match rx.recv_timeout(timeout) {
        Ok(Some(addr)) if !addr.is_empty() => Ok((child, addr)),
        Ok(_) => {
            let status = reap(&mut child);
            Err(format!(
                "child exited before its banner (status {status:?})"
            ))
        }
        Err(_) => {
            reap(&mut child);
            Err(format!("no banner within {timeout:?}"))
        }
    }
}

/// One request line → one response line over a fresh TCP connection,
/// bounded by `timeout` on connect, write, and read. The supervisor's
/// heartbeats and admin frames go through here: a fresh connection per
/// call is deliberately boring — no pool to go stale when the far side
/// restarts.
pub fn line_call(addr: &str, line: &str, timeout: Duration) -> Result<String, String> {
    let sockaddr = addr
        .parse::<std::net::SocketAddr>()
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut stream =
        TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| format!("{addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    write_frame(&mut stream, line.as_bytes()).map_err(|e| format!("{addr}: write: {e}"))?;
    // Capped read: a misbehaving (or chaos-proxied) peer cannot make a
    // heartbeat buffer an endless line.
    let mut reader = BufReader::new(stream);
    CALL_BUF.with(|b| {
        let mut buf = b.borrow_mut();
        mcc_serve::buf::shrink_reusable(&mut buf);
        match read_frame_into(&mut reader, &mut buf, MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(resp)) => Ok(resp),
            Ok(FrameRead::Eof) => Err(format!("{addr}: closed mid-response")),
            Ok(FrameRead::TimedOut) => Err(format!("{addr}: read timed out after {timeout:?}")),
            Ok(FrameRead::Oversized) => Err(format!("{addr}: oversized response frame")),
            Err(e) => Err(format!("{addr}: read: {e}")),
        }
    })
}

/// Waits up to `timeout` for the child to exit on its own (no signal),
/// reaping it if it does; returns the status, or `None` on timeout.
pub fn wait_timeout(child: &mut Child, timeout: Duration) -> Option<ExitStatus> {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) => {
                if Instant::now() >= deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reap_leaves_no_zombie() {
        let mut child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let status = reap(&mut child).expect("reaped");
        assert!(!status.success(), "killed, not exited");
        // A reaped child reports its status again without blocking —
        // the process table entry is gone.
        assert!(child.try_wait().is_ok());
    }

    #[test]
    fn spawn_with_banner_rejects_a_child_that_exits_silently() {
        let err = spawn_with_banner(&mut Command::new("true"), Duration::from_secs(5)).unwrap_err();
        assert!(err.contains("before its banner"), "{err}");
    }

    #[test]
    fn line_call_refuses_garbage_addresses() {
        assert!(line_call("not-an-addr", "x\n", Duration::from_millis(100)).is_err());
    }
}
