//! The heartbeat registry: one entry per supervised shard, updated by
//! the supervisor's reap/restart decisions and by the heartbeat pings.
//!
//! The registry is the fleet's *observable* state — `mcc fleet` logs
//! transitions from it, the chaos-soak bench gates on it, and the
//! quarantine test asserts against it. It deliberately mirrors the
//! shape of a machine registry with heartbeat reporting: a shard that
//! stops reporting is eventually acted on (killed and restarted), and a
//! shard that burns its restart budget is marked quarantined rather
//! than silently retried forever.

use std::sync::Mutex;
use std::time::Instant;

/// Where a shard is in its supervision lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Spawned, banner not yet seen (or first spawn still pending).
    Starting,
    /// Child alive and listening; heartbeats expected.
    Up,
    /// Child dead; a respawn is scheduled after backoff.
    Restarting,
    /// Restart budget exhausted: the supervisor has given up on this
    /// shard and the router routes around it.
    Quarantined,
}

impl ShardState {
    /// The state name for logs and stats output.
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Starting => "starting",
            ShardState::Up => "up",
            ShardState::Restarting => "restarting",
            ShardState::Quarantined => "quarantined",
        }
    }
}

/// One registry entry, as observed (a snapshot, not live state).
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// Shard name (also its ring name).
    pub name: String,
    /// Lifecycle state.
    pub state: ShardState,
    /// Listen address of the current incarnation, if any.
    pub addr: Option<String>,
    /// Process exits observed (kills and crashes alike).
    pub crashes: u64,
    /// Respawns attempted.
    pub restarts: u64,
    /// Whether the shard is currently a ring member.
    pub joined: bool,
    /// Queue depth from the last successful heartbeat.
    pub queue_depth: u64,
    /// Drain flag from the last successful heartbeat.
    pub draining: bool,
    /// Milliseconds since the shard was last seen healthy (banner or
    /// heartbeat), `u64::MAX` if never.
    pub last_seen_ms: u64,
}

#[derive(Debug)]
struct Entry {
    name: String,
    state: ShardState,
    addr: Option<String>,
    crashes: u64,
    restarts: u64,
    joined: bool,
    queue_depth: u64,
    draining: bool,
    last_seen: Option<Instant>,
}

/// The fleet's shard registry. All methods take `&self`; the lock is
/// internal.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// A registry with one `Starting` entry per name, in order.
    pub fn new(names: &[String]) -> Registry {
        Registry {
            entries: Mutex::new(
                names
                    .iter()
                    .map(|n| Entry {
                        name: n.clone(),
                        state: ShardState::Starting,
                        addr: None,
                        crashes: 0,
                        restarts: 0,
                        joined: false,
                        queue_depth: 0,
                        draining: false,
                        last_seen: None,
                    })
                    .collect(),
            ),
        }
    }

    fn with<R>(&self, name: &str, f: impl FnOnce(&mut Entry) -> R) -> Option<R> {
        let mut es = self.entries.lock().unwrap();
        es.iter_mut().find(|e| e.name == name).map(f)
    }

    /// The shard came up (banner seen) at `addr`.
    pub fn mark_up(&self, name: &str, addr: &str) {
        self.with(name, |e| {
            e.state = ShardState::Up;
            e.addr = Some(addr.to_string());
            e.last_seen = Some(Instant::now());
        });
    }

    /// The shard's process exited; a respawn is scheduled.
    pub fn mark_restarting(&self, name: &str) {
        self.with(name, |e| {
            e.state = ShardState::Restarting;
            e.addr = None;
            e.crashes += 1;
        });
    }

    /// A respawn was attempted.
    pub fn mark_restart_attempt(&self, name: &str) {
        self.with(name, |e| e.restarts += 1);
    }

    /// The shard burned its restart budget.
    pub fn mark_quarantined(&self, name: &str) {
        self.with(name, |e| {
            e.state = ShardState::Quarantined;
            e.addr = None;
            e.crashes += 1;
        });
    }

    /// Ring membership changed.
    pub fn mark_joined(&self, name: &str, joined: bool) {
        self.with(name, |e| e.joined = joined);
    }

    /// A heartbeat pong arrived.
    pub fn heartbeat(&self, name: &str, queue_depth: u64, draining: bool) {
        self.with(name, |e| {
            e.queue_depth = queue_depth;
            e.draining = draining;
            e.last_seen = Some(Instant::now());
        });
    }

    /// Snapshot of every entry, in registration order.
    pub fn snapshot(&self) -> Vec<ShardInfo> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|e| ShardInfo {
                name: e.name.clone(),
                state: e.state,
                addr: e.addr.clone(),
                crashes: e.crashes,
                restarts: e.restarts,
                joined: e.joined,
                queue_depth: e.queue_depth,
                draining: e.draining,
                last_seen_ms: e
                    .last_seen
                    .map_or(u64::MAX, |t| t.elapsed().as_millis() as u64),
            })
            .collect()
    }

    /// One shard's snapshot.
    pub fn get(&self, name: &str) -> Option<ShardInfo> {
        self.snapshot().into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions_are_recorded() {
        let names = vec!["b0".to_string(), "b1".to_string()];
        let r = Registry::new(&names);
        assert_eq!(r.get("b0").unwrap().state, ShardState::Starting);
        r.mark_up("b0", "127.0.0.1:1234");
        let s = r.get("b0").unwrap();
        assert_eq!(s.state, ShardState::Up);
        assert_eq!(s.addr.as_deref(), Some("127.0.0.1:1234"));
        assert!(s.last_seen_ms < 1000, "banner counts as seen");
        r.mark_restarting("b0");
        let s = r.get("b0").unwrap();
        assert_eq!(s.state, ShardState::Restarting);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.addr, None);
        r.mark_restart_attempt("b0");
        r.mark_up("b0", "127.0.0.1:4321");
        assert_eq!(r.get("b0").unwrap().restarts, 1);
        r.mark_quarantined("b0");
        assert_eq!(r.get("b0").unwrap().state, ShardState::Quarantined);
        // b1 untouched throughout.
        let s1 = r.get("b1").unwrap();
        assert_eq!(s1.state, ShardState::Starting);
        assert_eq!(s1.crashes, 0);
    }

    #[test]
    fn heartbeats_update_pressure_and_liveness() {
        let r = Registry::new(&["b0".to_string()]);
        r.mark_up("b0", "a");
        r.heartbeat("b0", 7, true);
        let s = r.get("b0").unwrap();
        assert_eq!(s.queue_depth, 7);
        assert!(s.draining);
        assert!(s.last_seen_ms < 1000);
    }

    #[test]
    fn unknown_names_are_ignored_not_panics() {
        let r = Registry::new(&["b0".to_string()]);
        r.mark_up("nope", "a");
        r.heartbeat("nope", 1, false);
        assert!(r.get("nope").is_none());
        assert_eq!(r.snapshot().len(), 1);
    }
}
