//! Advisory cross-process file locking for the cache's shared logs.
//!
//! Multiple `exp_all --jobs N` (or `mcc serve`) processes share one
//! `.mcc-cache/` directory. Within a process the [`crate::Cache`] mutex
//! serialises writers, but across processes two appends to `stats.log`
//! — or, worse, an eviction rewrite of `cache.log` racing an append —
//! could interleave torn counter deltas or shred the record log. This
//! module wraps BSD `flock(2)` behind an RAII guard: writers take the
//! exclusive lock for the duration of a write, readers of a consistent
//! snapshot may take it too, and on platforms without `flock` the guard
//! degrades to a no-op (the logs' per-record checksums still catch any
//! torn line, so corruption stays detectable — it just becomes possible
//! again).
//!
//! The lock is *advisory*: it only excludes other cooperating
//! `mcc-cache` writers, which is exactly the failure mode being closed.

use std::fs::File;

/// An exclusive advisory lock on a file, released on drop.
#[must_use = "the lock is released when the guard drops"]
pub struct ExclusiveLock<'a> {
    #[cfg_attr(not(unix), allow(dead_code))]
    file: &'a File,
    locked: bool,
}

#[cfg(unix)]
mod sys {
    // `flock` lives in the libc every Rust std binary already links;
    // declaring it directly avoids a dependency the container lacks.
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    pub const LOCK_EX: i32 = 2;
    pub const LOCK_UN: i32 = 8;

    /// Calls `flock`, retrying on EINTR. Returns whether the lock (or
    /// unlock) succeeded.
    pub fn flock_retry(fd: i32, op: i32) -> bool {
        loop {
            if unsafe { flock(fd, op) } == 0 {
                return true;
            }
            if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                return false;
            }
        }
    }
}

impl<'a> ExclusiveLock<'a> {
    /// Takes an exclusive advisory lock on `file`, blocking until other
    /// holders release it. Failure to lock (or a platform without
    /// `flock`) yields a no-op guard: writes proceed unlocked, protected
    /// only by their checksums.
    pub fn acquire(file: &'a File) -> ExclusiveLock<'a> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let locked = sys::flock_retry(file.as_raw_fd(), sys::LOCK_EX);
            ExclusiveLock { file, locked }
        }
        #[cfg(not(unix))]
        {
            ExclusiveLock {
                file,
                locked: false,
            }
        }
    }

    /// Whether the lock was actually taken (false on failure or on
    /// platforms without `flock`).
    pub fn is_locked(&self) -> bool {
        self.locked
    }
}

impl Drop for ExclusiveLock<'_> {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.locked {
            use std::os::unix::io::AsRawFd;
            sys::flock_retry(self.file.as_raw_fd(), sys::LOCK_UN);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn lock_round_trips_and_is_reentrant_across_guards() {
        let dir = std::env::temp_dir().join(format!("mcc-lock-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("locked.log");
        let f = File::create(&path).unwrap();
        {
            let g = ExclusiveLock::acquire(&f);
            assert!(cfg!(not(unix)) || g.is_locked());
            let mut w = &f;
            w.write_all(b"under lock\n").unwrap();
        }
        // A second acquisition after release must not deadlock.
        let g2 = ExclusiveLock::acquire(&f);
        drop(g2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn contended_lock_serialises_writers() {
        use std::sync::{Arc, Barrier};
        let dir = std::env::temp_dir().join(format!("mcc-lock-contend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.log");
        File::create(&path).unwrap();
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let path = path.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
                barrier.wait();
                for i in 0..50 {
                    let _g = ExclusiveLock::acquire(&f);
                    let mut w = &f;
                    w.write_all(format!("t{t} line {i}\n").as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 200, "no torn or lost lines");
        assert!(text.lines().all(|l| l.starts_with('t') && l.contains(" line ")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
