//! # `mcc-cache` — the content-addressed compilation cache
//!
//! Compiled microcode artifacts are pure, deterministic functions of
//! `(source bytes, frontend, machine, pass configuration, toolkit
//! version)`. This crate memoizes them behind a stable 128-bit FNV-1a
//! content address with two tiers:
//!
//! * an **in-memory tier** — a process-wide map, always on, shared by
//!   every harness worker thread;
//! * an **on-disk tier** — `.mcc-cache/` holding one checksummed record
//!   per artifact with the same torn-tail-recovery discipline as the
//!   harness journal (see [`disk`]), attached explicitly by the
//!   experiment binaries and the CLI.
//!
//! The cache is required to be *invisible*: a warm hit returns an
//! artifact whose canonical serialisation ([`serial`]) is byte-identical
//! to a cold compile's. The only observable differences live in
//! diagnostic fields excluded from that serialisation —
//! `CompileStats::cached` names the serving tier and
//! `CompileStats::pass_nanos` carries per-pass wall-clock time — so
//! hits and misses can be measured without perturbing any table.
//!
//! Compile *errors* are never cached: a failing compile is re-run on
//! every request, which keeps diagnostics (and their source excerpts)
//! exactly as fresh as an uncached pipeline.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use mcc_core::{Artifact, CompileError, Compiler, CompilerOptions, SourceLang};
use mcc_machine::{ConflictModel, MachineDesc};
use mcc_regalloc::Strategy;

pub mod disk;
pub mod lock;
pub mod serial;

pub use disk::{read_stats, DiskTier};
pub use lock::ExclusiveLock;
pub use serial::{deserialize_artifact, serialize_artifact};

/// Bump to invalidate every existing cache: the salt participates in
/// every key and the on-disk header, so stale formats self-evict.
pub const FORMAT_VERSION: u32 = 1;

/// The toolkit version salt mixed into every cache key. Contains no
/// whitespace (it is written verbatim into the on-disk header line).
pub fn toolkit_salt() -> String {
    format!("mcc-{}-cachev{}", env!("CARGO_PKG_VERSION"), FORMAT_VERSION)
}

// ------------------------------------------------------------ hashing ----

/// 128-bit FNV-1a (offset basis / prime from the reference parameters).
struct Fnv128(u128);

impl Fnv128 {
    const BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    fn new() -> Self {
        Fnv128(Self::BASIS)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one labelled, length-prefixed section, so concatenation
    /// ambiguity between adjacent sections cannot alias two keys.
    fn section(&mut self, tag: &str, bytes: &[u8]) {
        self.write(tag.as_bytes());
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }
}

/// A stable 128-bit content address over everything that can change the
/// compiled artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Renders every [`CompilerOptions`] field that can alter the artifact
/// into one canonical line. Exhaustive by construction: destructuring
/// here means a new options field fails to compile until it is keyed.
pub fn canonical_options(o: &CompilerOptions) -> String {
    fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
        v.map_or_else(|| "-".to_string(), |v| v.to_string())
    }
    let CompilerOptions {
        algorithm,
        model,
        alloc,
        poll_interval,
        bb_budget,
        limits,
    } = o;
    let model = match model {
        ConflictModel::Coarse => "coarse",
        ConflictModel::Fine => "fine",
    };
    let strategy = match alloc.strategy {
        Strategy::Coloring => "coloring",
        Strategy::LinearScan => "linearscan",
    };
    format!(
        "algo={};model={};alloc={};budget={};spread={};poll={};bb={};fe_src={};fe_tok={};fe_depth={};mir={};blocks={}",
        algorithm.name(),
        model,
        strategy,
        opt(alloc.budget),
        alloc.spread,
        opt(*poll_interval),
        bb_budget,
        limits.frontend.max_source_bytes,
        limits.frontend.max_tokens,
        limits.frontend.max_depth,
        limits.max_mir_ops,
        limits.max_blocks,
    )
}

/// The FNV-128 state after every key section *except* the source: the
/// per-(machine, lang, options) constant part of a [`CacheKey`].
///
/// Rendering a machine to MDL and hashing it dominates key derivation
/// (tens of microseconds against a sub-microsecond source hash), yet it
/// is identical for every request against the same machine under the
/// same options. A prefix computed once can finish any number of keys
/// via [`key_from_prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPrefix(u128);

/// Computes the constant prefix of [`key_of`] — everything but the
/// source section.
pub fn key_prefix(m: &MachineDesc, lang: SourceLang, opts: &CompilerOptions) -> KeyPrefix {
    let mut h = Fnv128::new();
    h.section("salt", toolkit_salt().as_bytes());
    h.section("lang", lang.name().as_bytes());
    h.section("machine", mcc_machine::mdl::to_mdl(m).as_bytes());
    h.section("options", canonical_options(opts).as_bytes());
    KeyPrefix(h.0)
}

/// Finishes a key from a memoized prefix: identical to [`key_of`] on
/// the same (machine, lang, options, source) by construction — the
/// prefix *is* the hash state at the source section boundary.
pub fn key_from_prefix(prefix: KeyPrefix, src: &str) -> CacheKey {
    let mut h = Fnv128(prefix.0);
    h.section("source", src.as_bytes());
    CacheKey(h.0)
}

/// Memoized [`key_prefix`] for the canonical machine set. Keyed by the
/// resolved machine name plus the canonical options line — safe *only*
/// because [`mcc_machine::machines::by_name`] deterministically builds
/// the same description for a name; a custom or mutated `MachineDesc`
/// must go through [`key_prefix`] directly. `None` when a name does not
/// resolve.
pub fn canonical_key_prefix(
    machine: &str,
    lang: SourceLang,
    opts: &CompilerOptions,
) -> Option<KeyPrefix> {
    type PrefixMemo = Mutex<HashMap<(String, &'static str, String), KeyPrefix>>;
    static MEMO: OnceLock<PrefixMemo> =
        OnceLock::new();
    let name = machine.to_ascii_lowercase();
    let opts_line = canonical_options(opts);
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(p) = memo.lock().unwrap().get(&(name.clone(), lang.name(), opts_line.clone())) {
        return Some(*p);
    }
    let m = mcc_machine::machines::by_name(&name)?;
    let p = key_prefix(&m, lang, opts);
    memo.lock().unwrap().insert((name, lang.name(), opts_line), p);
    Some(p)
}

/// Derives the content address of one compilation request. The machine
/// is identified by its canonical MDL rendering — total over every
/// semantic field of a [`MachineDesc`] — so structurally different
/// machines can never alias.
pub fn key_of(m: &MachineDesc, lang: SourceLang, opts: &CompilerOptions, src: &str) -> CacheKey {
    key_from_prefix(key_prefix(m, lang, opts), src)
}

/// The routing address of a wire-level compile request: the same 128-bit
/// content address a backend's [`compile_cached`] computes for it under
/// default options, derived from the wire names. `None` when a name does
/// not resolve (the router then falls back to a raw-bytes hash and lets
/// the chosen backend answer the structured `400`).
///
/// Placement only needs *agreement*, not exact key equality: a request
/// served at a degraded pressure tier compiles under tightened options
/// (a different full cache key), but it still lands on the shard that
/// owns every tier of that source — which is what keeps per-shard cache
/// locality intact.
pub fn key_for_wire(machine: &str, lang: &str, src: &str) -> Option<CacheKey> {
    let lang = SourceLang::from_name(lang)?;
    let prefix = canonical_key_prefix(machine, lang, &CompilerOptions::default())?;
    Some(key_from_prefix(prefix, src))
}

// -------------------------------------------------------------- cache ----

/// Whether a freshly compiled artifact is persisted to the disk tier
/// (when one is attached) or kept in memory only. `Disk` is a no-op for
/// processes that never attach the tier — which is how `mcc fuzz` keeps
/// arbitrary user corpora off disk while `exp_all`'s fixed-seed E10
/// corpus persists and is served from disk on warm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persist {
    /// In-memory tier only.
    Memory,
    /// Both tiers (disk write is skipped when no tier is attached).
    Disk,
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Hits served by the in-memory tier.
    pub hits_memory: u64,
    /// Hits served by the on-disk tier.
    pub hits_disk: u64,
    /// Lookups that fell through to a real compile.
    pub misses: u64,
    /// Artifacts stored after a miss (failed compiles are not stored).
    pub stores: u64,
    /// Disk-tier records evicted (or refused) by the byte cap.
    pub evictions: u64,
}

impl Counters {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.hits_memory + self.hits_disk
    }
}

/// A two-tier content-addressed artifact cache.
#[derive(Default)]
pub struct Cache {
    mem: Mutex<HashMap<u128, Artifact>>,
    disk: Mutex<Option<DiskTier>>,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    /// Counters already persisted by `flush_stats`, so repeated flushes
    /// append deltas instead of double counting.
    flushed: Mutex<Counters>,
}

impl Cache {
    /// An empty memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (creating if necessary) the on-disk tier under `dir`,
    /// recovering from any torn tail. Returns the number of artifacts
    /// loaded from disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or reading the store.
    pub fn attach_disk(&self, dir: &Path) -> io::Result<usize> {
        let tier = DiskTier::open(dir)?;
        let loaded = tier.len();
        *self.disk.lock().unwrap() = Some(tier);
        Ok(loaded)
    }

    /// Whether a disk tier is attached.
    pub fn disk_attached(&self) -> bool {
        self.disk.lock().unwrap().is_some()
    }

    /// Compiles `src` through `compiler`, serving from the cache when the
    /// content address matches. Hits are marked in
    /// `artifact.stats.cached` (`"memory"` or `"disk"`); everything that
    /// participates in the artifact's canonical serialisation is
    /// byte-identical to a cold compile.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; errors are never cached.
    pub fn compile(
        &self,
        compiler: &Compiler,
        lang: SourceLang,
        src: &str,
        persist: Persist,
    ) -> Result<Artifact, CompileError> {
        let key = key_of(compiler.machine(), lang, compiler.options(), src);
        self.compile_keyed(key, compiler, lang, src, persist)
    }

    /// [`Cache::compile`] with the content address already derived —
    /// for callers holding a memoized [`KeyPrefix`] who finish the key
    /// themselves via [`key_from_prefix`]. The key MUST be
    /// `key_of(compiler.machine(), lang, compiler.options(), src)` or
    /// the cache will alias.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; errors are never cached.
    pub fn compile_keyed(
        &self,
        key: CacheKey,
        compiler: &Compiler,
        lang: SourceLang,
        src: &str,
        persist: Persist,
    ) -> Result<Artifact, CompileError> {
        if let Some(mut hit) = self.mem.lock().unwrap().get(&key.0).cloned() {
            hit.stats.cached = Some("memory");
            self.hits_memory.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }

        let payload = self
            .disk
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|t| t.lookup(key).cloned());
        if let Some(payload) = payload {
            // A record that fails to deserialize is treated as a miss:
            // the checksum made corruption overwhelmingly unlikely, but
            // recompiling is always a safe answer.
            if let Ok(mut art) = serial::deserialize_artifact(&payload, compiler.machine().clone())
            {
                self.mem.lock().unwrap().insert(key.0, art.clone());
                art.stats.cached = Some("disk");
                self.hits_disk.fetch_add(1, Ordering::Relaxed);
                return Ok(art);
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let art = compiler.compile_contained(lang, src)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        if persist == Persist::Disk {
            if let Some(tier) = self.disk.lock().unwrap().as_mut() {
                // Best effort: a full disk must not fail the compile.
                let _ = tier.store(key, &serial::serialize_artifact(&art));
            }
        }
        self.mem.lock().unwrap().insert(key.0, art.clone());
        Ok(art)
    }

    /// Current counter values. Disk-tier evictions are folded in when a
    /// tier is attached.
    pub fn counters(&self) -> Counters {
        let mut c = self.counters_unlocked();
        if let Some(tier) = self.disk.lock().unwrap().as_ref() {
            c.evictions = tier.evictions();
        }
        c
    }

    /// The atomic counters alone, without touching the disk mutex — for
    /// callers (like [`Cache::flush_stats`]) that already hold it.
    fn counters_unlocked(&self) -> Counters {
        Counters {
            hits_memory: self.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: 0,
        }
    }

    /// Whether `key` is present in the in-memory tier, counting a hit
    /// when it is — see [`memory_hit_keyed`] for the intended caller.
    pub fn note_memory_hit(&self, key: CacheKey) -> bool {
        if self.mem.lock().unwrap().contains_key(&key.0) {
            self.hits_memory.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Number of artifacts in the in-memory tier.
    pub fn len_memory(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Appends this process's not-yet-flushed counter deltas to the disk
    /// tier's stats log, so `mcc cache stats` reports lifetime totals
    /// across processes. No-op without a disk tier.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the stats log append.
    pub fn flush_stats(&self) -> io::Result<()> {
        let mut disk = self.disk.lock().unwrap();
        let Some(tier) = disk.as_mut() else {
            return Ok(());
        };
        // `counters()` would re-lock the disk mutex (not reentrant); read
        // the tier's eviction count directly under the lock we hold.
        let mut now = self.counters_unlocked();
        now.evictions = tier.evictions();
        let mut flushed = self.flushed.lock().unwrap();
        let delta = Counters {
            hits_memory: now.hits_memory - flushed.hits_memory,
            hits_disk: now.hits_disk - flushed.hits_disk,
            misses: now.misses - flushed.misses,
            stores: now.stores - flushed.stores,
            // Saturating: the eviction count restarts with each tier
            // attach, unlike the process-monotonic atomics above.
            evictions: now.evictions.saturating_sub(flushed.evictions),
        };
        if delta == Counters::default() {
            return Ok(());
        }
        tier.append_stats(delta)?;
        *flushed = now;
        Ok(())
    }
}

// ------------------------------------------------------------- global ----

static GLOBAL: OnceLock<Cache> = OnceLock::new();

/// The process-wide cache used by [`compile_cached`].
pub fn global() -> &'static Cache {
    GLOBAL.get_or_init(Cache::new)
}

/// 0 = take the `MCC_NO_CACHE` environment default, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the global cache is enabled. Defaults to on; disabled by
/// `MCC_NO_CACHE` (any non-empty value other than `0`) or
/// [`set_enabled(false)`](set_enabled), which takes precedence.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !matches!(
            std::env::var("MCC_NO_CACHE").ok().as_deref(),
            Some(v) if !v.is_empty() && v != "0"
        ),
    }
}

/// Force the global cache on or off (the CLI's `--no-cache`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// 0 = no override, 1 = force `Persist::Memory`, 2 = force
/// `Persist::Disk`.
static PERSIST_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the persist policy every [`compile_cached`] caller passes —
/// the load-shedding hook: a saturated `mcc serve` forces
/// [`Persist::Memory`] to take disk fsyncs off the critical path, and
/// restores `None` when pressure clears.
pub fn set_persist_override(p: Option<Persist>) {
    let v = match p {
        None => 0,
        Some(Persist::Memory) => 1,
        Some(Persist::Disk) => 2,
    };
    PERSIST_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active persist override, if any.
pub fn persist_override() -> Option<Persist> {
    match PERSIST_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(Persist::Memory),
        2 => Some(Persist::Disk),
        _ => None,
    }
}

/// The default on-disk tier location: `MCC_CACHE_DIR` or `.mcc-cache`.
pub fn default_dir() -> PathBuf {
    match std::env::var("MCC_CACHE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(".mcc-cache"),
    }
}

/// Attaches the default disk tier to the global cache. Returns `false`
/// (and leaves the cache memory-only) when caching is disabled.
///
/// # Errors
///
/// Propagates I/O errors from opening the store.
pub fn attach_default_disk() -> io::Result<bool> {
    if !enabled() {
        return Ok(false);
    }
    global().attach_disk(&default_dir())?;
    Ok(true)
}

/// The cached counterpart of [`Compiler::compile_contained`]: serves
/// from the global cache, or passes straight through when caching is
/// disabled.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_cached(
    compiler: &Compiler,
    lang: SourceLang,
    src: &str,
    persist: Persist,
) -> Result<Artifact, CompileError> {
    if !enabled() {
        return compiler.compile_contained(lang, src);
    }
    let persist = persist_override().unwrap_or(persist);
    global().compile(compiler, lang, src, persist)
}

/// Memory-tier membership probe that counts as a hit when present —
/// the synchronous fast path a server uses to answer a known-warm key
/// without a worker round trip. Always `false` when caching is
/// disabled, sending the caller down the full compile path.
pub fn memory_hit_keyed(key: CacheKey) -> bool {
    enabled() && global().note_memory_hit(key)
}

/// [`compile_cached`] with the content address already derived from a
/// memoized [`KeyPrefix`] — the hot-path variant for servers that issue
/// many compiles against the same canonical machine. The same
/// correctness obligation as [`Cache::compile_keyed`] applies.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_cached_keyed(
    key: CacheKey,
    compiler: &Compiler,
    lang: SourceLang,
    src: &str,
    persist: Persist,
) -> Result<Artifact, CompileError> {
    if !enabled() {
        return compiler.compile_contained(lang, src);
    }
    let persist = persist_override().unwrap_or(persist);
    global().compile_keyed(key, compiler, lang, src, persist)
}

/// Flushes the global cache's stats to its disk tier, ignoring errors —
/// call at process exit from binaries that attached a disk tier.
pub fn flush_global_stats() {
    let _ = global().flush_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_compact::Algorithm;
    use mcc_machine::machines::{hm1, vm1};

    const SRC: &str = "reg a = R0\nconst a, 7\nadd a, a, 1\nexit a\n";

    #[test]
    fn memory_tier_hits_and_is_invisible() {
        let cache = Cache::new();
        let c = Compiler::new(hm1());
        let cold = cache.compile(&c, SourceLang::Yalll, SRC, Persist::Memory).unwrap();
        assert_eq!(cold.stats.cached, None);
        let warm = cache.compile(&c, SourceLang::Yalll, SRC, Persist::Memory).unwrap();
        assert_eq!(warm.stats.cached, Some("memory"));
        assert_eq!(serialize_artifact(&cold), serialize_artifact(&warm));
        let n = cache.counters();
        assert_eq!((n.hits_memory, n.misses, n.stores), (1, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = Cache::new();
        let c = Compiler::new(hm1());
        for _ in 0..2 {
            assert!(cache
                .compile(&c, SourceLang::Yalll, "reg a = NOPE\n", Persist::Memory)
                .is_err());
        }
        let n = cache.counters();
        assert_eq!((n.misses, n.stores, n.hits()), (2, 0, 0));
    }

    #[test]
    fn prefixed_keys_match_direct_derivation() {
        let opts = CompilerOptions::default();
        for m in [hm1(), vm1()] {
            let p = key_prefix(&m, SourceLang::Yalll, &opts);
            for src in [SRC, "reg a = R0\nexit a\n", ""] {
                assert_eq!(
                    key_from_prefix(p, src),
                    key_of(&m, SourceLang::Yalll, &opts, src),
                    "prefixed key diverges for machine {} src {src:?}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn canonical_prefix_memo_agrees_with_by_name() {
        let opts = CompilerOptions::default();
        // Twice: the second call exercises the memoized path.
        for _ in 0..2 {
            let p = canonical_key_prefix("hm1", SourceLang::Yalll, &opts).unwrap();
            assert_eq!(
                key_from_prefix(p, SRC),
                key_of(&hm1(), SourceLang::Yalll, &opts, SRC)
            );
        }
        // Aliases resolve to the same machine, hence the same prefix.
        assert_eq!(
            canonical_key_prefix("horizon", SourceLang::Yalll, &opts),
            canonical_key_prefix("hm-1", SourceLang::Yalll, &opts)
        );
        assert!(canonical_key_prefix("no-such-machine", SourceLang::Yalll, &opts).is_none());
        // Different options produce a different prefix under the memo.
        let tuned = CompilerOptions { algorithm: Algorithm::Linear, ..Default::default() };
        assert_ne!(
            canonical_key_prefix("hm1", SourceLang::Yalll, &opts),
            canonical_key_prefix("hm1", SourceLang::Yalll, &tuned)
        );
    }

    #[test]
    fn keys_separate_every_input() {
        let m = hm1();
        let opts = CompilerOptions::default();
        let base = key_of(&m, SourceLang::Yalll, &opts, SRC);
        // Source byte.
        assert_ne!(base, key_of(&m, SourceLang::Yalll, &opts, "reg a = R0\nconst a, 8\nadd a, a, 1\nexit a\n"));
        // Frontend.
        assert_ne!(base, key_of(&m, SourceLang::Simpl, &opts, SRC));
        // Machine.
        assert_ne!(base, key_of(&vm1(), SourceLang::Yalll, &opts, SRC));
        // Pass config.
        let mut o2 = opts.clone();
        o2.algorithm = Algorithm::Linear;
        assert_ne!(base, key_of(&m, SourceLang::Yalll, &o2, SRC));
    }

    #[test]
    fn wire_key_matches_the_compile_key_and_rejects_bad_names() {
        let m = hm1();
        assert_eq!(
            key_for_wire("hm1", "yalll", SRC),
            Some(key_of(&m, SourceLang::Yalll, &CompilerOptions::default(), SRC)),
            "the router and the backend must derive the same address"
        );
        assert_ne!(key_for_wire("hm1", "yalll", SRC), key_for_wire("vm1", "yalll", SRC));
        assert_eq!(key_for_wire("not-a-machine", "yalll", SRC), None);
        assert_eq!(key_for_wire("hm1", "klingon", SRC), None);
    }

    #[test]
    fn canonical_options_is_stable() {
        let o = CompilerOptions::default();
        assert_eq!(canonical_options(&o), canonical_options(&o.clone()));
        assert!(canonical_options(&o).starts_with("algo=critpath;model=fine;alloc=coloring;"));
    }
}
