//! Canonical artifact serialisation — hand-rolled, single-line, and
//! deterministic.
//!
//! The vendored `serde` is a deliberate no-op stub, so the disk format
//! is written by hand, the same choice the harness journal made. Three
//! properties matter:
//!
//! * **determinism** — map-backed fields (`locations`, `symbols`,
//!   `memory_symbols`) are emitted in sorted order, never in `HashMap`
//!   iteration order, so the same artifact always serialises to the
//!   same bytes;
//! * **single line** — quoted strings escape control characters
//!   (journal `esc` rules), so one record occupies exactly one
//!   newline-terminated line of the on-disk log and torn-tail recovery
//!   stays a line-level concern;
//! * **volatile fields excluded** — `CompileStats::pass_nanos` and
//!   `CompileStats::cached` never enter the serialisation. That makes
//!   `serialize_artifact` the *equality witness* the differential tests
//!   use: warm and cold artifacts must serialise byte-identically.
//!
//! The machine description is **not** stored. The cache key already
//! commits to the machine's full MDL rendering, so the caller's
//! [`MachineDesc`] — required at lookup — is necessarily the one that
//! produced the record, and is re-attached on deserialisation.

use std::collections::HashMap;

use mcc_core::passes::Warning;
use mcc_core::{Artifact, CompileStats};
use mcc_machine::op::MicroBlock;
use mcc_machine::{BoundOp, CondKind, FileId, MachineDesc, MicroInstr, MicroProgram, RegRef, TemplateId};
use mcc_mir::operand::VReg;
use mcc_regalloc::Location;

/// Format tag; bump together with [`crate::FORMAT_VERSION`].
const MAGIC: &str = "mccart1";

// ------------------------------------------------------------- writing ----

fn push_qstr(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_loc(out: &mut String, loc: &Location) {
    match loc {
        Location::Reg(r) => out.push_str(&format!("r {} {}", r.file.0, r.index)),
        Location::Scratch(r) => out.push_str(&format!("s {} {}", r.file.0, r.index)),
        Location::Mem(a) => out.push_str(&format!("m {a}")),
    }
}

/// Condition codes get fixed indices; the exhaustive match means a new
/// variant cannot ship without a format decision.
fn cond_code(c: CondKind) -> u32 {
    match c {
        CondKind::True => 0,
        CondKind::Zero => 1,
        CondKind::NotZero => 2,
        CondKind::Neg => 3,
        CondKind::NotNeg => 4,
        CondKind::Carry => 5,
        CondKind::NotCarry => 6,
        CondKind::Overflow => 7,
        CondKind::Uf => 8,
        CondKind::NotUf => 9,
    }
}

fn cond_of(code: u32) -> Result<CondKind, String> {
    Ok(match code {
        0 => CondKind::True,
        1 => CondKind::Zero,
        2 => CondKind::NotZero,
        3 => CondKind::Neg,
        4 => CondKind::NotNeg,
        5 => CondKind::Carry,
        6 => CondKind::NotCarry,
        7 => CondKind::Overflow,
        8 => CondKind::Uf,
        9 => CondKind::NotUf,
        _ => return Err(format!("bad condition code {code}")),
    })
}

fn push_op(out: &mut String, op: &BoundOp) {
    out.push_str(&format!("{}", op.template.0));
    match op.dst {
        Some(r) => out.push_str(&format!(" {} {}", r.file.0, r.index)),
        None => out.push_str(" -"),
    }
    out.push_str(&format!(" {}", op.srcs.len()));
    for r in &op.srcs {
        out.push_str(&format!(" {} {}", r.file.0, r.index));
    }
    match op.imm {
        Some(v) => out.push_str(&format!(" {v}")),
        None => out.push_str(" -"),
    }
    match op.target {
        Some(v) => out.push_str(&format!(" {v}")),
        None => out.push_str(" -"),
    }
    match op.cond {
        Some(c) => out.push_str(&format!(" {}", cond_code(c))),
        None => out.push_str(" -"),
    }
}

/// Serialises an artifact (without its machine) to one line of text —
/// the canonical byte representation used by the disk tier and by the
/// cache-invisibility tests.
pub fn serialize_artifact(a: &Artifact) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(MAGIC);

    // Stats (volatile fields excluded).
    let s = &a.stats;
    out.push_str(&format!(
        " stats {} {} {} {} {} {} {} ",
        s.mir_ops, s.micro_instrs, s.micro_ops, s.spills, s.spill_moves, s.polls, s.dead_flags
    ));
    push_qstr(&mut out, &s.algorithm_used);
    out.push_str(&format!(" {}", s.degradations.len()));
    for d in &s.degradations {
        out.push(' ');
        push_qstr(&mut out, d);
    }

    // Warnings, in pipeline order.
    out.push_str(&format!(" warn {}", a.warnings.len()));
    for w in &a.warnings {
        out.push(' ');
        push_qstr(&mut out, &w.message);
    }

    // Map-backed fields in sorted order for determinism.
    let mut locs: Vec<(&VReg, &Location)> = a.locations.iter().collect();
    locs.sort_by_key(|(v, _)| v.0);
    out.push_str(&format!(" locs {}", locs.len()));
    for (v, loc) in locs {
        out.push_str(&format!(" {} ", v.0));
        push_loc(&mut out, loc);
    }

    let mut syms: Vec<(&String, &Location)> = a.symbols.iter().collect();
    syms.sort_by_key(|(n, _)| n.as_str());
    out.push_str(&format!(" syms {}", syms.len()));
    for (n, loc) in syms {
        out.push(' ');
        push_qstr(&mut out, n);
        out.push(' ');
        push_loc(&mut out, loc);
    }

    let mut mems: Vec<(&String, &(u64, u64))> = a.memory_symbols.iter().collect();
    mems.sort_by_key(|(n, _)| n.as_str());
    out.push_str(&format!(" mems {}", mems.len()));
    for (n, (base, len)) in mems {
        out.push(' ');
        push_qstr(&mut out, n);
        out.push_str(&format!(" {base} {len}"));
    }

    // The program: blocks of instructions of bound operations.
    out.push_str(&format!(" prog {}", a.program.blocks.len()));
    for b in &a.program.blocks {
        out.push_str(&format!(" {}", b.instrs.len()));
        for i in &b.instrs {
            out.push_str(&format!(" {}", i.ops.len()));
            for op in &i.ops {
                out.push(' ');
                push_op(&mut out, op);
            }
        }
    }
    out
}

// ------------------------------------------------------------- reading ----

/// A whitespace token stream over one serialised artifact.
struct Toks<'a> {
    rest: &'a str,
}

impl<'a> Toks<'a> {
    fn new(s: &'a str) -> Self {
        Toks { rest: s }
    }

    /// Next raw token (quoted strings are returned *decoded*).
    fn next(&mut self) -> Result<std::borrow::Cow<'a, str>, String> {
        self.rest = self.rest.trim_start_matches(' ');
        if self.rest.is_empty() {
            return Err("unexpected end of record".into());
        }
        if let Some(body) = self.rest.strip_prefix('"') {
            let mut out = String::new();
            let mut chars = body.char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => {
                        self.rest = &body[i + 1..];
                        return Ok(std::borrow::Cow::Owned(out));
                    }
                    '\\' => match chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, 't')) => out.push('\t'),
                        Some((j, 'u')) => {
                            let hex = body.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                            let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(v).ok_or("bad \\u escape")?);
                            // Consume the 4 hex digits.
                            for _ in 0..4 {
                                chars.next();
                            }
                        }
                        _ => return Err("bad escape in quoted string".into()),
                    },
                    c => out.push(c),
                }
            }
            Err("unterminated quoted string".into())
        } else {
            let end = self.rest.find(' ').unwrap_or(self.rest.len());
            let (tok, rest) = self.rest.split_at(end);
            self.rest = rest;
            Ok(std::borrow::Cow::Borrowed(tok))
        }
    }

    fn num<T: std::str::FromStr>(&mut self) -> Result<T, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad number `{t}`"))
    }

    /// `-` → `None`, otherwise a number.
    fn opt_num<T: std::str::FromStr>(&mut self) -> Result<Option<T>, String> {
        let t = self.next()?;
        if t == "-" {
            return Ok(None);
        }
        t.parse().map(Some).map_err(|_| format!("bad number `{t}`"))
    }

    fn expect(&mut self, word: &str) -> Result<(), String> {
        let t = self.next()?;
        if t == word {
            Ok(())
        } else {
            Err(format!("expected `{word}`, found `{t}`"))
        }
    }

    fn qstr(&mut self) -> Result<String, String> {
        Ok(self.next()?.into_owned())
    }

    fn regref(&mut self) -> Result<RegRef, String> {
        let file: u16 = self.num()?;
        let index: u16 = self.num()?;
        Ok(RegRef::new(FileId(file), index))
    }

    fn loc(&mut self) -> Result<Location, String> {
        let tag = self.next()?;
        Ok(match &*tag {
            "r" => Location::Reg(self.regref()?),
            "s" => Location::Scratch(self.regref()?),
            "m" => Location::Mem(self.num()?),
            t => return Err(format!("bad location tag `{t}`")),
        })
    }

    fn op(&mut self) -> Result<BoundOp, String> {
        let template = TemplateId(self.num()?);
        let dst = match &*self.next()? {
            "-" => None,
            t => {
                let file: u16 = t.parse().map_err(|_| format!("bad file id `{t}`"))?;
                let index: u16 = self.num()?;
                Some(RegRef::new(FileId(file), index))
            }
        };
        let nsrcs: usize = self.num()?;
        let mut srcs = Vec::with_capacity(nsrcs);
        for _ in 0..nsrcs {
            srcs.push(self.regref()?);
        }
        let imm: Option<u64> = self.opt_num()?;
        let target: Option<u32> = self.opt_num()?;
        let cond = match self.opt_num::<u32>()? {
            None => None,
            Some(code) => Some(cond_of(code)?),
        };
        Ok(BoundOp {
            template,
            dst,
            srcs,
            imm,
            target,
            cond,
        })
    }
}

/// Reconstructs an artifact from its canonical serialisation, attaching
/// the caller's `machine` (which the cache key guarantees is the one
/// the artifact was compiled for).
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn deserialize_artifact(s: &str, machine: MachineDesc) -> Result<Artifact, String> {
    let mut t = Toks::new(s);
    t.expect(MAGIC)?;

    t.expect("stats")?;
    let mut stats = CompileStats {
        mir_ops: t.num()?,
        micro_instrs: t.num()?,
        micro_ops: t.num()?,
        spills: t.num()?,
        spill_moves: t.num()?,
        polls: t.num()?,
        dead_flags: t.num()?,
        algorithm_used: t.qstr()?,
        ..Default::default()
    };
    let ndeg: usize = t.num()?;
    for _ in 0..ndeg {
        stats.degradations.push(t.qstr()?);
    }

    t.expect("warn")?;
    let nwarn: usize = t.num()?;
    let mut warnings = Vec::with_capacity(nwarn);
    for _ in 0..nwarn {
        warnings.push(Warning {
            message: t.qstr()?,
        });
    }

    t.expect("locs")?;
    let nlocs: usize = t.num()?;
    let mut locations = HashMap::with_capacity(nlocs);
    for _ in 0..nlocs {
        let v: u32 = t.num()?;
        locations.insert(VReg(v), t.loc()?);
    }

    t.expect("syms")?;
    let nsyms: usize = t.num()?;
    let mut symbols = HashMap::with_capacity(nsyms);
    for _ in 0..nsyms {
        let name = t.qstr()?;
        symbols.insert(name, t.loc()?);
    }

    t.expect("mems")?;
    let nmems: usize = t.num()?;
    let mut memory_symbols = HashMap::with_capacity(nmems);
    for _ in 0..nmems {
        let name = t.qstr()?;
        let base: u64 = t.num()?;
        let len: u64 = t.num()?;
        memory_symbols.insert(name, (base, len));
    }

    t.expect("prog")?;
    let nblocks: usize = t.num()?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let ninstrs: usize = t.num()?;
        let mut instrs = Vec::with_capacity(ninstrs);
        for _ in 0..ninstrs {
            let nops: usize = t.num()?;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                ops.push(t.op()?);
            }
            instrs.push(MicroInstr { ops });
        }
        blocks.push(MicroBlock { instrs });
    }

    Ok(Artifact {
        machine,
        program: MicroProgram { blocks },
        locations,
        symbols,
        memory_symbols,
        warnings,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::{Compiler, SourceLang};
    use mcc_machine::machines::hm1;

    fn sample() -> Artifact {
        let c = Compiler::new(hm1());
        let mut art = c
            .compile_contained(
                SourceLang::Yalll,
                "reg a = R0\nreg t\nconst a, 5\nconst t, 0\nloop:\nadd t, t, a\nsub a, a, 1\njump loop if a <> 0\nexit t\n",
            )
            .unwrap();
        // Exercise the remaining fields.
        art.memory_symbols.insert("TBL".into(), (0x200, 64));
        art.warnings.push(Warning {
            message: "synthetic \"quoted\"\nwarning\t\u{1}".into(),
        });
        art
    }

    #[test]
    fn roundtrips_byte_identically() {
        let art = sample();
        let bytes = serialize_artifact(&art);
        assert!(!bytes.contains('\n'), "serialisation must be single-line");
        let back = deserialize_artifact(&bytes, art.machine.clone()).unwrap();
        assert_eq!(bytes, serialize_artifact(&back));
        assert_eq!(art.program, back.program);
        assert_eq!(art.symbols.len(), back.symbols.len());
        assert_eq!(art.warnings, back.warnings);
    }

    #[test]
    fn volatile_stats_fields_do_not_change_bytes() {
        let art = sample();
        let mut marked = art.clone();
        marked.stats.cached = Some("memory");
        marked.stats.pass_nanos.clear();
        assert_eq!(serialize_artifact(&art), serialize_artifact(&marked));
    }

    #[test]
    fn truncation_is_detected() {
        let art = sample();
        let bytes = serialize_artifact(&art);
        let cut = &bytes[..bytes.len() - 3];
        assert!(deserialize_artifact(cut, art.machine.clone()).is_err());
    }

    #[test]
    fn simulating_a_deserialized_artifact_matches() {
        let art = sample();
        let back =
            deserialize_artifact(&serialize_artifact(&art), art.machine.clone()).unwrap();
        let (sim_a, stats_a) = art.run().unwrap();
        let (sim_b, stats_b) = back.run().unwrap();
        assert_eq!(stats_a.cycles, stats_b.cycles);
        assert_eq!(art.read_symbol(&sim_a, "t"), back.read_symbol(&sim_b, "t"));
        assert_eq!(art.read_symbol(&sim_a, "t"), Some(15));
    }
}
