//! The on-disk cache tier — an append-only, checksummed record log with
//! the harness journal's crash-only discipline.
//!
//! `.mcc-cache/cache.log` holds one header line plus one line per
//! artifact:
//!
//! ```text
//! H <salt>
//! A <key:032x> <sum:016x> <payload>
//! ```
//!
//! where `sum` is the 64-bit FNV-1a of `"<key:032x> <payload>"`. Records
//! are append-only and fsynced; recovery on open walks the log from the
//! top and **truncates at the first line that is torn** (no trailing
//! newline), fails its checksum, or fails to parse — exactly the
//! journal's prefix-only recovery rule. A header whose salt does not
//! match the running toolkit invalidates the whole store (the file is
//! reset), so format or version bumps self-evict.
//!
//! `.mcc-cache/stats.log` accumulates per-process counter deltas
//! (`S <hits_mem> <hits_disk> <misses> <stores> <evictions> <sum:016x>`;
//! older four-field records still parse) so `mcc cache stats` can report
//! lifetime hit rates across processes; torn or corrupt stats lines are
//! simply skipped.
//!
//! The store is **bounded**: a configurable byte cap
//! (`MCC_CACHE_MAX_BYTES`, default 256 MiB, `0` = unbounded) triggers
//! oldest-first eviction on insert. Eviction re-scans the log under the
//! directory's advisory lock ([`crate::lock`]) — so records appended by
//! concurrent processes are aged out, not silently lost — drops records
//! from the front (append order *is* age order), and atomically replaces
//! the log via a tmp-file rename. Cross-process writers take the same
//! lock around every append, closing the torn-counter interleaving that
//! unlocked concurrent `exp_all --jobs N` runs could produce.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::lock::ExclusiveLock;
use crate::{toolkit_salt, CacheKey, Counters};

/// 64-bit FNV-1a — the same function, with the same parameters, as the
/// harness journal's record checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const CACHE_LOG: &str = "cache.log";
const STATS_LOG: &str = "stats.log";
const LOCK_FILE: &str = "lock";

/// Default byte cap for the artifact log when `MCC_CACHE_MAX_BYTES` is
/// unset.
pub const DEFAULT_MAX_BYTES: u64 = 256 * 1024 * 1024;

/// The configured byte cap: `MCC_CACHE_MAX_BYTES` (`0` = unbounded,
/// malformed values fall back to the default), else
/// [`DEFAULT_MAX_BYTES`].
pub fn configured_cap() -> Option<u64> {
    match std::env::var("MCC_CACHE_MAX_BYTES") {
        Ok(v) if !v.is_empty() => match v.parse::<u64>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => Some(DEFAULT_MAX_BYTES),
        },
        _ => Some(DEFAULT_MAX_BYTES),
    }
}

/// Renders one artifact record line (checksummed, newline-terminated).
fn record_line(key: u128, payload: &str) -> String {
    let body = format!("{key:032x} {payload}");
    format!("A {body} {:016x}\n", fnv1a(body.as_bytes()))
}

/// Walks log `text` from the top: returns the records of the valid
/// prefix in append (= age) order and the prefix's byte length. Stops at
/// the first torn, corrupt, or unparsable line, exactly like the
/// journal.
fn scan_records(text: &str, header: &str) -> (Vec<(u128, String)>, usize) {
    let mut records = Vec::new();
    let mut valid = 0usize;
    if let Some(rest) = text.strip_prefix(header) {
        valid = header.len();
        for line in rest.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn tail
            }
            let Some(rec) = parse_record(&line[..line.len() - 1]) else {
                break; // corrupt record: truncate from here
            };
            records.push(rec);
            valid += line.len();
        }
    }
    (records, valid)
}

/// The artifact store under one cache directory.
pub struct DiskTier {
    dir: PathBuf,
    log: File,
    /// The advisory cross-process lock, a stable-inode file in the cache
    /// directory (locking `cache.log` itself would break across the
    /// eviction rename).
    lockfile: File,
    index: HashMap<u128, String>,
    /// Live keys in append order — the eviction queue, oldest first.
    order: VecDeque<u128>,
    /// Byte cap for `cache.log`; `None` = unbounded.
    cap: Option<u64>,
    /// Records evicted (or refused) by the cap since open.
    evictions: u64,
}

impl DiskTier {
    /// Opens (creating if necessary) the store under `dir` with the
    /// environment-configured byte cap, recovering from a torn tail by
    /// truncating to the last valid record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is never an error, only
    /// truncation.
    pub fn open(dir: &Path) -> io::Result<DiskTier> {
        Self::open_with_cap(dir, configured_cap())
    }

    /// Opens the store with an explicit byte cap (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is never an error, only
    /// truncation.
    pub fn open_with_cap(dir: &Path, cap: Option<u64>) -> io::Result<DiskTier> {
        std::fs::create_dir_all(dir)?;
        let lockfile = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(LOCK_FILE))?;
        let _guard = ExclusiveLock::acquire(&lockfile);
        let path = dir.join(CACHE_LOG);
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut text = String::new();
        // Invalid UTF-8 means a corrupt store: recover by resetting.
        let mut raw = Vec::new();
        log.read_to_end(&mut raw)?;
        match String::from_utf8(raw) {
            Ok(s) => text = s,
            Err(_) => text.clear(),
        }

        let header = format!("H {}\n", toolkit_salt());
        let (records, valid) = scan_records(&text, &header);
        let mut index = HashMap::new();
        let mut order = VecDeque::new();
        for (key, payload) in records {
            if index.insert(key, payload).is_none() {
                order.push_back(key);
            }
        }

        if valid != text.len() || valid == 0 {
            // Reset to the valid prefix (or to a fresh header).
            log.set_len(valid as u64)?;
            if valid == 0 {
                log.seek(SeekFrom::Start(0))?;
                log.write_all(header.as_bytes())?;
                index.clear();
                order.clear();
            }
            log.sync_data()?;
        }
        log.seek(SeekFrom::End(0))?;

        drop(_guard);
        Ok(DiskTier {
            dir: dir.to_path_buf(),
            log,
            lockfile,
            index,
            order,
            cap,
            evictions: 0,
        })
    }

    /// Number of artifacts in the store.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The cache directory this tier lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte cap (`None` = unbounded).
    pub fn cap(&self) -> Option<u64> {
        self.cap
    }

    /// Records evicted (or refused) by the byte cap since open.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a serialised artifact by content address.
    pub fn lookup(&self, key: CacheKey) -> Option<&String> {
        self.index.get(&key.0)
    }

    /// Appends one record (idempotent per key) and fsyncs, evicting
    /// oldest-first when the byte cap would be exceeded. A record that
    /// cannot fit even an empty log is refused (counted as an eviction)
    /// rather than thrashing the store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append.
    pub fn store(&mut self, key: CacheKey, payload: &str) -> io::Result<()> {
        debug_assert!(!payload.contains('\n'));
        if self.index.contains_key(&key.0) {
            return Ok(());
        }
        let line = record_line(key.0, payload);
        let header_len = format!("H {}\n", toolkit_salt()).len() as u64;
        // Lock through a duplicated handle (same open file description,
        // so the same flock) to leave `self` free for `evict_to_fit`.
        let lockf = self.lockfile.try_clone()?;
        let _guard = ExclusiveLock::acquire(&lockf);
        if let Some(cap) = self.cap {
            if header_len + line.len() as u64 > cap {
                self.evictions += 1;
                return Ok(());
            }
            // Seek reports the *real* size, which may exceed our view
            // when other processes appended since open.
            let size = self.log.seek(SeekFrom::End(0))?;
            if size + line.len() as u64 > cap {
                self.evict_to_fit(cap.saturating_sub(line.len() as u64))?;
            }
        } else {
            // Append at the true end even if another process grew the
            // file since our last write.
            self.log.seek(SeekFrom::End(0))?;
        }
        self.log.write_all(line.as_bytes())?;
        self.log.sync_data()?;
        if self.index.insert(key.0, payload.to_string()).is_none() {
            self.order.push_back(key.0);
        }
        Ok(())
    }

    /// Oldest-first eviction: re-scan the log under the lock (so records
    /// appended by concurrent processes age out instead of vanishing),
    /// drop records from the front until the rewritten log fits
    /// `budget`, then atomically replace `cache.log` via a tmp-file
    /// rename.
    fn evict_to_fit(&mut self, budget: u64) -> io::Result<()> {
        let header = format!("H {}\n", toolkit_salt());
        self.log.seek(SeekFrom::Start(0))?;
        let mut raw = Vec::new();
        self.log.read_to_end(&mut raw)?;
        let text = String::from_utf8(raw).unwrap_or_default();
        let (records, _) = scan_records(&text, &header);

        let mut keep: VecDeque<(u128, String)> = VecDeque::new();
        let mut seen = std::collections::HashSet::new();
        for (key, payload) in records {
            if seen.insert(key) {
                keep.push_back((key, payload));
            }
        }
        let mut total = header.len() as u64
            + keep
                .iter()
                .map(|(k, p)| record_line(*k, p).len() as u64)
                .sum::<u64>();
        while total > budget {
            let Some((key, payload)) = keep.pop_front() else {
                break;
            };
            total -= record_line(key, &payload).len() as u64;
            self.index.remove(&key);
            self.evictions += 1;
        }
        self.order.retain(|k| keep.iter().any(|(kk, _)| kk == k));

        let tmp_path = self.dir.join(format!("{CACHE_LOG}.tmp-{}", std::process::id()));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(header.as_bytes())?;
            for (key, payload) in &keep {
                tmp.write_all(record_line(*key, payload).as_bytes())?;
            }
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, self.dir.join(CACHE_LOG))?;

        // Rebuild the in-memory view from what survived and reopen the
        // handle onto the new inode, positioned for appends.
        self.index = keep.iter().cloned().collect();
        self.order = keep.iter().map(|(k, _)| *k).collect();
        self.log = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(CACHE_LOG))?;
        self.log.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Appends one counter-delta record to the stats log and fsyncs,
    /// under the directory's advisory lock so concurrent processes
    /// cannot interleave torn deltas.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append.
    pub fn append_stats(&self, delta: Counters) -> io::Result<()> {
        let body = format!(
            "{} {} {} {} {}",
            delta.hits_memory, delta.hits_disk, delta.misses, delta.stores, delta.evictions
        );
        let line = format!("S {body} {:016x}\n", fnv1a(body.as_bytes()));
        let _guard = ExclusiveLock::acquire(&self.lockfile);
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.dir.join(STATS_LOG))?;
        f.write_all(line.as_bytes())?;
        f.sync_data()
    }
}

/// Parses `<key:032x> <sum:016x>`-framed record *after* the `A ` tag;
/// input is the line without its trailing newline.
fn parse_record(line: &str) -> Option<(u128, String)> {
    let body_and_sum = line.strip_prefix("A ")?;
    // The checksum is the fixed-width final field.
    let (body, sum_hex) = body_and_sum.rsplit_once(' ')?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum_hex.len() != 16 || fnv1a(body.as_bytes()) != sum {
        return None;
    }
    let (key_hex, payload) = body.split_once(' ')?;
    let key = u128::from_str_radix(key_hex, 16).ok()?;
    if key_hex.len() != 32 {
        return None;
    }
    Some((key, payload.to_string()))
}

/// Sums every valid record in a cache directory's stats log. Missing
/// files read as zero; torn or corrupt lines are skipped.
pub fn read_stats(dir: &Path) -> Counters {
    let mut total = Counters::default();
    let Ok(text) = std::fs::read_to_string(dir.join(STATS_LOG)) else {
        return total;
    };
    for line in text.lines() {
        let Some(body_and_sum) = line.strip_prefix("S ") else {
            continue;
        };
        let Some((body, sum_hex)) = body_and_sum.rsplit_once(' ') else {
            continue;
        };
        if sum_hex.len() != 16
            || u64::from_str_radix(sum_hex, 16).ok() != Some(fnv1a(body.as_bytes()))
        {
            continue;
        }
        // Four numbers (pre-eviction format) or five.
        let nums: Option<Vec<u64>> = body.split(' ').map(|n| n.parse::<u64>().ok()).collect();
        let Some(nums) = nums else { continue };
        let [hm, hd, mi, st, ev] = match nums[..] {
            [hm, hd, mi, st] => [hm, hd, mi, st, 0],
            [hm, hd, mi, st, ev] => [hm, hd, mi, st, ev],
            _ => continue,
        };
        total.hits_memory += hm;
        total.hits_disk += hd;
        total.misses += mi;
        total.stores += st;
        total.evictions += ev;
    }
    total
}

/// Size of the artifact log in bytes (0 when absent) — reporting only.
pub fn log_bytes(dir: &Path) -> u64 {
    std::fs::metadata(dir.join(CACHE_LOG)).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcc-cache-test-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_and_reopen() {
        let dir = tmp("reopen");
        let k1 = CacheKey(42);
        let k2 = CacheKey(7);
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(k1, "payload one with spaces").unwrap();
            t.store(k2, "two").unwrap();
            t.store(k1, "ignored duplicate").unwrap();
            assert_eq!(t.len(), 2);
        }
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(k1).unwrap(), "payload one with spaces");
        assert_eq!(t.lookup(k2).unwrap(), "two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_store_recovers() {
        let dir = tmp("torn");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
            t.store(CacheKey(2), "beta").unwrap();
        }
        // Tear the tail: append a partial record with no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(CACHE_LOG))
            .unwrap();
        f.write_all(b"A 00000000000000000000000000000003 half-writ").unwrap();
        drop(f);

        let mut t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 2, "torn record dropped, valid prefix kept");
        t.store(CacheKey(3), "gamma").unwrap();
        drop(t);
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_truncates_from_there() {
        let dir = tmp("corrupt");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
            t.store(CacheKey(2), "beta").unwrap();
            t.store(CacheKey(3), "gamma").unwrap();
        }
        // Flip a byte in the middle record's payload.
        let path = dir.join(CACHE_LOG);
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replacen("beta", "bXta", 1);
        std::fs::write(&path, mangled).unwrap();

        let t = DiskTier::open(&dir).unwrap();
        // Prefix-only recovery: the corrupt record *and everything after
        // it* are dropped, exactly like the journal.
        assert_eq!(t.len(), 1);
        assert!(t.lookup(CacheKey(1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salt_mismatch_resets_the_store() {
        let dir = tmp("salt");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
        }
        let path = dir.join(CACHE_LOG);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("cachev", "cachev9", 1)).unwrap();
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 0, "stale salt evicts the whole store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_accumulate_across_appends() {
        let dir = tmp("stats");
        let t = DiskTier::open(&dir).unwrap();
        t.append_stats(Counters {
            hits_memory: 1,
            hits_disk: 2,
            misses: 3,
            stores: 4,
            evictions: 5,
        })
        .unwrap();
        t.append_stats(Counters {
            hits_memory: 10,
            ..Counters::default()
        })
        .unwrap();
        // A four-field record from an older toolkit still parses.
        let old_body = "2 0 0 1";
        let old_line = format!("S {old_body} {:016x}\n", fnv1a(old_body.as_bytes()));
        // A torn stats line is skipped, not fatal.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(STATS_LOG))
            .unwrap();
        f.write_all(old_line.as_bytes()).unwrap();
        f.write_all(b"S 9 9 9").unwrap();
        drop(f);
        let s = read_stats(&dir);
        assert_eq!(
            (s.hits_memory, s.hits_disk, s.misses, s.stores, s.evictions),
            (13, 2, 3, 5, 5)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_evicts_oldest_first() {
        let dir = tmp("cap");
        let payload = "x".repeat(64);
        let line_len = record_line(0, &payload).len() as u64;
        let header_len = format!("H {}\n", toolkit_salt()).len() as u64;
        // Room for exactly three records.
        let cap = header_len + 3 * line_len;
        let mut t = DiskTier::open_with_cap(&dir, Some(cap)).unwrap();
        for i in 1..=3u128 {
            t.store(CacheKey(i), &payload).unwrap();
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evictions(), 0);
        // The fourth insert evicts the oldest record (key 1).
        t.store(CacheKey(4), &payload).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.evictions(), 1);
        assert!(t.lookup(CacheKey(1)).is_none(), "oldest evicted");
        assert!(t.lookup(CacheKey(2)).is_some());
        assert!(t.lookup(CacheKey(4)).is_some());
        assert!(log_bytes(&dir) <= cap, "log never exceeds the cap");
        drop(t);
        // The rewritten log reopens cleanly with the survivors.
        let t = DiskTier::open_with_cap(&dir, Some(cap)).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.lookup(CacheKey(1)).is_none());
        assert!(t.lookup(CacheKey(4)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_record_is_refused_not_thrashed() {
        let dir = tmp("oversize");
        let header_len = format!("H {}\n", toolkit_salt()).len() as u64;
        let cap = header_len + record_line(0, "small").len() as u64;
        let mut t = DiskTier::open_with_cap(&dir, Some(cap)).unwrap();
        t.store(CacheKey(1), "small").unwrap();
        assert_eq!(t.len(), 1);
        // A record too big for even an empty log is refused outright —
        // it must not evict everything and still fail to fit.
        t.store(CacheKey(2), &"y".repeat(512)).unwrap();
        assert_eq!(t.len(), 1, "oversized record not stored");
        assert!(t.lookup(CacheKey(1)).is_some(), "existing record survives");
        assert!(t.lookup(CacheKey(2)).is_none());
        assert_eq!(t.evictions(), 1, "refusal counted as an eviction");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cap_never_evicts() {
        let dir = tmp("unbounded");
        let mut t = DiskTier::open_with_cap(&dir, None).unwrap();
        for i in 0..64u128 {
            t.store(CacheKey(i), &"z".repeat(128)).unwrap();
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.evictions(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
