//! The on-disk cache tier — an append-only, checksummed record log with
//! the harness journal's crash-only discipline.
//!
//! `.mcc-cache/cache.log` holds one header line plus one line per
//! artifact:
//!
//! ```text
//! H <salt>
//! A <key:032x> <sum:016x> <payload>
//! ```
//!
//! where `sum` is the 64-bit FNV-1a of `"<key:032x> <payload>"`. Records
//! are append-only and fsynced; recovery on open walks the log from the
//! top and **truncates at the first line that is torn** (no trailing
//! newline), fails its checksum, or fails to parse — exactly the
//! journal's prefix-only recovery rule. A header whose salt does not
//! match the running toolkit invalidates the whole store (the file is
//! reset), so format or version bumps self-evict.
//!
//! `.mcc-cache/stats.log` accumulates per-process counter deltas
//! (`S <hits_mem> <hits_disk> <misses> <stores> <sum:016x>`) so
//! `mcc cache stats` can report lifetime hit rates across processes;
//! torn or corrupt stats lines are simply skipped.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::{toolkit_salt, CacheKey, Counters};

/// 64-bit FNV-1a — the same function, with the same parameters, as the
/// harness journal's record checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const CACHE_LOG: &str = "cache.log";
const STATS_LOG: &str = "stats.log";

/// The artifact store under one cache directory.
pub struct DiskTier {
    dir: PathBuf,
    log: File,
    index: HashMap<u128, String>,
}

impl DiskTier {
    /// Opens (creating if necessary) the store under `dir`, recovering
    /// from a torn tail by truncating to the last valid record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is never an error, only
    /// truncation.
    pub fn open(dir: &Path) -> io::Result<DiskTier> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_LOG);
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut text = String::new();
        // Invalid UTF-8 means a corrupt store: recover by resetting.
        let mut raw = Vec::new();
        log.read_to_end(&mut raw)?;
        match String::from_utf8(raw) {
            Ok(s) => text = s,
            Err(_) => text.clear(),
        }

        let header = format!("H {}\n", toolkit_salt());
        let mut index = HashMap::new();
        let mut valid = 0usize;

        if let Some(rest) = text.strip_prefix(&header) {
            valid = header.len();
            let mut offset = valid;
            for line in rest.split_inclusive('\n') {
                if !line.ends_with('\n') {
                    break; // torn tail
                }
                let Some((key, payload)) = parse_record(&line[..line.len() - 1]) else {
                    break; // corrupt record: truncate from here
                };
                index.insert(key, payload);
                offset += line.len();
                valid = offset;
            }
        }

        if valid != text.len() || valid == 0 {
            // Reset to the valid prefix (or to a fresh header).
            log.set_len(valid as u64)?;
            if valid == 0 {
                log.seek(SeekFrom::Start(0))?;
                log.write_all(header.as_bytes())?;
                index.clear();
            }
            log.sync_data()?;
        }
        log.seek(SeekFrom::End(0))?;

        Ok(DiskTier {
            dir: dir.to_path_buf(),
            log,
            index,
        })
    }

    /// Number of artifacts in the store.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The cache directory this tier lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up a serialised artifact by content address.
    pub fn lookup(&self, key: CacheKey) -> Option<&String> {
        self.index.get(&key.0)
    }

    /// Appends one record (idempotent per key) and fsyncs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append.
    pub fn store(&mut self, key: CacheKey, payload: &str) -> io::Result<()> {
        debug_assert!(!payload.contains('\n'));
        if self.index.contains_key(&key.0) {
            return Ok(());
        }
        let body = format!("{:032x} {payload}", key.0);
        let line = format!("A {body} {:016x}\n", fnv1a(body.as_bytes()));
        self.log.write_all(line.as_bytes())?;
        self.log.sync_data()?;
        self.index.insert(key.0, payload.to_string());
        Ok(())
    }

    /// Appends one counter-delta record to the stats log and fsyncs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append.
    pub fn append_stats(&self, delta: Counters) -> io::Result<()> {
        let body = format!(
            "{} {} {} {}",
            delta.hits_memory, delta.hits_disk, delta.misses, delta.stores
        );
        let line = format!("S {body} {:016x}\n", fnv1a(body.as_bytes()));
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.dir.join(STATS_LOG))?;
        f.write_all(line.as_bytes())?;
        f.sync_data()
    }
}

/// Parses `<key:032x> <sum:016x>`-framed record *after* the `A ` tag;
/// input is the line without its trailing newline.
fn parse_record(line: &str) -> Option<(u128, String)> {
    let body_and_sum = line.strip_prefix("A ")?;
    // The checksum is the fixed-width final field.
    let (body, sum_hex) = body_and_sum.rsplit_once(' ')?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum_hex.len() != 16 || fnv1a(body.as_bytes()) != sum {
        return None;
    }
    let (key_hex, payload) = body.split_once(' ')?;
    let key = u128::from_str_radix(key_hex, 16).ok()?;
    if key_hex.len() != 32 {
        return None;
    }
    Some((key, payload.to_string()))
}

/// Sums every valid record in a cache directory's stats log. Missing
/// files read as zero; torn or corrupt lines are skipped.
pub fn read_stats(dir: &Path) -> Counters {
    let mut total = Counters::default();
    let Ok(text) = std::fs::read_to_string(dir.join(STATS_LOG)) else {
        return total;
    };
    for line in text.lines() {
        let Some(body_and_sum) = line.strip_prefix("S ") else {
            continue;
        };
        let Some((body, sum_hex)) = body_and_sum.rsplit_once(' ') else {
            continue;
        };
        if sum_hex.len() != 16
            || u64::from_str_radix(sum_hex, 16).ok() != Some(fnv1a(body.as_bytes()))
        {
            continue;
        }
        let mut nums = body.split(' ').map(|n| n.parse::<u64>());
        let (Some(Ok(hm)), Some(Ok(hd)), Some(Ok(mi)), Some(Ok(st)), None) = (
            nums.next(),
            nums.next(),
            nums.next(),
            nums.next(),
            nums.next(),
        ) else {
            continue;
        };
        total.hits_memory += hm;
        total.hits_disk += hd;
        total.misses += mi;
        total.stores += st;
    }
    total
}

/// Size of the artifact log in bytes (0 when absent) — reporting only.
pub fn log_bytes(dir: &Path) -> u64 {
    std::fs::metadata(dir.join(CACHE_LOG)).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcc-cache-test-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_and_reopen() {
        let dir = tmp("reopen");
        let k1 = CacheKey(42);
        let k2 = CacheKey(7);
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(k1, "payload one with spaces").unwrap();
            t.store(k2, "two").unwrap();
            t.store(k1, "ignored duplicate").unwrap();
            assert_eq!(t.len(), 2);
        }
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(k1).unwrap(), "payload one with spaces");
        assert_eq!(t.lookup(k2).unwrap(), "two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_store_recovers() {
        let dir = tmp("torn");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
            t.store(CacheKey(2), "beta").unwrap();
        }
        // Tear the tail: append a partial record with no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(CACHE_LOG))
            .unwrap();
        f.write_all(b"A 00000000000000000000000000000003 half-writ").unwrap();
        drop(f);

        let mut t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 2, "torn record dropped, valid prefix kept");
        t.store(CacheKey(3), "gamma").unwrap();
        drop(t);
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_truncates_from_there() {
        let dir = tmp("corrupt");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
            t.store(CacheKey(2), "beta").unwrap();
            t.store(CacheKey(3), "gamma").unwrap();
        }
        // Flip a byte in the middle record's payload.
        let path = dir.join(CACHE_LOG);
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replacen("beta", "bXta", 1);
        std::fs::write(&path, mangled).unwrap();

        let t = DiskTier::open(&dir).unwrap();
        // Prefix-only recovery: the corrupt record *and everything after
        // it* are dropped, exactly like the journal.
        assert_eq!(t.len(), 1);
        assert!(t.lookup(CacheKey(1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salt_mismatch_resets_the_store() {
        let dir = tmp("salt");
        {
            let mut t = DiskTier::open(&dir).unwrap();
            t.store(CacheKey(1), "alpha").unwrap();
        }
        let path = dir.join(CACHE_LOG);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("cachev", "cachev9", 1)).unwrap();
        let t = DiskTier::open(&dir).unwrap();
        assert_eq!(t.len(), 0, "stale salt evicts the whole store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_accumulate_across_appends() {
        let dir = tmp("stats");
        let t = DiskTier::open(&dir).unwrap();
        t.append_stats(Counters {
            hits_memory: 1,
            hits_disk: 2,
            misses: 3,
            stores: 4,
        })
        .unwrap();
        t.append_stats(Counters {
            hits_memory: 10,
            hits_disk: 0,
            misses: 0,
            stores: 0,
        })
        .unwrap();
        // A torn stats line is skipped, not fatal.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(STATS_LOG))
            .unwrap();
        f.write_all(b"S 9 9 9").unwrap();
        drop(f);
        let s = read_stats(&dir);
        assert_eq!(
            (s.hits_memory, s.hits_disk, s.misses, s.stores),
            (11, 2, 3, 4)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
