//! Restart supervision: the budgeted, backed-off restart state machine
//! the fleet supervisor runs per child process.
//!
//! A crashed child is not restarted immediately and not restarted
//! forever. Each crash schedules the next spawn attempt after a
//! capped-exponential, deterministically jittered delay ([`backoff`]),
//! and consecutive crashes are fed into a [`Breaker`] whose threshold is
//! the *restart budget*: when the streak reaches the budget the breaker
//! trips and the child is **quarantined** — the supervisor stops
//! spawning it and routes traffic around it — instead of hot-looping a
//! binary that will never come up. A child that comes up and stays up
//! (the supervisor reports stability once a heartbeat succeeds past the
//! stability window) resets the streak, so occasional crashes spread
//! over a long life never exhaust the budget.
//!
//! Time is logical: the caller passes a crash ordinal, not a wall-clock
//! instant, so the decision sequence is a pure function of
//! `(policy, seed, child name, crash history)` and fully unit-testable.

use std::time::Duration;

use crate::backoff::{self, BackoffConfig};
use crate::breaker::{Breaker, BreakerConfig};

/// Restart tuning for one supervised child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Consecutive failed lives that quarantine the child. A "life"
    /// fails when the process exits (or never produces a banner) before
    /// the supervisor has declared it stable.
    pub budget: u32,
    /// Backoff between a crash and the next spawn attempt.
    pub backoff: BackoffConfig,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            budget: 5,
            backoff: BackoffConfig::default(),
        }
    }
}

/// What the supervisor should do about a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Spawn again after `delay`; this will be restart number `attempt`
    /// in the current streak.
    Restart { attempt: u32, delay: Duration },
    /// Budget exhausted: stop restarting, quarantine the child.
    Quarantine,
}

/// The per-child restart state machine. One tracker per supervised
/// process; feed it crashes and stability reports, read back decisions.
#[derive(Debug, Clone)]
pub struct RestartTracker {
    policy: RestartPolicy,
    breaker: Breaker,
    /// Restarts attempted in the current crash streak (resets on
    /// stability).
    streak: u32,
    /// Total restarts attempted over the tracker's life.
    restarts: u64,
    /// Total crashes observed over the tracker's life.
    crashes: u64,
}

impl RestartTracker {
    /// A fresh tracker. The quarantine breaker's cool-down is effectively
    /// infinite: quarantine is sticky until an operator intervenes
    /// (there is no half-open re-probe of a binary that crash-looped).
    pub fn new(policy: RestartPolicy) -> RestartTracker {
        RestartTracker {
            policy,
            // Threshold budget+1: the budget counts *restarts*, and the
            // crash after the last budgeted restart is the one that trips.
            breaker: Breaker::new(BreakerConfig {
                threshold: policy.budget.saturating_add(1),
                cooldown: u64::MAX,
            }),
            streak: 0,
            restarts: 0,
            crashes: 0,
        }
    }

    /// Records one crash (exit, failed spawn, or missing banner) and
    /// decides what to do next. `seed`/`name` feed the deterministic
    /// backoff jitter, so two shards crashing together do not respawn in
    /// lock-step.
    pub fn on_crash(&mut self, seed: u64, name: &str) -> RestartDecision {
        self.crashes += 1;
        if self.breaker.on_failure(self.crashes) || !self.breaker.is_closed() {
            return RestartDecision::Quarantine;
        }
        self.streak += 1;
        self.restarts += 1;
        RestartDecision::Restart {
            attempt: self.streak,
            delay: backoff::delay(&self.policy.backoff, seed, name, self.streak),
        }
    }

    /// Reports that the child has been up and healthy past the stability
    /// window: the crash streak resets and the budget refills.
    pub fn on_stable(&mut self) {
        self.breaker.on_success();
        self.streak = 0;
    }

    /// Whether the child is quarantined (restart budget exhausted).
    pub fn is_quarantined(&self) -> bool {
        !self.breaker.is_closed()
    }

    /// Restarts attempted over the tracker's life.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Crashes observed over the tracker's life.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(budget: u32) -> RestartPolicy {
        RestartPolicy {
            budget,
            backoff: BackoffConfig {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(1000),
            },
        }
    }

    #[test]
    fn restarts_until_the_budget_then_quarantines() {
        let mut t = RestartTracker::new(policy(3));
        for expect in 1..=3u32 {
            match t.on_crash(7, "b0") {
                RestartDecision::Restart { attempt, .. } => assert_eq!(attempt, expect),
                RestartDecision::Quarantine => panic!("quarantined below budget"),
            }
        }
        assert!(!t.is_quarantined());
        assert_eq!(t.on_crash(7, "b0"), RestartDecision::Quarantine);
        assert!(t.is_quarantined());
        assert_eq!(t.restarts(), 3, "the budget counts restarts, not crashes");
        // Further crashes (there should be none, but a racing reap may
        // still report one) stay quarantined.
        assert_eq!(t.on_crash(7, "b0"), RestartDecision::Quarantine);
    }

    #[test]
    fn delays_follow_the_seeded_backoff_schedule() {
        let cfg = policy(10);
        let mut t = RestartTracker::new(cfg);
        for attempt in 1..=4u32 {
            match t.on_crash(42, "b1") {
                RestartDecision::Restart { delay, .. } => {
                    assert_eq!(
                        delay,
                        backoff::delay(&cfg.backoff, 42, "b1", attempt),
                        "attempt {attempt} delay is the canonical backoff delay"
                    );
                }
                RestartDecision::Quarantine => panic!("budget 10 not exhausted"),
            }
        }
        // Same history, same seed: identical schedule.
        let mut u = RestartTracker::new(cfg);
        for _ in 0..4 {
            let _ = u.on_crash(42, "b1");
        }
        assert_eq!(t.restarts(), u.restarts());
    }

    #[test]
    fn different_names_decorrelate_their_delays() {
        let cfg = policy(10);
        let delays: std::collections::BTreeSet<Duration> = (0..8)
            .map(|i| {
                let mut t = RestartTracker::new(cfg);
                let mut t4 = Duration::ZERO;
                for _ in 0..4 {
                    if let RestartDecision::Restart { delay, .. } = t.on_crash(7, &format!("b{i}"))
                    {
                        t4 = delay;
                    }
                }
                t4
            })
            .collect();
        assert!(delays.len() > 1, "jitter must spread sibling respawns");
    }

    #[test]
    fn stability_resets_the_streak() {
        let mut t = RestartTracker::new(policy(2));
        assert!(matches!(t.on_crash(7, "b0"), RestartDecision::Restart { .. }));
        t.on_stable();
        // Budget refilled: another lone crash restarts instead of
        // quarantining, and the backoff restarts from attempt 1.
        match t.on_crash(7, "b0") {
            RestartDecision::Restart { attempt, .. } => assert_eq!(attempt, 1),
            RestartDecision::Quarantine => panic!("stable run must refill the budget"),
        }
        assert_eq!(t.crashes(), 2);
    }

    #[test]
    fn budget_zero_is_clamped_to_one_life() {
        let mut t = RestartTracker::new(policy(0));
        assert_eq!(t.on_crash(7, "b0"), RestartDecision::Quarantine);
    }
}
