//! # mcc-harness — supervised campaign runner
//!
//! The toolkit's experiment campaigns (fault-injection sweeps,
//! differential fuzzing trees, benchmark tables) are long, embarrassingly
//! parallel job lists whose *results* must be deterministic even when
//! their *execution* is not: jobs run on a worker pool, jobs can panic,
//! hang, or fail transiently, and the whole campaign can be killed at any
//! byte. This crate supplies the supervision layer that makes those
//! campaigns robust:
//!
//! * a configurable [`std::thread`] worker pool fed from a shared queue,
//!   every job behind a panic-containment boundary;
//! * per-job wall-clock **deadlines** enforced by the supervisor — an
//!   overdue attempt is condemned, a replacement worker is spawned, and
//!   the stalled thread is left to die quietly;
//! * **retry with exponential backoff + deterministic jitter**
//!   ([`backoff`]) up to a bounded attempt budget;
//! * a per-key **circuit breaker** ([`breaker`]) so one pathological
//!   (frontend, algorithm) combination is skipped-and-recorded instead of
//!   starving the campaign;
//! * a crash-only **journal** ([`journal`]): every resolved job is
//!   fsync'd to a JSONL log before it counts, and `--resume` replays the
//!   log, skips finished jobs, and completes to a bit-identical table;
//! * **chaos mode** ([`chaos`]): seeded injection of worker panics,
//!   deadline stalls, and a persistently failing victim key, plus a torn
//!   journal tail, to prove all of the above under fire.
//!
//! Determinism contract: the final [`CampaignReport::outcomes`] vector is
//! ordered by job index, and each job's cells are a pure function of the
//! job itself — so `--jobs 1` and `--jobs N` produce byte-identical
//! tables, and a killed-and-resumed campaign matches an uninterrupted
//! one. Scheduling noise (retries, kills, trips) lands only in
//! [`HarnessStats`], which is reported on stderr, never in the table.

pub mod backoff;
pub mod breaker;
pub mod chaos;
pub mod journal;
pub mod json;
pub mod pool;
pub mod restart;

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub use backoff::BackoffConfig;
pub use breaker::{Admit, Breaker, BreakerBank, BreakerConfig};
pub use chaos::{ChaosPlan, Fault};
pub use journal::{Header, JobRecord, JobStatus, Journal, JournalError};
pub use pool::{PoolHandle, Task, TaskOutcome, WorkerPool};
pub use restart::{RestartDecision, RestartPolicy, RestartTracker};

/// SplitMix64 — the toolkit's standard seedable mixer, shared by backoff
/// jitter, chaos decisions, the load generator, and the routing ring.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shared hash behind backoff jitter and chaos decisions: a pure
/// function of `(campaign seed, job id, attempt)`.
pub(crate) fn backoff_hash(seed: u64, job_id: &str, attempt: u32) -> u64 {
    splitmix64(seed ^ journal::fnv1a(job_id.as_bytes()) ^ u64::from(attempt))
}

/// Fingerprint of an ordered job-id list, stored in the journal header so
/// a resume against a different job set is rejected instead of replayed.
pub fn fingerprint<'a>(ids: impl Iterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for &b in id.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One unit of campaign work.
///
/// The closure must be a *pure* function of the job (plus whatever it
/// captured at construction): the harness may run it on any worker, may
/// run it more than once (retries), and relies on every successful run
/// returning the same cells.
pub struct Job {
    /// Stable identifier, unique within the campaign (`"e9/qsort/ecc"`).
    pub id: String,
    /// Circuit-breaker key: jobs sharing a key share a breaker
    /// (`"simpl"`, `"qsort"`, ...).
    pub key: String,
    /// The work: returns the job's table-row cells, or an error message.
    pub run: Box<dyn Fn() -> Result<Vec<String>, String> + Send + Sync>,
}

impl Job {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        key: impl Into<String>,
        run: impl Fn() -> Result<Vec<String>, String> + Send + Sync + 'static,
    ) -> Job {
        Job {
            id: id.into(),
            key: key.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// Campaign-wide supervision tuning.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Campaign name; written to the journal header.
    pub campaign: String,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-attempt wall-clock deadline; `None` disables condemnation.
    pub deadline: Option<Duration>,
    /// Attempt budget per job (retries + 1; clamped to at least 1).
    pub attempts: u32,
    /// Retry backoff tuning.
    pub backoff: BackoffConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Campaign seed: drives backoff jitter and the chaos plan.
    pub seed: u64,
    /// Inject harness-level faults (see [`chaos`]).
    pub chaos: bool,
}

impl HarnessConfig {
    /// A configuration for plain in-process batch fan-out (the `exp_all`
    /// driver): trusted local jobs, so no deadline condemnation and a
    /// single attempt — a failure is a bug to report, not to retry.
    pub fn batch(campaign: &str, workers: usize) -> Self {
        HarnessConfig {
            campaign: campaign.to_string(),
            workers,
            deadline: None,
            attempts: 1,
            ..Default::default()
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            campaign: "campaign".to_string(),
            workers: 4,
            deadline: Some(Duration::from_secs(30)),
            attempts: 3,
            backoff: BackoffConfig::default(),
            breaker: BreakerConfig::default(),
            seed: 1,
            chaos: false,
        }
    }
}

/// One job's final, journaled outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's id.
    pub id: String,
    /// How it ended.
    pub status: JobStatus,
    /// Attempts consumed (0 when skipped).
    pub attempts: u32,
    /// Failure/skip reason (empty on success).
    pub error: String,
    /// Table-row cells (empty unless `status == Ok`).
    pub cells: Vec<String>,
}

/// Supervision counters — stderr material, never table material.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Attempts dispatched to workers this run.
    pub executed: u64,
    /// Outcomes recovered from the journal instead of executed.
    pub resumed: u64,
    /// Jobs resolved Ok this run.
    pub ok: u64,
    /// Jobs resolved Failed this run.
    pub failed: u64,
    /// Jobs resolved Skipped (open breaker) this run.
    pub skipped: u64,
    /// Retries scheduled after failed attempts.
    pub retries: u64,
    /// Attempts condemned for exceeding the deadline.
    pub deadline_kills: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Worker panics contained (includes chaos-injected ones).
    pub worker_panics: u64,
    /// Chaos faults injected.
    pub chaos_faults: u64,
}

/// A finished campaign: outcomes in job-index order plus the counters.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One outcome per input job, in input order — the determinism
    /// anchor: identical regardless of worker count or resume history.
    pub outcomes: Vec<JobOutcome>,
    /// Supervision counters for this run.
    pub stats: HarnessStats,
    /// Breaker keys with skipped jobs — the degraded combinations.
    pub degraded: Vec<String>,
}

impl CampaignReport {
    /// A human-readable supervision summary (for stderr).
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "campaign: {} ok, {} failed, {} skipped ({} resumed from journal)\n\
             supervision: {} attempts, {} retries, {} deadline kills, {} panics contained, {} breaker trips",
            s.ok, s.failed, s.skipped, s.resumed,
            s.executed, s.retries, s.deadline_kills, s.worker_panics, s.breaker_trips,
        );
        if s.chaos_faults > 0 {
            out.push_str(&format!("\nchaos: {} faults injected", s.chaos_faults));
        }
        if !self.degraded.is_empty() {
            out.push_str(&format!(
                "\ndegraded keys (breaker open): {}",
                self.degraded.join(", ")
            ));
        }
        out
    }
}

/// Campaign-level errors.
#[derive(Debug)]
pub enum HarnessError {
    /// Journal I/O or integrity trouble.
    Journal(JournalError),
    /// Invalid campaign setup (duplicate job ids, ...).
    Config(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Journal(e) => write!(f, "{e}"),
            HarnessError::Config(s) => write!(f, "campaign config: {s}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<JournalError> for HarnessError {
    fn from(e: JournalError) -> Self {
        HarnessError::Journal(e)
    }
}

// ------------------------------------------------------ the supervisor ----

/// An attempt in flight.
#[derive(Debug, Clone, Copy)]
struct Flight {
    job_idx: usize,
    attempt: u32,
    started: Instant,
}

/// Runs a campaign to completion under full supervision.
///
/// Jobs execute on `cfg.workers` threads; each resolved job is fsync'd to
/// the journal at `journal_path` before it counts. With `resume` set and
/// an existing journal, recovered outcomes are final and only the
/// remaining jobs execute; the returned table is identical to an
/// uninterrupted run. See the crate docs for the determinism contract.
///
/// # Errors
///
/// [`HarnessError::Config`] on duplicate job ids;
/// [`HarnessError::Journal`] when the journal cannot be created, fails
/// integrity checks, or describes a different campaign.
pub fn run_campaign(
    jobs: Vec<Job>,
    cfg: &HarnessConfig,
    journal_path: &Path,
    resume: bool,
) -> Result<CampaignReport, HarnessError> {
    let jobs = Arc::new(jobs);
    let mut index_of: HashMap<String, usize> = HashMap::new();
    for (i, j) in jobs.iter().enumerate() {
        if index_of.insert(j.id.clone(), i).is_some() {
            return Err(HarnessError::Config(format!("duplicate job id `{}`", j.id)));
        }
    }
    let header = Header {
        campaign: cfg.campaign.clone(),
        seed: cfg.seed,
        jobs: jobs.len() as u64,
        fingerprint: fingerprint(jobs.iter().map(|j| j.id.as_str())),
    };

    let mut stats = HarnessStats::default();
    let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();

    let (mut journal, recovered) = if resume && journal_path.exists() {
        Journal::recover(journal_path, &header)?
    } else {
        (Journal::create(journal_path, &header)?, Vec::new())
    };
    for rec in recovered {
        let Some(&idx) = index_of.get(&rec.id) else {
            return Err(HarnessError::Journal(JournalError::Mismatch(format!(
                "journaled job `{}` is not in this campaign",
                rec.id
            ))));
        };
        if outcomes[idx].is_none() {
            outcomes[idx] = Some(JobOutcome {
                id: rec.id,
                status: rec.status,
                attempts: rec.attempts,
                error: rec.error,
                cells: rec.cells,
            });
            stats.resumed += 1;
        }
    }

    let waiting: VecDeque<usize> = (0..jobs.len()).filter(|&i| outcomes[i].is_none()).collect();
    let chaos_plan = cfg.chaos.then(|| {
        Arc::new(ChaosPlan::new(
            cfg.seed,
            &jobs.iter().map(|j| j.key.clone()).collect::<Vec<_>>(),
        ))
    });

    if !waiting.is_empty() {
        supervise(
            Arc::clone(&jobs),
            cfg,
            chaos_plan,
            waiting,
            &mut journal,
            &mut outcomes,
            &mut stats,
        )?;
    }

    // Chaos epilogue: leave a torn half-record at the tail, exactly what
    // a kill mid-append produces, so the next resume proves recovery.
    if cfg.chaos {
        journal.append_torn(&JobRecord {
            seq: u64::MAX,
            id: "chaos/torn-tail".to_string(),
            status: JobStatus::Failed,
            attempts: 0,
            error: "simulated crash mid-append".to_string(),
            cells: vec![],
        })?;
    }

    let mut degraded: Vec<String> = outcomes
        .iter()
        .flatten()
        .zip(jobs.iter())
        .filter(|(o, _)| o.status == JobStatus::Skipped)
        .map(|(_, j)| j.key.clone())
        .collect();
    degraded.sort();
    degraded.dedup();

    Ok(CampaignReport {
        outcomes: outcomes.into_iter().map(|o| o.unwrap()).collect(),
        stats,
        degraded,
    })
}

/// How often the supervisor wakes to promote retries and scan deadlines.
const SUPERVISOR_TICK: Duration = Duration::from_millis(5);

/// The supervisor proper: owns the journal, the breaker bank, the retry
/// schedule, and the deadline scan. Single-threaded by design — workers
/// compute, the supervisor decides and records.
fn supervise(
    jobs: Arc<Vec<Job>>,
    cfg: &HarnessConfig,
    chaos_plan: Option<Arc<ChaosPlan>>,
    mut waiting: VecDeque<usize>,
    journal: &mut Journal,
    outcomes: &mut [Option<JobOutcome>],
    stats: &mut HarnessStats,
) -> Result<(), HarnessError> {
    let workers = cfg.workers.max(1).min(waiting.len().max(1));
    let attempts_budget = cfg.attempts.max(1);
    let stall = match cfg.deadline {
        Some(d) => d + d / 2 + Duration::from_millis(100),
        None => Duration::from_millis(50),
    };

    let mut pool: WorkerPool<Result<Vec<String>, String>> = WorkerPool::new(workers);

    let mut breakers = BreakerBank::new(cfg.breaker);
    let mut tick: u64 = 0; // logical time: one tick per attempt resolution
    let mut next_token: u64 = 0;
    let mut in_flight: HashMap<u64, Flight> = HashMap::new();
    // Tokens whose dispatched attempt carries a chaos-injected fault.
    let mut chaos_tokens: HashSet<u64> = HashSet::new();
    // Retries waiting out their backoff: (due, job index, next attempt).
    let mut retry_at: Vec<(Instant, usize, u32)> = Vec::new();
    let mut remaining = waiting.len();

    // Resolves one job: record the outcome, fsync the journal, advance
    // logical time.
    macro_rules! resolve {
        ($idx:expr, $status:expr, $attempts:expr, $error:expr, $cells:expr) => {{
            let idx: usize = $idx;
            let outcome = JobOutcome {
                id: jobs[idx].id.clone(),
                status: $status,
                attempts: $attempts,
                error: $error,
                cells: $cells,
            };
            journal.append(JobRecord {
                seq: 0,
                id: outcome.id.clone(),
                status: outcome.status,
                attempts: outcome.attempts,
                error: outcome.error.clone(),
                cells: outcome.cells.clone(),
            })?;
            outcomes[idx] = Some(outcome);
            remaining -= 1;
        }};
    }

    // Handles one failed attempt: count it against the breaker, then
    // either schedule a retry or resolve the job as failed.
    macro_rules! attempt_failed {
        ($idx:expr, $attempt:expr, $msg:expr) => {{
            let idx: usize = $idx;
            let attempt: u32 = $attempt;
            let msg: String = $msg;
            tick += 1;
            if breakers.on_failure(&jobs[idx].key, tick) {
                stats.breaker_trips += 1;
            }
            if attempt < attempts_budget {
                let wait = backoff::delay(&cfg.backoff, cfg.seed, &jobs[idx].id, attempt);
                retry_at.push((Instant::now() + wait, idx, attempt + 1));
                stats.retries += 1;
            } else {
                stats.failed += 1;
                resolve!(idx, JobStatus::Failed, attempt, msg, Vec::new());
            }
        }};
    }

    while remaining > 0 {
        // Dispatch: due retries first (they have waited), then fresh
        // jobs, gated per key by the breaker.
        loop {
            if in_flight.len() >= workers {
                break;
            }
            let now = Instant::now();
            let due = retry_at
                .iter()
                .position(|(at, _, _)| *at <= now)
                .map(|i| retry_at.remove(i));
            let (idx, attempt) = match due {
                Some((_, idx, attempt)) => (idx, attempt),
                None => match waiting.pop_front() {
                    Some(idx) => (idx, 1),
                    None => break,
                },
            };
            match breakers.admit(&jobs[idx].key, tick) {
                Admit::Execute | Admit::Probe => {
                    let token = next_token;
                    next_token += 1;
                    in_flight.insert(
                        token,
                        Flight {
                            job_idx: idx,
                            attempt,
                            started: Instant::now(),
                        },
                    );
                    stats.executed += 1;
                    // Chaos faults are a pure function of (seed, id, key,
                    // attempt), so deciding them here at dispatch — and
                    // baking them into the task — keeps the pool itself
                    // policy-free.
                    let fault = chaos_plan
                        .as_ref()
                        .and_then(|p| p.fault_for(&jobs[idx].id, &jobs[idx].key, attempt));
                    if fault.is_some() {
                        chaos_tokens.insert(token);
                    }
                    let task: Task<Result<Vec<String>, String>> = match fault {
                        Some(Fault::Panic) => {
                            Box::new(|| panic!("chaos: injected worker panic"))
                        }
                        Some(Fault::Stall) => Box::new(move || {
                            std::thread::sleep(stall);
                            Err("chaos: stalled past the deadline".to_string())
                        }),
                        Some(Fault::Fail) => {
                            Box::new(|| Err("chaos: injected failure on victim key".to_string()))
                        }
                        None => {
                            let jobs = Arc::clone(&jobs);
                            Box::new(move || (jobs[idx].run)())
                        }
                    };
                    pool.submit(token, task);
                }
                Admit::Reject => {
                    tick += 1;
                    stats.skipped += 1;
                    resolve!(
                        idx,
                        JobStatus::Skipped,
                        attempt - 1,
                        format!("circuit breaker open for key `{}`", jobs[idx].key),
                        Vec::new()
                    );
                }
            }
        }

        // Collect one result (or time out and fall through to the
        // deadline scan / retry promotion).
        match pool.recv_timeout(SUPERVISOR_TICK) {
            Ok((token, outcome)) => {
                // A result for a condemned token raced past the check in
                // its worker; the condemnation already resolved it.
                if let Some(f) = in_flight.remove(&token) {
                    let was_chaos = chaos_tokens.remove(&token);
                    match outcome {
                        TaskOutcome::Done(Ok(cells)) => {
                            tick += 1;
                            breakers.on_success(&jobs[f.job_idx].key);
                            stats.ok += 1;
                            resolve!(
                                f.job_idx,
                                JobStatus::Ok,
                                f.attempt,
                                String::new(),
                                cells
                            );
                        }
                        TaskOutcome::Done(Err(msg)) => {
                            if was_chaos {
                                stats.chaos_faults += 1;
                            }
                            attempt_failed!(f.job_idx, f.attempt, msg);
                        }
                        TaskOutcome::Panicked(text) => {
                            stats.worker_panics += 1;
                            if was_chaos {
                                stats.chaos_faults += 1;
                            }
                            attempt_failed!(
                                f.job_idx,
                                f.attempt,
                                format!("panic contained: {text}")
                            );
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All workers died without reporting — should be
                // impossible (panics are contained), but fail loudly
                // rather than spin forever.
                return Err(HarnessError::Config(
                    "worker pool disconnected mid-campaign".to_string(),
                ));
            }
        }

        // Deadline scan: condemn overdue attempts. The stalled worker
        // keeps running (threads cannot be safely killed); it will see
        // its token in the condemned set when it finally finishes and
        // exit without reporting. A fresh worker replaces it now.
        if let Some(deadline) = cfg.deadline {
            let now = Instant::now();
            let overdue: Vec<u64> = in_flight
                .iter()
                .filter(|(_, f)| now.duration_since(f.started) > deadline)
                .map(|(t, _)| *t)
                .collect();
            for token in overdue {
                let f = in_flight.remove(&token).unwrap();
                chaos_tokens.remove(&token);
                stats.deadline_kills += 1;
                if chaos_plan.is_some() {
                    // Chaos stalls are injected faults; count them here
                    // because the condemned worker never reports.
                    stats.chaos_faults += 1;
                }
                pool.condemn(token);
                attempt_failed!(
                    f.job_idx,
                    f.attempt,
                    format!("deadline exceeded ({}ms): attempt condemned", deadline.as_millis())
                );
            }
        }
    }

    // Shutdown: wake everyone; idle workers exit on the flag. Condemned
    // workers may still be inside a stalled job — the pool drops their
    // handles rather than join, so shutdown never inherits the stall.
    pool.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mcc-harness-lib-tests");
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn ok_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::new(format!("job/{i}"), format!("key{}", i % 3), move || {
                    Ok(vec![format!("cell-{i}"), format!("{}", i * i)])
                })
            })
            .collect()
    }

    fn cfg(name: &str, workers: usize) -> HarnessConfig {
        HarnessConfig {
            campaign: name.to_string(),
            workers,
            deadline: Some(Duration::from_secs(5)),
            attempts: 3,
            backoff: BackoffConfig {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(8),
            },
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_worker_count() {
        let p1 = tmp("order-1");
        let p4 = tmp("order-4");
        let r1 = run_campaign(ok_jobs(12), &cfg("t", 1), &p1, false).unwrap();
        let r4 = run_campaign(ok_jobs(12), &cfg("t", 4), &p4, false).unwrap();
        assert_eq!(r1.outcomes, r4.outcomes, "worker count must not affect the table");
        assert_eq!(r1.outcomes[5].cells, vec!["cell-5".to_string(), "25".to_string()]);
        assert_eq!(r4.stats.ok, 12);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn flaky_job_is_retried_to_success() {
        let p = tmp("flaky");
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let jobs = vec![Job::new("flaky", "k", move || {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(vec!["survived".to_string()])
            }
        })];
        let r = run_campaign(jobs, &cfg("t", 2), &p, false).unwrap();
        assert_eq!(r.outcomes[0].status, JobStatus::Ok);
        assert_eq!(r.outcomes[0].attempts, 3);
        assert_eq!(r.stats.retries, 2);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn attempt_budget_bounds_retries() {
        let p = tmp("budget");
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let jobs = vec![Job::new("doomed", "k", move || {
            t.fetch_add(1, Ordering::SeqCst);
            Err("always".to_string())
        })];
        let r = run_campaign(jobs, &cfg("t", 2), &p, false).unwrap();
        assert_eq!(r.outcomes[0].status, JobStatus::Failed);
        assert_eq!(r.outcomes[0].error, "always");
        assert_eq!(tries.load(Ordering::SeqCst), 3, "attempts = retries + 1");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn panicking_job_is_contained_and_fails_cleanly() {
        let p = tmp("panic");
        let jobs = vec![
            Job::new("boom", "k", || panic!("kaboom")),
            Job::new("fine", "k2", || Ok(vec!["ok".to_string()])),
        ];
        let r = run_campaign(jobs, &cfg("t", 2), &p, false).unwrap();
        assert_eq!(r.outcomes[0].status, JobStatus::Failed);
        assert!(r.outcomes[0].error.contains("kaboom"));
        assert_eq!(r.outcomes[1].status, JobStatus::Ok);
        assert_eq!(r.stats.worker_panics, 3, "every attempt panicked");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pathological_key_trips_breaker_and_skips_rest() {
        let p = tmp("breaker");
        // 8 jobs on one bad key, attempts=2, threshold=3: the first few
        // jobs burn through the threshold, the tail is skipped.
        let mut c = cfg("t", 1);
        c.attempts = 2;
        c.breaker = BreakerConfig {
            threshold: 3,
            cooldown: 1_000_000, // never half-opens within this run
        };
        let jobs: Vec<Job> = (0..8)
            .map(|i| Job::new(format!("bad/{i}"), "badkey", || Err("broken".to_string())))
            .collect();
        let r = run_campaign(jobs, &c, &p, false).unwrap();
        assert!(r.stats.breaker_trips >= 1);
        assert!(r.stats.skipped >= 1, "tail jobs must be skipped, not retried");
        assert_eq!(r.stats.skipped + r.stats.failed, 8);
        assert_eq!(r.degraded, vec!["badkey".to_string()]);
        let skipped: Vec<&JobOutcome> = r
            .outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Skipped)
            .collect();
        assert!(skipped.iter().all(|o| o.error.contains("circuit breaker open")));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn deadline_condemns_stalled_attempt_and_campaign_finishes() {
        let p = tmp("deadline");
        let mut c = cfg("t", 2);
        c.deadline = Some(Duration::from_millis(40));
        c.attempts = 2;
        let stalls = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&stalls);
        let jobs = vec![
            Job::new("slow", "k", move || {
                if s.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(vec!["eventually".to_string()])
            }),
            Job::new("fast", "k2", || Ok(vec!["quick".to_string()])),
        ];
        let r = run_campaign(jobs, &c, &p, false).unwrap();
        assert!(r.stats.deadline_kills >= 1, "first attempt must be condemned");
        assert_eq!(r.outcomes[0].status, JobStatus::Ok, "retry succeeds");
        assert_eq!(r.outcomes[0].cells, vec!["eventually".to_string()]);
        assert_eq!(r.outcomes[1].status, JobStatus::Ok);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn resume_skips_journaled_jobs_and_matches_fresh_run() {
        let p_fresh = tmp("resume-fresh");
        let p_resumed = tmp("resume-cut");
        let c = cfg("t", 2);
        let fresh = run_campaign(ok_jobs(10), &c, &p_fresh, false).unwrap();

        // Simulate a kill at ~50%: journal with only the first half of
        // the records (plus a torn tail byte-slice of the next line).
        let full = std::fs::read_to_string(&p_fresh).unwrap();
        let lines: Vec<&str> = full.split_inclusive('\n').collect();
        let keep = 1 + 5; // header + 5 records
        let mut cut: String = lines[..keep].concat();
        cut.push_str(&lines[keep][..lines[keep].len() / 2]); // torn tail
        std::fs::write(&p_resumed, &cut).unwrap();

        let ran = Arc::new(AtomicU32::new(0));
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Job::new(format!("job/{i}"), format!("key{}", i % 3), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(vec![format!("cell-{i}"), format!("{}", i * i)])
                })
            })
            .collect();
        let resumed = run_campaign(jobs, &c, &p_resumed, true).unwrap();
        assert_eq!(resumed.stats.resumed, 5, "torn record dropped, 5 kept");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            5,
            "journaled jobs must not re-execute"
        );
        assert_eq!(resumed.outcomes, fresh.outcomes, "resumed == fresh");
        std::fs::remove_file(&p_fresh).ok();
        std::fs::remove_file(&p_resumed).ok();
    }

    #[test]
    fn resume_against_different_job_set_is_rejected() {
        let p = tmp("resume-mismatch");
        let c = cfg("t", 1);
        run_campaign(ok_jobs(4), &c, &p, false).unwrap();
        let other: Vec<Job> = (0..4)
            .map(|i| Job::new(format!("other/{i}"), "k", || Ok(vec![])))
            .collect();
        match run_campaign(other, &c, &p, true) {
            Err(HarnessError::Journal(JournalError::Mismatch(_))) => {}
            o => panic!("expected fingerprint mismatch, got {o:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn chaos_campaign_completes_with_faults_counted_and_tail_torn() {
        let p = tmp("chaos");
        let mut c = cfg("t", 4);
        c.chaos = true;
        c.deadline = Some(Duration::from_millis(60));
        c.attempts = 2;
        c.breaker = BreakerConfig {
            threshold: 4,
            cooldown: 1_000_000,
        };
        let jobs: Vec<Job> = (0..12)
            .map(|i| {
                Job::new(format!("job/{i}"), format!("key{}", i % 3), move || {
                    Ok(vec![format!("v{i}")])
                })
            })
            .collect();
        let r = run_campaign(jobs, &c, &p, false).unwrap();
        assert!(r.stats.chaos_faults > 0, "chaos must inject something");
        assert!(
            r.stats.failed + r.stats.skipped > 0,
            "the victim key must degrade"
        );
        assert!(!r.degraded.is_empty() || r.stats.breaker_trips > 0);
        // The torn tail is present and a resume recovers cleanly past it.
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(!text.ends_with('\n'), "chaos leaves a torn final line");
        let ids: Vec<String> = (0..12).map(|i| format!("job/{i}")).collect();
        let header = Header {
            campaign: c.campaign.clone(),
            seed: c.seed,
            jobs: 12,
            fingerprint: fingerprint(ids.iter().map(|s| s.as_str())),
        };
        let (_, recs) = Journal::recover(&p, &header).unwrap();
        assert_eq!(recs.len(), 12, "all real records survive the torn tail");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn duplicate_job_ids_are_rejected() {
        let p = tmp("dup");
        let jobs = vec![
            Job::new("same", "k", || Ok(vec![])),
            Job::new("same", "k", || Ok(vec![])),
        ];
        match run_campaign(jobs, &cfg("t", 1), &p, false) {
            Err(HarnessError::Config(msg)) => assert!(msg.contains("duplicate")),
            o => panic!("expected config error, got {o:?}"),
        }
        std::fs::remove_file(&p).ok();
    }
}
