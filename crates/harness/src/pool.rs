//! The shared worker pool: panic-contained task execution with the
//! condemn-and-replace protocol.
//!
//! Extracted from the campaign supervisor so that long-running services
//! (`mcc serve`) and one-shot campaigns (`run_campaign`) dispatch work
//! through the same machinery. The pool knows nothing about jobs,
//! retries, breakers, or journals — it runs opaque closures and reports
//! `(token, outcome)` pairs; all policy lives in the caller:
//!
//! * every task runs behind [`std::panic::catch_unwind`], so a panicking
//!   task is reported, never fatal;
//! * a **condemned** token ([`WorkerPool::condemn`]) marks an attempt the
//!   caller has given up on (deadline exceeded): a replacement worker is
//!   spawned immediately, and when the stalled thread eventually finishes
//!   it notices the condemnation and exits without reporting — threads
//!   cannot be killed safely, but they can be made irrelevant;
//! * [`WorkerPool::shutdown`] wakes idle workers and joins them, unless a
//!   condemned thread may still be stalled inside a task, in which case
//!   handles are dropped so shutdown never inherits the stall.

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of pool work: an opaque closure producing the caller's result
/// type.
pub type Task<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// How one task ended.
#[derive(Debug)]
pub enum TaskOutcome<T> {
    /// The task returned normally.
    Done(T),
    /// The task panicked; the payload's text is carried along.
    Panicked(String),
}

/// Renders a panic payload as text (best effort).
pub fn panic_text(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The ready queue plus the shutdown flag, guarded by one lock.
type ReadyQueue<T> = Mutex<(VecDeque<(u64, Task<T>)>, bool)>;

struct PoolShared<T: Send> {
    /// (ready queue, shutdown flag) under one lock, signalled by `cv`.
    queue: ReadyQueue<T>,
    cv: Condvar,
    /// Tokens of condemned attempts: a worker finishing one of these
    /// exits without reporting (its replacement is already running).
    condemned: Mutex<HashSet<u64>>,
}

/// A fixed-size pool of worker threads executing caller-tokenized tasks.
pub struct WorkerPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
    tx: mpsc::Sender<(u64, TaskOutcome<T>)>,
    rx: mpsc::Receiver<(u64, TaskOutcome<T>)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// A cloneable, thread-safe submission handle onto a [`WorkerPool`].
///
/// The pool itself owns the result [`mpsc::Receiver`] and so cannot be
/// shared across threads; a handle carries only the queue side, letting
/// many producers (`mcc serve` connection threads) feed one pool whose
/// results a single supervisor drains.
pub struct PoolHandle<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
}

impl<T: Send + 'static> Clone for PoolHandle<T> {
    fn clone(&self) -> Self {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> PoolHandle<T> {
    /// Enqueues one task under a caller-chosen token (see
    /// [`WorkerPool::submit`]).
    pub fn submit(&self, token: u64, task: Task<T>) {
        {
            let mut g = self.shared.queue.lock().unwrap();
            g.0.push_back((token, task));
        }
        self.shared.cv.notify_one();
    }
}

fn spawn_worker<T: Send + 'static>(
    shared: Arc<PoolShared<T>>,
    tx: mpsc::Sender<(u64, TaskOutcome<T>)>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        let (token, task) = {
            let mut g = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = g.0.pop_front() {
                    break t;
                }
                if g.1 {
                    return;
                }
                g = shared.cv.wait(g).unwrap();
            }
        };
        let outcome = match catch_unwind(AssertUnwindSafe(task)) {
            Ok(v) => TaskOutcome::Done(v),
            Err(p) => TaskOutcome::Panicked(panic_text(p.as_ref())),
        };
        // A condemned attempt already has a replacement worker and a
        // recorded failure; this thread's job now is only to disappear.
        if shared.condemned.lock().unwrap().remove(&token) {
            return;
        }
        if tx.send((token, outcome)).is_err() {
            return;
        }
    })
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool<T> {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            condemned: Mutex::new(HashSet::new()),
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers.max(1))
            .map(|_| spawn_worker(Arc::clone(&shared), tx.clone()))
            .collect();
        WorkerPool {
            shared,
            tx,
            rx,
            handles,
        }
    }

    /// Enqueues one task under a caller-chosen token. Tokens must be
    /// unique among in-flight tasks; reuse after resolution is fine.
    pub fn submit(&self, token: u64, task: Task<T>) {
        {
            let mut g = self.shared.queue.lock().unwrap();
            g.0.push_back((token, task));
        }
        self.shared.cv.notify_one();
    }

    /// A cloneable submission handle for producer threads.
    pub fn handle(&self) -> PoolHandle<T> {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Waits up to `timeout` for one task outcome.
    ///
    /// # Errors
    ///
    /// Propagates the underlying channel errors: `Timeout` when nothing
    /// resolved in time, `Disconnected` when every worker died (should be
    /// impossible — panics are contained).
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<(u64, TaskOutcome<T>), mpsc::RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Condemns an in-flight attempt: its eventual result will be
    /// discarded, and a replacement worker is spawned immediately so the
    /// pool's capacity is unaffected by the stalled thread.
    pub fn condemn(&mut self, token: u64) {
        self.shared.condemned.lock().unwrap().insert(token);
        self.handles
            .push(spawn_worker(Arc::clone(&self.shared), self.tx.clone()));
    }

    /// Shuts the pool down: wakes idle workers, which exit on the flag.
    /// Workers are joined unless a condemned thread may still be stalled
    /// inside a task — then handles are dropped, so shutdown never
    /// inherits the stall.
    pub fn shutdown(self) {
        {
            let mut g = self.shared.queue.lock().unwrap();
            g.1 = true;
        }
        self.shared.cv.notify_all();
        let condemned_empty = self.shared.condemned.lock().unwrap().is_empty();
        if condemned_empty {
            for h in self.handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tasks_and_reports_by_token() {
        let pool: WorkerPool<u64> = WorkerPool::new(3);
        for i in 0..10u64 {
            pool.submit(i, Box::new(move || i * i));
        }
        let mut got = std::collections::HashMap::new();
        for _ in 0..10 {
            let (tok, out) = pool.recv_timeout(Duration::from_secs(5)).unwrap();
            match out {
                TaskOutcome::Done(v) => {
                    got.insert(tok, v);
                }
                TaskOutcome::Panicked(p) => panic!("unexpected panic: {p}"),
            }
        }
        assert_eq!(got.len(), 10);
        assert_eq!(got[&7], 49);
        pool.shutdown();
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let pool: WorkerPool<()> = WorkerPool::new(1);
        pool.submit(1, Box::new(|| panic!("kaboom")));
        pool.submit(2, Box::new(|| ()));
        let mut saw_panic = false;
        let mut saw_ok = false;
        for _ in 0..2 {
            match pool.recv_timeout(Duration::from_secs(5)).unwrap() {
                (1, TaskOutcome::Panicked(msg)) => {
                    assert!(msg.contains("kaboom"));
                    saw_panic = true;
                }
                (2, TaskOutcome::Done(())) => saw_ok = true,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_panic && saw_ok);
        pool.shutdown();
    }

    #[test]
    fn condemned_task_never_reports_and_replacement_serves() {
        let mut pool: WorkerPool<&'static str> = WorkerPool::new(1);
        pool.submit(
            1,
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(150));
                "stalled"
            }),
        );
        // Condemn the stalled attempt; the replacement worker picks up
        // the next task even though the first thread is still sleeping.
        pool.condemn(1);
        pool.submit(2, Box::new(|| "fresh"));
        let (tok, out) = pool.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(tok, 2);
        assert!(matches!(out, TaskOutcome::Done("fresh")));
        // The condemned token must never surface, even after it wakes.
        match pool.recv_timeout(Duration::from_millis(400)) {
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            other => panic!("condemned result leaked: {other:?}"),
        }
        pool.shutdown();
    }
}
