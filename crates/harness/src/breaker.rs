//! Per-key circuit breakers.
//!
//! A campaign fans many jobs over a small set of (frontend, algorithm)
//! style keys. When one key is pathological — every job on it panics or
//! times out — retrying each of its jobs to exhaustion starves the rest
//! of the campaign. The breaker watches consecutive failures per key and
//! trips after a threshold: subsequent jobs on that key are *skipped*
//! (recorded as degraded results, not silently dropped). After a
//! cool-down the breaker admits a single probe; a probe success closes
//! the breaker, a probe failure re-opens it.
//!
//! Time is logical, not wall-clock: the supervisor advances one tick per
//! job resolution, so breaker behaviour is deterministic and testable.

use std::collections::HashMap;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures on one key that trip its breaker.
    pub threshold: u32,
    /// Logical ticks an open breaker waits before admitting a probe.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: 8,
        }
    }
}

/// One key's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Normal operation; counts consecutive failures.
    Closed { consecutive: u32 },
    /// Tripped at `since`; rejects until the cool-down elapses.
    Open { since: u64 },
    /// Cool-down elapsed; exactly one probe job is in flight.
    HalfOpen,
}

/// What the breaker says about dispatching a job on some key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed: run the job normally.
    Execute,
    /// Half-open: run the job as the single probe.
    Probe,
    /// Open (or a probe already in flight): skip the job as degraded.
    Reject,
}

/// The campaign's breaker bank, one state machine per key.
#[derive(Debug, Default)]
pub struct BreakerBank {
    cfg: BreakerConfig,
    states: HashMap<String, State>,
    /// Total trips, for the supervision summary.
    trips: u64,
}

impl BreakerBank {
    /// A bank with the given tuning and all breakers closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerBank {
            cfg,
            states: HashMap::new(),
            trips: 0,
        }
    }

    /// Total times any breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Keys whose breaker is currently open or half-open, sorted.
    pub fn degraded_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .states
            .iter()
            .filter(|(_, s)| !matches!(s, State::Closed { .. }))
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Asks whether a job on `key` may run at logical time `now`.
    /// Transitions Open → HalfOpen when the cool-down has elapsed; the
    /// caller must report the probe's outcome via
    /// [`on_success`](Self::on_success) / [`on_failure`](Self::on_failure).
    pub fn admit(&mut self, key: &str, now: u64) -> Admit {
        let state = self
            .states
            .entry(key.to_string())
            .or_insert(State::Closed { consecutive: 0 });
        match *state {
            State::Closed { .. } => Admit::Execute,
            State::Open { since } => {
                if now.saturating_sub(since) >= self.cfg.cooldown {
                    *state = State::HalfOpen;
                    Admit::Probe
                } else {
                    Admit::Reject
                }
            }
            // One probe at a time: while it is in flight, everything
            // else on the key stays rejected.
            State::HalfOpen => Admit::Reject,
        }
    }

    /// Records a successful job on `key`. Closes a half-open breaker and
    /// resets the failure streak.
    pub fn on_success(&mut self, key: &str) {
        self.states
            .insert(key.to_string(), State::Closed { consecutive: 0 });
    }

    /// Records one failed attempt on `key` at logical time `now` (every
    /// attempt counts, so a retry storm on one key trips its breaker
    /// even when each job still has budget left). Returns `true` when
    /// this failure trips the breaker open.
    pub fn on_failure(&mut self, key: &str, now: u64) -> bool {
        let state = self
            .states
            .entry(key.to_string())
            .or_insert(State::Closed { consecutive: 0 });
        match *state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.threshold {
                    *state = State::Open { since: now };
                    self.trips += 1;
                    true
                } else {
                    *state = State::Closed { consecutive };
                    false
                }
            }
            // Failed probe: back to open, cool-down restarts.
            State::HalfOpen => {
                *state = State::Open { since: now };
                self.trips += 1;
                true
            }
            State::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BreakerBank {
        BreakerBank::new(BreakerConfig {
            threshold: 3,
            cooldown: 10,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = bank();
        assert!(!b.on_failure("k", 0));
        assert!(!b.on_failure("k", 1));
        assert_eq!(b.admit("k", 2), Admit::Execute, "still closed below threshold");
        assert!(b.on_failure("k", 2), "third consecutive failure trips");
        assert_eq!(b.admit("k", 3), Admit::Reject);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.degraded_keys(), vec!["k".to_string()]);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = bank();
        b.on_failure("k", 0);
        b.on_failure("k", 1);
        b.on_success("k");
        assert!(!b.on_failure("k", 2));
        assert!(!b.on_failure("k", 3));
        assert_eq!(b.admit("k", 4), Admit::Execute, "streak restarted after success");
    }

    #[test]
    fn half_open_probe_after_cooldown_then_success_closes() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("k", t);
        }
        assert_eq!(b.admit("k", 5), Admit::Reject, "cool-down not elapsed");
        assert_eq!(b.admit("k", 12), Admit::Probe, "cool-down elapsed: one probe");
        assert_eq!(b.admit("k", 12), Admit::Reject, "only one probe in flight");
        b.on_success("k");
        assert_eq!(b.admit("k", 13), Admit::Execute, "probe success closes");
        assert!(b.degraded_keys().is_empty());
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("k", t);
        }
        assert_eq!(b.admit("k", 12), Admit::Probe);
        assert!(b.on_failure("k", 12), "failed probe counts as a trip");
        assert_eq!(b.admit("k", 13), Admit::Reject);
        assert_eq!(b.admit("k", 21), Admit::Reject, "cool-down restarted at 12");
        assert_eq!(b.admit("k", 22), Admit::Probe);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn keys_are_independent() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("bad", t);
        }
        assert_eq!(b.admit("bad", 4), Admit::Reject);
        assert_eq!(b.admit("good", 4), Admit::Execute);
        b.on_success("good");
        assert_eq!(b.degraded_keys(), vec!["bad".to_string()]);
    }
}
