//! Circuit breakers: a single [`Breaker`] state machine plus the
//! campaign's per-key [`BreakerBank`].
//!
//! A campaign fans many jobs over a small set of (frontend, algorithm)
//! style keys. When one key is pathological — every job on it panics or
//! times out — retrying each of its jobs to exhaustion starves the rest
//! of the campaign. The breaker watches consecutive failures per key and
//! trips after a threshold: subsequent jobs on that key are *skipped*
//! (recorded as degraded results, not silently dropped). After a
//! cool-down the breaker admits a single probe; a probe success closes
//! the breaker, a probe failure re-opens it.
//!
//! The same machine guards *backends* in `mcc route`: one standalone
//! [`Breaker`] per shard, fed by health probes and request outcomes, so
//! a dead or sick backend is rejected-fast and traffic fails over to its
//! ring successor until a probe succeeds.
//!
//! Time is logical, not wall-clock: the supervisor advances one tick per
//! job resolution (the router per recorded outcome), so breaker
//! behaviour is deterministic and testable.

use std::collections::HashMap;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures on one key that trip its breaker.
    pub threshold: u32,
    /// Logical ticks an open breaker waits before admitting a probe.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: 8,
        }
    }
}

/// One breaker's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Normal operation; counts consecutive failures.
    Closed { consecutive: u32 },
    /// Tripped at `since`; rejects until the cool-down elapses.
    Open { since: u64 },
    /// Cool-down elapsed; exactly one probe job is in flight.
    HalfOpen,
}

/// What the breaker says about dispatching a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed: run the job normally.
    Execute,
    /// Half-open: run the job as the single probe.
    Probe,
    /// Open (or a probe already in flight): skip the job as degraded.
    Reject,
}

/// One closed → open → half-open circuit breaker. The campaign bank
/// keys a map of these; `mcc route` holds one per backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: State,
    trips: u64,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: State::Closed { consecutive: 0 },
            trips: 0,
        }
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the breaker is closed (normal operation).
    pub fn is_closed(&self) -> bool {
        matches!(self.state, State::Closed { .. })
    }

    /// The state name (`closed` | `open` | `half-open`) for stats output.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// Asks whether a job may run at logical time `now`. Transitions
    /// Open → HalfOpen when the cool-down has elapsed; the caller must
    /// report the probe's outcome via [`on_success`](Self::on_success) /
    /// [`on_failure`](Self::on_failure).
    pub fn admit(&mut self, now: u64) -> Admit {
        match self.state {
            State::Closed { .. } => Admit::Execute,
            State::Open { since } => {
                if now.saturating_sub(since) >= self.cfg.cooldown {
                    self.state = State::HalfOpen;
                    Admit::Probe
                } else {
                    Admit::Reject
                }
            }
            // One probe at a time: while it is in flight, everything
            // else stays rejected.
            State::HalfOpen => Admit::Reject,
        }
    }

    /// Records a success. Closes a half-open breaker and resets the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.state = State::Closed { consecutive: 0 };
    }

    /// Records one failed attempt at logical time `now` (every attempt
    /// counts, so a retry storm trips the breaker even when each job
    /// still has budget left). Returns `true` when this failure trips
    /// the breaker open.
    pub fn on_failure(&mut self, now: u64) -> bool {
        match self.state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.threshold {
                    self.state = State::Open { since: now };
                    self.trips += 1;
                    true
                } else {
                    self.state = State::Closed { consecutive };
                    false
                }
            }
            // Failed probe: back to open, cool-down restarts.
            State::HalfOpen => {
                self.state = State::Open { since: now };
                self.trips += 1;
                true
            }
            State::Open { .. } => false,
        }
    }
}

/// The campaign's breaker bank, one state machine per key.
#[derive(Debug, Default)]
pub struct BreakerBank {
    cfg: BreakerConfig,
    states: HashMap<String, Breaker>,
}

impl BreakerBank {
    /// A bank with the given tuning and all breakers closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerBank {
            cfg,
            states: HashMap::new(),
        }
    }

    /// Total times any breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.states.values().map(Breaker::trips).sum()
    }

    /// Keys whose breaker is currently open or half-open, sorted.
    pub fn degraded_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .states
            .iter()
            .filter(|(_, b)| !b.is_closed())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    fn entry(&mut self, key: &str) -> &mut Breaker {
        if !self.states.contains_key(key) {
            self.states.insert(key.to_string(), Breaker::new(self.cfg));
        }
        self.states.get_mut(key).expect("just inserted")
    }

    /// Asks whether a job on `key` may run at logical time `now` (see
    /// [`Breaker::admit`]).
    pub fn admit(&mut self, key: &str, now: u64) -> Admit {
        self.entry(key).admit(now)
    }

    /// Records a successful job on `key` (see [`Breaker::on_success`]).
    pub fn on_success(&mut self, key: &str) {
        self.entry(key).on_success();
    }

    /// Records one failed attempt on `key` at logical time `now` (see
    /// [`Breaker::on_failure`]). Returns `true` when this failure trips
    /// the breaker open.
    pub fn on_failure(&mut self, key: &str, now: u64) -> bool {
        self.entry(key).on_failure(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BreakerBank {
        BreakerBank::new(BreakerConfig {
            threshold: 3,
            cooldown: 10,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = bank();
        assert!(!b.on_failure("k", 0));
        assert!(!b.on_failure("k", 1));
        assert_eq!(b.admit("k", 2), Admit::Execute, "still closed below threshold");
        assert!(b.on_failure("k", 2), "third consecutive failure trips");
        assert_eq!(b.admit("k", 3), Admit::Reject);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.degraded_keys(), vec!["k".to_string()]);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = bank();
        b.on_failure("k", 0);
        b.on_failure("k", 1);
        b.on_success("k");
        assert!(!b.on_failure("k", 2));
        assert!(!b.on_failure("k", 3));
        assert_eq!(b.admit("k", 4), Admit::Execute, "streak restarted after success");
    }

    #[test]
    fn half_open_probe_after_cooldown_then_success_closes() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("k", t);
        }
        assert_eq!(b.admit("k", 5), Admit::Reject, "cool-down not elapsed");
        assert_eq!(b.admit("k", 12), Admit::Probe, "cool-down elapsed: one probe");
        assert_eq!(b.admit("k", 12), Admit::Reject, "only one probe in flight");
        b.on_success("k");
        assert_eq!(b.admit("k", 13), Admit::Execute, "probe success closes");
        assert!(b.degraded_keys().is_empty());
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("k", t);
        }
        assert_eq!(b.admit("k", 12), Admit::Probe);
        assert!(b.on_failure("k", 12), "failed probe counts as a trip");
        assert_eq!(b.admit("k", 13), Admit::Reject);
        assert_eq!(b.admit("k", 21), Admit::Reject, "cool-down restarted at 12");
        assert_eq!(b.admit("k", 22), Admit::Probe);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn keys_are_independent() {
        let mut b = bank();
        for t in 0..3 {
            b.on_failure("bad", t);
        }
        assert_eq!(b.admit("bad", 4), Admit::Reject);
        assert_eq!(b.admit("good", 4), Admit::Execute);
        b.on_success("good");
        assert_eq!(b.degraded_keys(), vec!["bad".to_string()]);
    }

    #[test]
    fn standalone_breaker_full_lifecycle() {
        let mut b = Breaker::new(BreakerConfig {
            threshold: 2,
            cooldown: 4,
        });
        assert!(b.is_closed());
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(0), Admit::Execute);
        assert!(!b.on_failure(0));
        assert!(b.on_failure(1), "second consecutive failure trips");
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.admit(2), Admit::Reject);
        assert_eq!(b.admit(5), Admit::Probe, "cool-down elapsed at 1+4");
        assert_eq!(b.state_name(), "half-open");
        b.on_success();
        assert!(b.is_closed());
        assert_eq!(b.trips(), 1);
    }
}
