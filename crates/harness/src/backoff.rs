//! Retry backoff with deterministic jitter.
//!
//! Delays grow exponentially per attempt, clamped to a cap, and are then
//! jittered into `[delay/2, delay]` so retries of many failed jobs do not
//! stampede in lock-step. The jitter is a pure function of
//! `(campaign seed, job id, attempt)` — no wall clock, no global RNG —
//! so a resumed or re-run campaign retries on exactly the same schedule.

use std::time::Duration;

/// Backoff tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper clamp on the un-jittered delay.
    pub cap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

/// The delay before retry number `attempt` (1-based: `attempt == 1`
/// follows the first failure) of `job_id`, jittered deterministically
/// from the campaign seed.
pub fn delay(cfg: &BackoffConfig, seed: u64, job_id: &str, attempt: u32) -> Duration {
    let base_ms = cfg.base.as_millis() as u64;
    let cap_ms = cfg.cap.as_millis() as u64;
    let exp_ms = base_ms
        .saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX))
        .min(cap_ms);
    // Jitter into [exp/2, exp]: late enough to still back off, spread
    // enough to decorrelate concurrent retries.
    let lo = exp_ms / 2;
    let span = exp_ms - lo;
    let h = crate::backoff_hash(seed, job_id, attempt);
    let jittered = if span == 0 { lo } else { lo + h % (span + 1) };
    Duration::from_millis(jittered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(1000),
        }
    }

    #[test]
    fn sequence_from_fixed_seed_is_deterministic() {
        let c = cfg();
        let a: Vec<Duration> = (1..=6).map(|n| delay(&c, 42, "e9/qsort/ecc", n)).collect();
        let b: Vec<Duration> = (1..=6).map(|n| delay(&c, 42, "e9/qsort/ecc", n)).collect();
        assert_eq!(a, b, "same (seed, job, attempt) must give the same delay");
    }

    #[test]
    fn delays_stay_within_the_jitter_window() {
        let c = cfg();
        for attempt in 1..=10u32 {
            let exp = (10u64 << (attempt - 1)).min(1000);
            for job in ["a", "b", "long/job/id"] {
                let d = delay(&c, 7, job, attempt).as_millis() as u64;
                assert!(
                    d >= exp / 2 && d <= exp,
                    "attempt {attempt} job {job}: {d}ms outside [{}..{exp}]ms",
                    exp / 2
                );
            }
        }
    }

    #[test]
    fn different_jobs_decorrelate() {
        let c = cfg();
        // With 16 jobs at attempt 4 (window [40..80]ms) at least two
        // distinct delays must appear, else there is no jitter at all.
        let ds: std::collections::BTreeSet<u64> = (0..16)
            .map(|i| delay(&c, 7, &format!("job-{i}"), 4).as_millis() as u64)
            .collect();
        assert!(ds.len() > 1, "jitter produced identical delays for all jobs");
    }

    #[test]
    fn huge_attempt_clamps_to_cap_without_overflow() {
        let c = cfg();
        let d = delay(&c, 7, "x", 63).as_millis() as u64;
        assert!((500..=1000).contains(&d));
        let d = delay(&c, 7, "x", 200).as_millis() as u64;
        assert!((500..=1000).contains(&d));
    }
}
