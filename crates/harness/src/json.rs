//! The toolkit's tiny flat-JSON subset: one object per line, string /
//! unsigned-number / string-array values, no nesting.
//!
//! This is the wire format shared by the campaign journal ([`crate::journal`]),
//! the cache's record logs, and the `mcc serve` request protocol. It is
//! deliberately *not* general JSON: every consumer owns both ends of the
//! pipe, and a flat object of three value shapes parses in one pass with
//! no allocation surprises. Unknown keys are preserved (callers ignore
//! them), malformed input returns `None` — never a panic — because both
//! the journal recovery path and the network request path feed this
//! parser arbitrary bytes.

use std::collections::HashMap;

/// A value in the JSON subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// A JSON string.
    Str(String),
    /// An unsigned integer.
    Num(u64),
    /// An array of strings.
    Arr(Vec<String>),
}

/// Escapes a string for embedding in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.ws();
        (self.i < self.b.len() && self.b[self.i] == c).then(|| self.i += 1)
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let n =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(n)?);
                        }
                        _ => return None,
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return None,
                    };
                    let start = self.i - 1;
                    let bytes = self.b.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(bytes).ok()?);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }

    fn value(&mut self) -> Option<Val> {
        match self.peek()? {
            b'"' => self.string().map(Val::Str),
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.eat(b']')?;
                    return Some(Val::Arr(items));
                }
                loop {
                    items.push(self.string()?);
                    match self.peek()? {
                        b',' => self.eat(b',')?,
                        b']' => {
                            self.eat(b']')?;
                            return Some(Val::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            c if c.is_ascii_digit() => self.number().map(Val::Num),
            _ => None,
        }
    }

    /// Parses one flat object into a key → value map.
    fn object(&mut self) -> Option<HashMap<String, Val>> {
        self.eat(b'{')?;
        let mut map = HashMap::new();
        if self.peek()? == b'}' {
            self.eat(b'}')?;
            self.ws();
            return (self.i == self.b.len()).then_some(map);
        }
        loop {
            let k = self.string()?;
            self.eat(b':')?;
            map.insert(k, self.value()?);
            match self.peek()? {
                b',' => self.eat(b',')?,
                b'}' => {
                    self.eat(b'}')?;
                    self.ws();
                    return (self.i == self.b.len()).then_some(map);
                }
                _ => return None,
            }
        }
    }
}

/// Parses one flat JSON object; `None` on any malformation or trailing
/// garbage.
pub fn parse_object(s: &str) -> Option<HashMap<String, Val>> {
    P { b: s.as_bytes(), i: 0 }.object()
}

/// Fetches a string field.
pub fn get_str(m: &HashMap<String, Val>, k: &str) -> Option<String> {
    match m.get(k)? {
        Val::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// Fetches an unsigned-number field.
pub fn get_num(m: &HashMap<String, Val>, k: &str) -> Option<u64> {
    match m.get(k)? {
        Val::Num(n) => Some(*n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let m = parse_object(r#"{"a":"x","n":42,"arr":["p","q"]}"#).unwrap();
        assert_eq!(get_str(&m, "a").as_deref(), Some("x"));
        assert_eq!(get_num(&m, "n"), Some(42));
        assert_eq!(m.get("arr"), Some(&Val::Arr(vec!["p".into(), "q".into()])));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" back\\ nl\n tab\t ctrl\u{1} é⊕";
        let line = format!("{{\"s\":\"{}\"}}", esc(nasty));
        let m = parse_object(&line).unwrap();
        assert_eq!(get_str(&m, "s").as_deref(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_and_trailing_garbage() {
        for bad in [
            "",
            "{",
            "{}}",
            "{\"a\":}",
            "{\"a\":\"x\"} trailing",
            "not json at all",
            "{\"a\":[1,2]}", // numbers in arrays are outside the subset
        ] {
            assert!(parse_object(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
    }
}
