//! The crash-only campaign journal: a JSONL append log with an fsync'd
//! header and per-record checksums.
//!
//! Every completed job appends exactly one line, flushed and fsync'd
//! before the supervisor considers the job finished. A kill — SIGKILL,
//! panic, power loss — can therefore lose at most the record being
//! written, and that torn tail is detectable: a record whose line is
//! incomplete, whose checksum fails, or whose sequence number breaks the
//! chain is dropped along with everything after it, and the file is
//! truncated back to the last durable record before new appends. Resume
//! is a pure replay: recovered `ok`/`failed`/`skipped` records are final,
//! and only jobs absent from the journal execute.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::json::{esc, get_num, get_str, parse_object, Val};

/// Journal format version; bumped on any incompatible record change.
pub const JOURNAL_VERSION: u64 = 1;

/// FNV-1a over bytes: the journal's checksum and fingerprint hash. Not
/// cryptographic — it detects torn writes, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a journaled job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed with a payload row.
    Ok,
    /// Exhausted its attempt budget.
    Failed,
    /// Never executed: its circuit breaker was open.
    Skipped,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Skipped => "skipped",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(JobStatus::Ok),
            "failed" => Some(JobStatus::Failed),
            "skipped" => Some(JobStatus::Skipped),
            _ => None,
        }
    }
}

/// The journal's first line: campaign identity, so a resume cannot
/// silently replay the wrong campaign's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Campaign name (`"e9"`, `"e10"`, `"fuzz"`, ...).
    pub campaign: String,
    /// Campaign seed; a resume must present the same one.
    pub seed: u64,
    /// Total jobs in the campaign.
    pub jobs: u64,
    /// FNV of the ordered job-id list: the job set must match exactly.
    pub fingerprint: u64,
}

/// One completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Sequence number: dense, ascending from 0 after the header.
    pub seq: u64,
    /// The job's stable identifier.
    pub id: String,
    /// Final status.
    pub status: JobStatus,
    /// Attempts consumed (0 for skipped jobs).
    pub attempts: u32,
    /// Failure/skip reason (empty on success).
    pub error: String,
    /// Result payload: the job's table-row cells.
    pub cells: Vec<String>,
}

/// Journal I/O and integrity errors.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// The file exists but its header is torn or unreadable.
    BadHeader(String),
    /// The header describes a different campaign/seed/job set.
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::BadHeader(s) => write!(f, "journal header unreadable: {s}"),
            JournalError::Mismatch(s) => write!(f, "journal mismatch: {s}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ------------------------------------------------------------ encoding ----

/// Seals a record body (a JSON object *without* the `sum` field) by
/// splicing in `"sum"` over the body's FNV, producing the journal line.
fn seal(body: String) -> String {
    let sum = fnv1a(body.as_bytes());
    debug_assert!(body.ends_with('}'));
    format!("{},\"sum\":\"{sum:016x}\"}}\n", &body[..body.len() - 1])
}

/// Splits a sealed line back into its body and verifies the checksum.
fn unseal(line: &str) -> Option<String> {
    let idx = line.rfind(",\"sum\":\"")?;
    let tail = &line[idx + 8..];
    let hex = tail.strip_suffix("\"}")?;
    let sum = u64::from_str_radix(hex, 16).ok()?;
    let body = format!("{}}}", &line[..idx]);
    (fnv1a(body.as_bytes()) == sum).then_some(body)
}

fn header_body(h: &Header) -> String {
    format!(
        "{{\"v\":{JOURNAL_VERSION},\"kind\":\"header\",\"campaign\":\"{}\",\"seed\":{},\"jobs\":{},\"fingerprint\":\"{:016x}\"}}",
        esc(&h.campaign),
        h.seed,
        h.jobs,
        h.fingerprint,
    )
}

fn record_body(r: &JobRecord) -> String {
    let cells: Vec<String> = r.cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
    format!(
        "{{\"kind\":\"job\",\"seq\":{},\"id\":\"{}\",\"status\":\"{}\",\"attempts\":{},\"error\":\"{}\",\"cells\":[{}]}}",
        r.seq,
        esc(&r.id),
        r.status.name(),
        r.attempts,
        esc(&r.error),
        cells.join(","),
    )
}

// ------------------------------------------------------------- parsing ----

fn parse_header(line: &str) -> Option<Header> {
    let m = parse_object(&unseal(line)?)?;
    if get_num(&m, "v")? != JOURNAL_VERSION || get_str(&m, "kind")?.as_str() != "header" {
        return None;
    }
    Some(Header {
        campaign: get_str(&m, "campaign")?,
        seed: get_num(&m, "seed")?,
        jobs: get_num(&m, "jobs")?,
        fingerprint: u64::from_str_radix(&get_str(&m, "fingerprint")?, 16).ok()?,
    })
}

fn parse_record(line: &str) -> Option<JobRecord> {
    let m = parse_object(&unseal(line)?)?;
    if get_str(&m, "kind")?.as_str() != "job" {
        return None;
    }
    let cells = match m.get("cells")? {
        Val::Arr(v) => v.clone(),
        _ => return None,
    };
    Some(JobRecord {
        seq: get_num(&m, "seq")?,
        id: get_str(&m, "id")?,
        status: JobStatus::from_name(&get_str(&m, "status")?)?,
        attempts: get_num(&m, "attempts")? as u32,
        error: get_str(&m, "error")?,
        cells,
    })
}

// ------------------------------------------------------------- journal ----

/// An open, append-only journal. All writes go through
/// [`append`](Journal::append), which fsyncs before returning: once it
/// returns, the record survives any kill.
#[derive(Debug)]
pub struct Journal {
    file: File,
    next_seq: u64,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and durably writes the header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem trouble.
    pub fn create(path: &Path, header: &Header) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(seal(header_body(header)).as_bytes())?;
        file.sync_data()?;
        Ok(Journal { file, next_seq: 0 })
    }

    /// Recovers a journal for resume: validates the header against
    /// `expect`, replays every intact record, drops the torn tail (if
    /// any), truncates the file back to the durable prefix, and returns
    /// the recovered records plus the journal reopened for append.
    ///
    /// Recovery is prefix-only by construction: the first line that is
    /// incomplete, fails its checksum, or breaks the dense sequence
    /// terminates the replay — everything before it was fsync'd in order,
    /// so nothing durable is ever dropped.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadHeader`] when the file's first line is
    /// unreadable, [`JournalError::Mismatch`] when it describes a
    /// different campaign, seed, or job set, [`JournalError::Io`] on
    /// filesystem trouble.
    pub fn recover(path: &Path, expect: &Header) -> Result<(Journal, Vec<JobRecord>), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;

        let mut good_bytes = 0usize;
        let mut lines = text.split_inclusive('\n');
        let head_line = lines.next().unwrap_or("");
        let header = head_line
            .strip_suffix('\n')
            .and_then(parse_header)
            .ok_or_else(|| JournalError::BadHeader("torn or malformed first line".into()))?;
        if header != *expect {
            return Err(JournalError::Mismatch(format!(
                "journal is for campaign `{}` (seed {}, {} jobs, fingerprint {:016x}); \
                 expected `{}` (seed {}, {} jobs, fingerprint {:016x})",
                header.campaign,
                header.seed,
                header.jobs,
                header.fingerprint,
                expect.campaign,
                expect.seed,
                expect.jobs,
                expect.fingerprint,
            )));
        }
        good_bytes += head_line.len();

        let mut records = Vec::new();
        for line in lines {
            let Some(stripped) = line.strip_suffix('\n') else {
                break; // torn tail: no newline made it to disk
            };
            let Some(rec) = parse_record(stripped) else {
                break; // torn or corrupt: drop it and everything after
            };
            if rec.seq != records.len() as u64 {
                break; // sequence chain broken
            }
            good_bytes += line.len();
            records.push(rec);
        }

        // Truncate away the torn tail so future appends extend a clean
        // prefix (a torn record must only ever be the last thing in the
        // file).
        file.set_len(good_bytes as u64)?;
        file.seek(SeekFrom::End(0))?;
        let next_seq = records.len() as u64;
        Ok((Journal { file, next_seq }, records))
    }

    /// Appends one record, assigning the next sequence number, and fsyncs.
    /// When this returns, the record is durable.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem trouble.
    pub fn append(&mut self, mut rec: JobRecord) -> Result<u64, JournalError> {
        rec.seq = self.next_seq;
        self.file.write_all(seal(record_body(&rec)).as_bytes())?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(rec.seq)
    }

    /// Deliberately appends the first half of a record *without* a
    /// trailing newline or fsync — the torn tail a crash mid-append
    /// leaves behind. Chaos mode uses this to prove recovery drops it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem trouble.
    pub fn append_torn(&mut self, rec: &JobRecord) -> Result<(), JournalError> {
        let line = seal(record_body(rec));
        self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
        self.file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mcc-harness-journal-tests");
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn hdr() -> Header {
        Header {
            campaign: "test".into(),
            seed: 7,
            jobs: 3,
            fingerprint: 0xabcd,
        }
    }

    fn rec(id: &str, cells: &[&str]) -> JobRecord {
        JobRecord {
            seq: 0,
            id: id.into(),
            status: JobStatus::Ok,
            attempts: 1,
            error: String::new(),
            cells: cells.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn round_trips_records_with_nasty_strings() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path, &hdr()).unwrap();
        j.append(rec("a/b", &["x", "quote\"back\\slash", "tab\tnl\nend"])).unwrap();
        j.append(JobRecord {
            seq: 0,
            id: "unicode-é-⊕".into(),
            status: JobStatus::Failed,
            attempts: 3,
            error: "boom: {\"json\"}".into(),
            cells: vec![],
        })
        .unwrap();
        drop(j);
        let (_, recs) = Journal::recover(&path, &hdr()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].cells[2], "tab\tnl\nend");
        assert_eq!(recs[1].id, "unicode-é-⊕");
        assert_eq!(recs[1].status, JobStatus::Failed);
        assert_eq!(recs[1].error, "boom: {\"json\"}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_rejects_wrong_campaign() {
        let path = tmp("mismatch");
        Journal::create(&path, &hdr()).unwrap();
        let mut other = hdr();
        other.seed = 8;
        match Journal::recover(&path, &other) {
            Err(JournalError::Mismatch(_)) => {}
            o => panic!("expected mismatch, got {o:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, &hdr()).unwrap();
        j.append(rec("one", &["1"])).unwrap();
        j.append_torn(&rec("two", &["2"])).unwrap();
        drop(j);
        let len_with_tear = std::fs::metadata(&path).unwrap().len();
        let (mut j, recs) = Journal::recover(&path, &hdr()).unwrap();
        assert_eq!(recs.len(), 1, "torn record must be dropped");
        assert!(std::fs::metadata(&path).unwrap().len() < len_with_tear);
        // Appending after recovery continues the clean sequence.
        let seq = j.append(rec("two", &["2"])).unwrap();
        assert_eq!(seq, 1);
        drop(j);
        let (_, recs) = Journal::recover(&path, &hdr()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id, "two");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_any_record_is_caught() {
        let path = tmp("bitflip");
        let mut j = Journal::create(&path, &hdr()).unwrap();
        j.append(rec("one", &["11"])).unwrap();
        j.append(rec("two", &["22"])).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the first record's cells.
        let off = String::from_utf8(bytes.clone())
            .unwrap()
            .find("11")
            .unwrap();
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs) = Journal::recover(&path, &hdr()).unwrap();
        // Prefix recovery: the corrupt record and everything after go.
        assert_eq!(recs.len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
