//! Harness-level fault injection.
//!
//! Chaos mode turns the supervisor's own failure machinery on itself:
//! seeded, deterministic faults that exercise the paths a healthy
//! campaign never takes. Three fault families:
//!
//! * **panic** — the job's closure panics inside the worker, proving the
//!   containment boundary and the retry path;
//! * **stall** — the job sleeps past its deadline, proving condemnation
//!   and worker replacement;
//! * **fail** — every attempt of every job on one *victim key* returns an
//!   error, marching that key's breaker to a trip so the degraded-result
//!   path is exercised end to end.
//!
//! All decisions are pure functions of `(seed, job id, attempt)`, so a
//! chaos campaign is as reproducible as a clean one.

/// A fault the chaos plan injects into one attempt of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the worker before the real job runs.
    Panic,
    /// Sleep past the deadline so the supervisor condemns the attempt.
    Stall,
    /// Return an error without running the real job (victim-key fault).
    Fail,
}

/// The campaign's seeded chaos schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    seed: u64,
    /// The breaker key whose jobs persistently fail (tripping it).
    victim: Option<String>,
}

impl ChaosPlan {
    /// Builds a plan: the victim key is picked by seed from the distinct
    /// breaker keys present in the campaign (sorted for determinism).
    pub fn new(seed: u64, keys: &[String]) -> ChaosPlan {
        let mut distinct: Vec<&String> = keys.iter().collect();
        distinct.sort();
        distinct.dedup();
        let victim = if distinct.is_empty() {
            None
        } else {
            Some(distinct[(seed % distinct.len() as u64) as usize].clone())
        };
        ChaosPlan { seed, victim }
    }

    /// The key whose breaker this plan drives open, if any.
    pub fn victim(&self) -> Option<&str> {
        self.victim.as_deref()
    }

    /// The fault (if any) to inject into `attempt` of `job_id` on
    /// breaker key `key`. Victim-key jobs always fail; elsewhere, one in
    /// eight attempts panics and one in eight stalls.
    pub fn fault_for(&self, job_id: &str, key: &str, attempt: u32) -> Option<Fault> {
        if self.victim.as_deref() == Some(key) {
            return Some(Fault::Fail);
        }
        let h = crate::backoff_hash(self.seed, job_id, attempt);
        match h % 8 {
            0 => Some(Fault::Panic),
            1 => Some(Fault::Stall),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn victim_selection_is_seeded_and_stable() {
        let ks = keys(&["simpl", "empl", "sstar", "yalll", "simpl"]);
        let a = ChaosPlan::new(3, &ks);
        let b = ChaosPlan::new(3, &ks);
        assert_eq!(a.victim(), b.victim());
        assert!(a.victim().is_some());
        // 4 distinct keys: all four seeds mod 4 hit different victims.
        let victims: std::collections::BTreeSet<_> =
            (0..4).map(|s| ChaosPlan::new(s, &ks).victim().unwrap().to_string()).collect();
        assert_eq!(victims.len(), 4);
    }

    #[test]
    fn victim_jobs_always_fail_every_attempt() {
        let plan = ChaosPlan::new(0, &keys(&["a", "b"]));
        let victim = plan.victim().unwrap().to_string();
        for attempt in 1..=5 {
            assert_eq!(
                plan.fault_for("some-job", &victim, attempt),
                Some(Fault::Fail)
            );
        }
    }

    #[test]
    fn non_victim_faults_are_deterministic_per_attempt() {
        let plan = ChaosPlan::new(9, &keys(&["a", "b"]));
        let other = if plan.victim() == Some("a") { "b" } else { "a" };
        for attempt in 1..=4 {
            for job in ["j0", "j1", "j2", "j3"] {
                assert_eq!(
                    plan.fault_for(job, other, attempt),
                    plan.fault_for(job, other, attempt)
                );
            }
        }
    }

    #[test]
    fn empty_key_set_has_no_victim() {
        let plan = ChaosPlan::new(1, &[]);
        assert_eq!(plan.victim(), None);
    }
}
