//! Property: truncating a campaign journal at *any* byte offset never
//! corrupts resume. Every record that was fully fsync'd before the cut
//! is recovered verbatim; the torn final record (if the cut lands inside
//! one) is dropped; and the journal remains appendable afterwards. A cut
//! inside the header is a clean error, never a panic or a bogus replay.

use std::path::PathBuf;

use mcc_harness::journal::{Header, JobRecord, JobStatus, Journal, JournalError};
use proptest::prelude::*;

/// Cell payloads that stress the JSON-subset escaper.
const PALETTE: [&str; 8] = [
    "plain",
    "sp ace",
    "q\"uote",
    "back\\slash",
    "nl\nline",
    "tab\tcell",
    "unicode-é⊕",
    "{\"json\":1}",
];

fn tmp(case: u64) -> PathBuf {
    let d = std::env::temp_dir().join("mcc-harness-truncation-prop");
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!("cut-{}-{case}.jsonl", std::process::id()))
}

fn header(n: u64) -> Header {
    Header {
        campaign: "truncation-prop".to_string(),
        seed: 99,
        jobs: n,
        fingerprint: 0xfeed_beef,
    }
}

fn record(i: usize, shape: u64) -> JobRecord {
    let status = match shape % 3 {
        0 => JobStatus::Ok,
        1 => JobStatus::Failed,
        _ => JobStatus::Skipped,
    };
    let cells: Vec<String> = (0..(shape % 4))
        .map(|c| PALETTE[((shape >> (8 * c)) as usize + c as usize) % PALETTE.len()].to_string())
        .collect();
    JobRecord {
        seq: 0,
        id: format!("job/{i}/{}", PALETTE[shape as usize % PALETTE.len()]),
        status,
        attempts: (shape % 5) as u32,
        error: if status == JobStatus::Ok {
            String::new()
        } else {
            PALETTE[(shape >> 3) as usize % PALETTE.len()].to_string()
        },
        cells,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_at_any_offset_recovers_the_durable_prefix(
        shapes in proptest::collection::vec(0u64..u64::MAX, 0..10),
        cut_pick in 0u64..1_000_000,
        case in 0u64..u64::MAX,
    ) {
        let path = tmp(case);
        let hdr = header(shapes.len() as u64);
        let records: Vec<JobRecord> = shapes
            .iter()
            .enumerate()
            .map(|(i, &s)| record(i, s))
            .collect();

        // Write the full journal, then learn each line's end offset.
        let mut j = Journal::create(&path, &hdr).unwrap();
        for r in &records {
            j.append(r.clone()).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let mut line_ends = Vec::new(); // byte offset just past each line
        for (i, &b) in full.iter().enumerate() {
            if b == b'\n' {
                line_ends.push(i + 1);
            }
        }
        let header_end = line_ends[0];

        // Cut anywhere in [0, len] and attempt recovery.
        let cut = (cut_pick % (full.len() as u64 + 1)) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        if cut < header_end {
            // The header itself is torn: recovery must refuse cleanly.
            match Journal::recover(&path, &hdr) {
                Err(JournalError::BadHeader(_)) => {}
                other => {
                    std::fs::remove_file(&path).ok();
                    panic!("torn header must be a clean error, got {other:?}");
                }
            }
            std::fs::remove_file(&path).ok();
            return;
        }

        // Every record whose full line survived the cut must be
        // recovered verbatim; the first torn/missing line ends replay.
        let expect = line_ends[1..]
            .iter()
            .take_while(|&&end| end <= cut)
            .count();
        let (mut j, recovered) = Journal::recover(&path, &hdr).unwrap();
        prop_assert_eq!(recovered.len(), expect);
        for (got, want) in recovered.iter().zip(records.iter()) {
            prop_assert_eq!(&got.id, &want.id);
            prop_assert_eq!(got.status, want.status);
            prop_assert_eq!(got.attempts, want.attempts);
            prop_assert_eq!(&got.error, &want.error);
            prop_assert_eq!(&got.cells, &want.cells);
        }
        // The torn tail is physically gone...
        prop_assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            line_ends[expect] as u64
        );
        // ...and the journal keeps accepting appends on a clean sequence.
        let seq = j.append(record(999, 7)).unwrap();
        prop_assert_eq!(seq, expect as u64);
        drop(j);
        let (_, after) = Journal::recover(&path, &hdr).unwrap();
        prop_assert_eq!(after.len(), expect + 1);

        std::fs::remove_file(&path).ok();
    }
}
