//! Differential proof that the compilation cache is invisible.
//!
//! Over ~256 seeded generator programs per frontend (the same grammar
//! generators the fuzz campaign uses), a cache hit must return an
//! artifact whose canonical serialisation is byte-identical to a cold
//! `compile_contained`, through both the memory tier and a disk-tier
//! round trip in a fresh cache (the cross-process case). And the content
//! address must be *sensitive*: flipping any single keyed input — one
//! source byte, the frontend, the machine, or any pass-configuration
//! field — changes the key, so no stale artifact can ever be served.

use mcc_cache::{key_of, serialize_artifact, Cache, Persist};
use mcc_compact::Algorithm;
use mcc_core::{Compiler, CompilerOptions, SourceLang};
use mcc_fuzz::gen;
use mcc_machine::machines::{hm1, vm1};
use mcc_machine::ConflictModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS_PER_LANG: u64 = 256;

/// Unique scratch directory per test (the suite runs tests in parallel).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcc-cache-diff-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hits_are_byte_identical_to_cold_compiles() {
    let m = hm1();
    let compiler = Compiler::new(m.clone());

    for lang in SourceLang::ALL {
        let mut rng = StdRng::seed_from_u64(0xCAC4E + lang as u64);
        let cache = Cache::new();
        let mut compiled = 0u64;

        for trial in 0..TRIALS_PER_LANG {
            let src = gen::generate(lang, &m, &mut rng);

            let cold = compiler.compile_contained(lang, &src);
            let missed = cache.compile(&compiler, lang, &src, Persist::Memory);
            let hit = cache.compile(&compiler, lang, &src, Persist::Memory);

            match (cold, missed, hit) {
                (Ok(cold), Ok(missed), Ok(hit)) => {
                    let want = serialize_artifact(&cold);
                    assert_eq!(
                        want,
                        serialize_artifact(&missed),
                        "{} trial {trial}: first cache compile diverges from cold",
                        lang.name()
                    );
                    assert_eq!(
                        want,
                        serialize_artifact(&hit),
                        "{} trial {trial}: memory hit diverges from cold",
                        lang.name()
                    );
                    assert_eq!(hit.stats.cached, Some("memory"));
                    compiled += 1;
                }
                (Err(_), Err(_), Err(_)) => {} // errors are never cached
                (c, m_, h) => panic!(
                    "{} trial {trial}: cold/miss/hit disagree on success: \
                     {:?} {:?} {:?}",
                    lang.name(),
                    c.is_ok(),
                    m_.is_ok(),
                    h.is_ok()
                ),
            }
        }

        // The generators emit well-formed programs: if nearly everything
        // failed to compile the equality above proved nothing.
        assert!(
            compiled > TRIALS_PER_LANG / 2,
            "{}: only {compiled}/{TRIALS_PER_LANG} programs compiled",
            lang.name()
        );
        let n = cache.counters();
        assert_eq!(n.hits_memory, compiled, "{}: hit count", lang.name());
        assert_eq!(n.hits_disk, 0, "{}: no disk tier attached", lang.name());
    }
}

#[test]
fn disk_round_trip_is_byte_identical_in_a_fresh_cache() {
    let m = hm1();
    let compiler = Compiler::new(m.clone());
    let dir = scratch("roundtrip");

    // First process stand-in: compile a sample through a disk-backed
    // cache, keeping the canonical bytes of each success.
    let writer = Cache::new();
    writer.attach_disk(&dir).unwrap();
    let mut corpus: Vec<(SourceLang, String, String)> = Vec::new();
    for lang in SourceLang::ALL {
        let mut rng = StdRng::seed_from_u64(0xD15C + lang as u64);
        for _ in 0..32 {
            let src = gen::generate(lang, &m, &mut rng);
            if let Ok(art) = writer.compile(&compiler, lang, &src, Persist::Disk) {
                corpus.push((lang, src, serialize_artifact(&art)));
            }
        }
    }
    assert!(corpus.len() > 64, "corpus too small: {}", corpus.len());

    // Second process stand-in: a fresh cache over the same directory must
    // serve every program from disk, byte-identically.
    let reader = Cache::new();
    let loaded = reader.attach_disk(&dir).unwrap();
    assert!(loaded > 0, "nothing persisted to the disk tier");
    for (lang, src, want) in &corpus {
        let art = reader
            .compile(&compiler, *lang, src, Persist::Disk)
            .expect("a cached program cannot fail to load");
        assert_eq!(art.stats.cached, Some("disk"), "{}: expected a disk hit", lang.name());
        assert_eq!(
            &serialize_artifact(&art),
            want,
            "{}: disk round trip diverges",
            lang.name()
        );
    }
    let n = reader.counters();
    assert_eq!(n.hits_disk as usize, corpus.len());
    assert_eq!(n.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_keyed_input_perturbs_the_key() {
    let hm = hm1();
    let opts = CompilerOptions::default();
    let src = "reg a = R0\nconst a, 7\nexit a\n";
    let base = key_of(&hm, SourceLang::Yalll, &opts, src);

    // Source: flipping any single byte (or truncating) misses.
    for i in 0..src.len() {
        let mut bytes = src.as_bytes().to_vec();
        bytes[i] ^= 1;
        if let Ok(flipped) = String::from_utf8(bytes) {
            assert_ne!(
                base,
                key_of(&hm, SourceLang::Yalll, &opts, &flipped),
                "flipping source byte {i} did not change the key"
            );
        }
    }
    assert_ne!(base, key_of(&hm, SourceLang::Yalll, &opts, &src[..src.len() - 1]));

    // Frontend and machine.
    assert_ne!(base, key_of(&hm, SourceLang::Simpl, &opts, src));
    assert_ne!(base, key_of(&vm1(), SourceLang::Yalll, &opts, src));

    // Every pass-configuration field canonical_options() commits to.
    let perturbations: Vec<(&str, CompilerOptions)> = vec![
        ("algorithm", CompilerOptions { algorithm: Algorithm::Linear, ..opts.clone() }),
        ("model", CompilerOptions { model: ConflictModel::Coarse, ..opts.clone() }),
        ("poll_interval", CompilerOptions { poll_interval: Some(8), ..opts.clone() }),
        ("bb_budget", CompilerOptions { bb_budget: opts.bb_budget + 1, ..opts.clone() }),
        ("alloc.budget", {
            let mut o = opts.clone();
            o.alloc.budget = Some(4);
            o
        }),
        ("alloc.spread", {
            let mut o = opts.clone();
            o.alloc.spread = !o.alloc.spread;
            o
        }),
        ("limits.frontend.max_source_bytes", {
            let mut o = opts.clone();
            o.limits.frontend.max_source_bytes += 1;
            o
        }),
        ("limits.frontend.max_tokens", {
            let mut o = opts.clone();
            o.limits.frontend.max_tokens += 1;
            o
        }),
        ("limits.frontend.max_depth", {
            let mut o = opts.clone();
            o.limits.frontend.max_depth += 1;
            o
        }),
        ("limits.max_mir_ops", {
            let mut o = opts.clone();
            o.limits.max_mir_ops += 1;
            o
        }),
        ("limits.max_blocks", {
            let mut o = opts.clone();
            o.limits.max_blocks += 1;
            o
        }),
    ];
    for (what, o) in &perturbations {
        assert_ne!(
            base,
            key_of(&hm, SourceLang::Yalll, o, src),
            "perturbing {what} did not change the key"
        );
    }
}

/// A perturbed key is not just different — the cache actually recompiles
/// rather than serving the stale artifact.
#[test]
fn perturbed_requests_miss() {
    let m = hm1();
    let src = "reg a = R0\nconst a, 7\nexit a\n";
    let cache = Cache::new();

    let c1 = Compiler::new(m.clone());
    cache.compile(&c1, SourceLang::Yalll, src, Persist::Memory).unwrap();
    assert_eq!(cache.counters().misses, 1);

    // Same request: hit.
    cache.compile(&c1, SourceLang::Yalll, src, Persist::Memory).unwrap();
    assert_eq!(cache.counters().hits_memory, 1);

    // One flipped source byte: miss.
    cache
        .compile(&c1, SourceLang::Yalll, "reg a = R0\nconst a, 6\nexit a\n", Persist::Memory)
        .unwrap();
    assert_eq!(cache.counters().misses, 2);

    // Different pass config over identical source: miss.
    let c2 = Compiler::with_options(
        m.clone(),
        CompilerOptions { algorithm: Algorithm::Sequential, ..Default::default() },
    );
    cache.compile(&c2, SourceLang::Yalll, src, Persist::Memory).unwrap();
    assert_eq!(cache.counters().misses, 3);

    // Different machine over identical source and config: miss.
    let c3 = Compiler::new(vm1());
    cache.compile(&c3, SourceLang::Yalll, src, Persist::Memory).unwrap();
    assert_eq!(cache.counters().misses, 4);
}
