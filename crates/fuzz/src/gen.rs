//! Seeded grammar-directed program generators.
//!
//! Each generator emits a *well-formed, terminating* program for its
//! language, parameterized by the target machine (register names come
//! from the machine description, so the same generator retargets). Two
//! invariants matter more than coverage:
//!
//! * **acceptance** — generated programs must compile on a healthy tree;
//!   a rejection is reported as a finding, so the generators only emit
//!   constructs every frontend version accepts;
//! * **termination** — every loop counts a register down from a small
//!   constant and nothing in the loop body writes the counter, so the
//!   simulator's cycle budget is never an expected outcome.
//!
//! `cobegin` groups are restricted to a single statement: whether a
//! multi-statement group fits one microinstruction depends on the
//! compaction algorithm, and the differential oracle needs acceptance to
//! be algorithm-independent.

use mcc_core::SourceLang;
use mcc_machine::MachineDesc;
use rand::{rngs::StdRng, Rng};

/// Register names the generators may use: the first eight registers of
/// the first macro-visible file that the machine resolves by name.
pub fn register_pool(m: &MachineDesc) -> Vec<String> {
    for f in &m.files {
        if !f.macro_visible {
            continue;
        }
        // Leave at least three registers unclaimed: generated programs
        // pin pool registers as variables, and the allocator still needs
        // scratch room for temporaries (BX2's G file is only 8 wide).
        let take = f.count.saturating_sub(3).clamp(2, 8);
        let pool: Vec<String> = (0..f.count.min(take))
            .map(|i| format!("{}{i}", f.name))
            .filter(|n| m.resolve_reg_name(n).is_some())
            .collect();
        if pool.len() >= 2 {
            return pool;
        }
    }
    // No macro file resolved — fall back to the conventional names.
    (0..4).map(|i| format!("R{i}")).collect()
}

/// Canonical example programs, used both as mutation seed corpus and as
/// acceptance smoke inputs. One entry per language.
pub fn examples(lang: SourceLang) -> &'static [&'static str] {
    match lang {
        SourceLang::Simpl => &[
            "program t; begin R1 + R2 -> R3; end",
            "program t; const M = 0x1F; begin R1 & M -> R0; 5 -> R2; end",
            "program t; begin for R1 := 1 to 5 do begin R2 + R1 -> R2; end; end",
        ],
        SourceLang::Empl => &[
            "DECLARE X FIXED; X = 5;",
            "DECLARE X FIXED; DECLARE Y FIXED; X = 1; Y = X + 2;",
            "DECLARE A(8) FIXED; DECLARE I FIXED; I = 3; A(2) = 7; I = A(2);",
        ],
        SourceLang::Sstar => &[
            "program t; var x: seq [15..0] bit with R1; begin x := 5; end",
            "program t; var x: seq [15..0] bit; begin x := 3; assert(x = 3); end",
        ],
        SourceLang::Yalll => &[
            "reg a = R0\nconst a, 7\nexit a\n",
            "reg a = R0\nreg t\nconst a, 5\nconst t, 0\nloop:\nadd t, t, a\nsub a, a, 1\njump loop if a <> 0\nexit t\n",
        ],
    }
}

/// Generates one well-formed program.
pub fn generate(lang: SourceLang, m: &MachineDesc, rng: &mut StdRng) -> String {
    let pool = register_pool(m);
    match lang {
        SourceLang::Simpl => gen_simpl(&pool, rng),
        SourceLang::Empl => gen_empl(rng),
        SourceLang::Sstar => gen_sstar(m, &pool, rng),
        SourceLang::Yalll => gen_yalll(&pool, rng),
    }
}

fn pick<'a>(rng: &mut StdRng, xs: &'a [String]) -> &'a str {
    &xs[rng.gen_range(0..xs.len())]
}

// ----------------------------------------------------------------- SIMPL --

fn simpl_atom(rng: &mut StdRng, regs: &[String], consts: &[String]) -> String {
    match rng.gen_range(0..4u32) {
        0 if !consts.is_empty() => consts[rng.gen_range(0..consts.len())].clone(),
        1 => rng.gen_range(0..64u64).to_string(),
        _ => pick(rng, regs).to_string(),
    }
}

fn simpl_assign(rng: &mut StdRng, regs: &[String], consts: &[String]) -> String {
    let dst = pick(rng, regs);
    match rng.gen_range(0..4u32) {
        // Single-operator binary expression.
        0 | 1 => {
            let op = ["+", "-", "&", "|", "^"][rng.gen_range(0..5usize)];
            let a = pick(rng, regs);
            let b = simpl_atom(rng, regs, consts);
            format!("{a} {op} {b} -> {dst};")
        }
        // Shift by a small constant.
        2 => {
            let sh = ["shl", "shr"][rng.gen_range(0..2usize)];
            let a = pick(rng, regs);
            format!("{a} {sh} {} -> {dst};", rng.gen_range(1..4u32))
        }
        // Bare atom (move / load-immediate).
        _ => format!("{} -> {dst};", simpl_atom(rng, regs, consts)),
    }
}

fn gen_simpl(pool: &[String], rng: &mut StdRng) -> String {
    let consts: Vec<String> = (0..rng.gen_range(0..3usize)).map(|i| format!("K{i}")).collect();
    let mut s = String::from("program fz;\n");
    for (i, c) in consts.iter().enumerate() {
        let v = rng.gen_range(1..256u64) << i;
        s.push_str(&format!("const {c} = {v};\n"));
    }
    s.push_str("begin\n");
    // The for-loop counter is reserved so no body statement writes it.
    let (counter, regs) = pool.split_last().unwrap();
    let regs = regs.to_vec();
    let counter = std::slice::from_ref(counter);
    for _ in 0..rng.gen_range(2..6usize) {
        match rng.gen_range(0..8u32) {
            0 => {
                // Bounded for-loop; the counter register is untouchable.
                s.push_str(&format!(
                    "for {} := 1 to {} do begin\n",
                    counter[0],
                    rng.gen_range(2..6u32)
                ));
                for _ in 0..rng.gen_range(1..3usize) {
                    s.push_str(&format!("{}\n", simpl_assign(rng, &regs, &consts)));
                }
                s.push_str("end;\n");
            }
            1 => {
                let rel = ["=", "<>"][rng.gen_range(0..2usize)];
                s.push_str(&format!(
                    "if {} {rel} 0 then {}",
                    pick(rng, &regs),
                    simpl_assign(rng, &regs, &consts)
                ));
                if rng.gen_bool(0.5) {
                    s.push_str(&format!(" else {}", simpl_assign(rng, &regs, &consts)));
                }
                s.push('\n');
            }
            2 => {
                // Multiway dispatch.
                s.push_str(&format!("case {} of\n", pick(rng, &regs)));
                for v in 0..rng.gen_range(2..4u64) {
                    s.push_str(&format!("{v}: {}\n", simpl_assign(rng, &regs, &consts)));
                }
                s.push_str("end;\n");
            }
            _ => s.push_str(&format!("{}\n", simpl_assign(rng, &regs, &consts))),
        }
    }
    s.push_str("end\n");
    s
}

// ------------------------------------------------------------------ EMPL --

fn empl_atom(rng: &mut StdRng, vars: &[String]) -> String {
    if rng.gen_bool(0.3) {
        rng.gen_range(0..64u64).to_string()
    } else {
        pick(rng, vars).to_string()
    }
}

fn empl_assign(rng: &mut StdRng, vars: &[String]) -> String {
    let dst = pick(rng, vars);
    match rng.gen_range(0..5u32) {
        0 => format!("{dst} = {};", empl_atom(rng, vars)),
        1 => {
            let sh = ["SHL", "SHR"][rng.gen_range(0..2usize)];
            format!("{dst} = {} {sh} {};", empl_atom(rng, vars), rng.gen_range(1..4u32))
        }
        2 => format!("{dst} = NOT {};", empl_atom(rng, vars)),
        _ => {
            // Multiply and divide expand into microcode loops; keep them
            // rarer so programs stay quick to simulate.
            let ops: &[&str] = if rng.gen_bool(0.2) {
                &["*", "/"]
            } else {
                &["+", "-", "&", "|", "XOR"]
            };
            let op = ops[rng.gen_range(0..ops.len())];
            format!("{dst} = {} {op} {};", empl_atom(rng, vars), empl_atom(rng, vars))
        }
    }
}

fn gen_empl(rng: &mut StdRng) -> String {
    let nv = rng.gen_range(3..6usize);
    let vars: Vec<String> = (0..nv).map(|i| format!("V{i}")).collect();
    let mut s = String::new();
    for v in &vars {
        s.push_str(&format!("DECLARE {v} FIXED;\n"));
    }
    let arr = rng.gen_bool(0.5);
    if arr {
        s.push_str("DECLARE A(8) FIXED;\n");
    }
    // The while-loop counter is reserved so no body statement writes it.
    let (counter, body_vars) = vars.split_last().unwrap();
    let body_vars = body_vars.to_vec();
    for v in &vars {
        s.push_str(&format!("{v} = {};\n", rng.gen_range(0..16u64)));
    }
    for _ in 0..rng.gen_range(2..6usize) {
        match rng.gen_range(0..8u32) {
            0 => {
                s.push_str(&format!("{counter} = {};\n", rng.gen_range(1..6u64)));
                s.push_str(&format!("WHILE {counter} > 0 DO;\n"));
                for _ in 0..rng.gen_range(1..3usize) {
                    s.push_str(&format!("{}\n", empl_assign(rng, &body_vars)));
                }
                s.push_str(&format!("{counter} = {counter} - 1;\nEND;\n"));
            }
            1 => {
                let rel = ["=", "<>", "<", ">="][rng.gen_range(0..4usize)];
                s.push_str(&format!(
                    "IF {} {rel} {} THEN {}",
                    pick(rng, &body_vars),
                    rng.gen_range(0..8u64),
                    empl_assign(rng, &body_vars)
                ));
                if rng.gen_bool(0.5) {
                    s.push_str(&format!(" ELSE {}", empl_assign(rng, &body_vars)));
                }
                s.push('\n');
            }
            2 if arr => {
                let i = rng.gen_range(0..8u64);
                s.push_str(&format!("A({i}) = {};\n", empl_atom(rng, &body_vars)));
                s.push_str(&format!("{} = A({i});\n", pick(rng, &body_vars)));
            }
            3 => {
                s.push_str("DO;\n");
                for _ in 0..rng.gen_range(1..3usize) {
                    s.push_str(&format!("{}\n", empl_assign(rng, &body_vars)));
                }
                s.push_str("END;\n");
            }
            _ => s.push_str(&format!("{}\n", empl_assign(rng, &body_vars))),
        }
    }
    s
}

// -------------------------------------------------------------------- S* --

fn sstar_expr(rng: &mut StdRng, vars: &[String], depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.4) {
        return if rng.gen_bool(0.3) {
            rng.gen_range(0..64u64).to_string()
        } else {
            pick(rng, vars).to_string()
        };
    }
    let op = ["+", "-", "&", "|"][rng.gen_range(0..4usize)];
    format!(
        "({} {op} {})",
        sstar_expr(rng, vars, depth - 1),
        sstar_expr(rng, vars, depth - 1)
    )
}

fn gen_sstar(m: &MachineDesc, pool: &[String], rng: &mut StdRng) -> String {
    let w = m.word_bits;
    let nv = rng.gen_range(2..5usize);
    let vars: Vec<String> = (0..nv).map(|i| format!("v{i}")).collect();
    let mut s = String::from("program fz;\n");
    let mut bound = Vec::new();
    for (i, v) in vars.iter().enumerate() {
        // Bind roughly half the variables to machine registers; the rest
        // stay virtual and exercise the allocator.
        if i < pool.len() && rng.gen_bool(0.5) {
            s.push_str(&format!("var {v}: seq [{}..0] bit with {};\n", w - 1, pool[i]));
            bound.push(v.clone());
        } else {
            s.push_str(&format!("var {v}: seq [{}..0] bit;\n", w - 1));
        }
    }
    s.push_str("begin\n");
    let (counter, body_vars) = vars.split_last().unwrap();
    let body_vars = body_vars.to_vec();
    // Register-bound, non-counter variables: the only safe cobegin
    // targets, since a constant load into a register is one micro-op on
    // every machine, while a store to an unbound (memory) variable can
    // need two microinstructions on vertical machines like VM-1.
    let cobegin_vars: Vec<String> = bound.iter().filter(|v| *v != counter).cloned().collect();
    for v in &vars {
        s.push_str(&format!("{v} := {};\n", rng.gen_range(0..16u64)));
    }
    for _ in 0..rng.gen_range(2..6usize) {
        match rng.gen_range(0..8u32) {
            0 => {
                // Countdown repeat; nothing else writes the counter.
                s.push_str(&format!("{counter} := {};\n", rng.gen_range(1..6u64)));
                s.push_str(&format!(
                    "repeat {counter} := {counter} - 1 until {counter} = 0;\n"
                ));
            }
            1 => {
                let rel = ["=", "<>"][rng.gen_range(0..2usize)];
                s.push_str(&format!(
                    "if {} {rel} {} then {} := {}; else {} := {}; fi;\n",
                    pick(rng, &body_vars),
                    rng.gen_range(0..8u64),
                    pick(rng, &body_vars),
                    sstar_expr(rng, &body_vars, 1),
                    pick(rng, &body_vars),
                    sstar_expr(rng, &body_vars, 1),
                ));
            }
            2 => {
                // Single-statement cobegin: acceptance must not depend on
                // the compaction algorithm (or the machine's word shape).
                let k = rng.gen_range(0..16u64);
                if cobegin_vars.is_empty() {
                    s.push_str(&format!("{} := {k};\n", pick(rng, &body_vars)));
                } else {
                    s.push_str(&format!(
                        "cobegin {} := {k} coend;\n",
                        pick(rng, &cobegin_vars)
                    ));
                }
            }
            3 => {
                // A value we know, asserted immediately.
                let v = pick(rng, &body_vars).to_string();
                let k = rng.gen_range(0..32u64);
                s.push_str(&format!("{v} := {k};\nassert({v} = {k});\n"));
            }
            _ => {
                s.push_str(&format!(
                    "{} := {};\n",
                    pick(rng, &body_vars),
                    sstar_expr(rng, &body_vars, 2)
                ));
            }
        }
    }
    s.push_str("end\n");
    s
}

// ------------------------------------------------------------------ YALLL --

fn gen_yalll(pool: &[String], rng: &mut StdRng) -> String {
    // Symbolic names bound to machine registers plus one unbound.
    let nb = rng.gen_range(2..4usize).min(pool.len());
    let mut names: Vec<String> = (0..nb).map(|i| format!("x{i}")).collect();
    let mut s = String::new();
    for (i, n) in names.iter().enumerate() {
        s.push_str(&format!("reg {n} = {}\n", pool[i]));
    }
    s.push_str("reg t\n");
    names.push("t".into());
    for n in &names {
        s.push_str(&format!("const {n}, {}\n", rng.gen_range(0..16u64)));
    }
    let (counter, body) = names.split_last().unwrap();
    let body = body.to_vec();
    let alu = ["add", "sub", "and", "or", "xor"];
    let linear = |s: &mut String, rng: &mut StdRng| match rng.gen_range(0..6u32) {
        0 => s.push_str(&format!("inc {}\n", pick(rng, &body))),
        1 => s.push_str(&format!("not {}, {}\n", pick(rng, &body), pick(rng, &body))),
        2 => s.push_str(&format!(
            "shl {}, {}, {}\n",
            pick(rng, &body),
            pick(rng, &body),
            rng.gen_range(1..4u32)
        )),
        3 => s.push_str(&format!(
            "move {}, {}\n",
            pick(rng, &body),
            pick(rng, &body)
        )),
        _ => {
            let op = alu[rng.gen_range(0..alu.len())];
            let b = if rng.gen_bool(0.4) {
                rng.gen_range(0..16u64).to_string()
            } else {
                pick(rng, &body).to_string()
            };
            s.push_str(&format!(
                "{op} {}, {}, {b}\n",
                pick(rng, &body),
                pick(rng, &body)
            ));
        }
    };
    for _ in 0..rng.gen_range(1..4usize) {
        linear(&mut s, rng);
    }
    if rng.gen_bool(0.7) {
        // Countdown loop; the counter is written only by its own `sub`.
        s.push_str(&format!("const {counter}, {}\n", rng.gen_range(1..6u64)));
        s.push_str("loop:\n");
        for _ in 0..rng.gen_range(1..3usize) {
            linear(&mut s, rng);
        }
        s.push_str(&format!("sub {counter}, {counter}, 1\n"));
        s.push_str(&format!("jump loop if {counter} <> 0\n"));
    }
    if rng.gen_bool(0.5) {
        // Forward conditional skip.
        let rel = ["=", "<>", "<", ">="][rng.gen_range(0..4usize)];
        s.push_str(&format!(
            "jump done if {} {rel} {}\n",
            pick(rng, &body),
            rng.gen_range(0..8u64)
        ));
        linear(&mut s, rng);
        s.push_str("done:\n");
    }
    s.push_str(&format!("exit {}\n", pick(rng, &body)));
    s
}
