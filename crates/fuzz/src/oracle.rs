//! The differential oracle.
//!
//! Every program is compiled once per compaction algorithm, with
//! [`Algorithm::Sequential`] (one micro-operation per microinstruction,
//! no reordering) as the reference semantics. Each compiled artifact runs
//! in `mcc-sim` to a halt; the final architectural state visible through
//! the artifact's symbol maps must agree with the reference. Compaction
//! is an *optimisation* — any observable divergence is a compiler bug.
//!
//! Error-versus-error counts as agreement: what must never diverge is
//! *whether* and *with what observable state* a program runs, not the
//! exact diagnostic text.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mcc_compact::Algorithm;
use mcc_core::{Artifact, CompileError, Compiler, CompilerOptions, SourceLang};
use mcc_lang::Diagnostic;
use mcc_machine::MachineDesc;
use mcc_sim::{SimError, SimOptions};

use crate::FindingClass;

/// Cap on the words compared per memory symbol, so a huge declared array
/// cannot turn state comparison into the campaign's bottleneck.
const MEM_COMPARE_WORDS: u64 = 64;

/// How one compiled artifact's execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ExecOutcome {
    /// Ran to halt; the observable state (register symbols, then memory
    /// symbols word-by-word) in deterministic order.
    Halted(BTreeMap<String, Vec<u64>>),
    /// Stopped with a simulator error of this class.
    Stopped(&'static str),
}

fn sim_error_class(e: &SimError) -> &'static str {
    match e {
        SimError::CycleLimit(_) => "cycle-limit",
        SimError::OffEnd(_) => "off-end",
        SimError::StackUnderflow => "stack-underflow",
        SimError::BadInstr(_) => "bad-instr",
        SimError::WatchdogExpired(_) => "watchdog",
        _ => "fault",
    }
}

fn execute(art: &Artifact) -> Result<ExecOutcome, String> {
    // Hang detection uses the toolkit-wide cycle budget from `mcc-lang`,
    // the same `Budget` the simulator's own default and the campaign
    // harness count against — one definition of "too long", everywhere.
    let opts = SimOptions {
        max_cycles: mcc_lang::Budget::sim_cycles().limit(),
        ..SimOptions::default()
    };
    let run = catch_unwind(AssertUnwindSafe(|| art.run_with(&opts)));
    let run = match run {
        Ok(r) => r,
        Err(_) => return Err("panic during simulation".to_string()),
    };
    match run {
        Ok((sim, _stats)) => {
            let mut state = BTreeMap::new();
            for name in art.symbols.keys() {
                if let Some(v) = art.read_symbol(&sim, name) {
                    state.insert(name.clone(), vec![v]);
                }
            }
            for (name, (base, len)) in &art.memory_symbols {
                let words: Vec<u64> = (0..(*len).min(MEM_COMPARE_WORDS))
                    .map(|i| sim.mem(base + i))
                    .collect();
                state.insert(format!("mem:{name}"), words);
            }
            Ok(ExecOutcome::Halted(state))
        }
        Err(e) => Ok(ExecOutcome::Stopped(sim_error_class(&e))),
    }
}

fn compile_with(
    m: &MachineDesc,
    algo: Algorithm,
    lang: SourceLang,
    src: &str,
) -> Result<Artifact, CompileError> {
    let opts = CompilerOptions {
        algorithm: algo,
        ..Default::default()
    };
    // The shrinker and the mutation stages re-ask for identical
    // (machine, algorithm, source) triples constantly, and seeded
    // campaigns regenerate the exact same corpus every run — so persist
    // to the disk tier *when one is attached*. `mcc fuzz` itself never
    // attaches one (arbitrary user seeds would grow the store without
    // bound); `exp_all` and `mcc campaign` do, so their fixed-seed E10
    // rows are served from disk on warm runs.
    mcc_cache::compile_cached(
        &Compiler::with_options(m.clone(), opts),
        lang,
        src,
        mcc_cache::Persist::Disk,
    )
}

/// Classifies a compile error on input that was expected to be accepted.
fn classify_compile_error(e: &CompileError) -> (FindingClass, String) {
    match e {
        CompileError::Internal { .. } => (FindingClass::Panic, e.to_string()),
        CompileError::Limit { .. } => (FindingClass::Budget, e.to_string()),
        _ => (FindingClass::Diagnostic, format!("generated program rejected: {e}")),
    }
}

/// Runs one differential trial. Returns `None` when every algorithm
/// agrees (and, for well-formed inputs, the reference accepted and
/// halted); otherwise the finding class and a human-readable detail.
///
/// `expect_wellformed` is true for generator output: rejection, budget
/// exhaustion, and cycle-limit stops are findings in their own right.
/// For mutated inputs only *divergence* between algorithms (or a panic)
/// is a finding — a mutant may legitimately fail to compile or halt.
pub fn run_trial(
    m: &MachineDesc,
    lang: SourceLang,
    src: &str,
    expect_wellformed: bool,
) -> Option<(FindingClass, String)> {
    let reference = compile_with(m, Algorithm::Sequential, lang, src);
    let ref_outcome = match &reference {
        Ok(art) => match execute(art) {
            Ok(o) => {
                if expect_wellformed && o == ExecOutcome::Stopped("cycle-limit") {
                    return Some((
                        FindingClass::Hang,
                        "sequential reference hit the cycle budget on a terminating program"
                            .to_string(),
                    ));
                }
                Some(o)
            }
            Err(p) => return Some((FindingClass::Panic, format!("sequential: {p}"))),
        },
        Err(e) => {
            if let CompileError::Internal { .. } = e {
                return Some((FindingClass::Panic, format!("sequential: {e}")));
            }
            if expect_wellformed {
                return Some(classify_compile_error(e));
            }
            None
        }
    };

    for algo in Algorithm::ALL {
        let cand = compile_with(m, algo, lang, src);
        match (&ref_outcome, &cand) {
            (_, Err(CompileError::Internal { .. })) => {
                return Some((
                    FindingClass::Panic,
                    format!("{}: {}", algo.name(), cand.unwrap_err()),
                ));
            }
            (Some(_), Err(e)) => {
                let class = if expect_wellformed {
                    classify_compile_error(e).0
                } else {
                    FindingClass::Mismatch
                };
                return Some((
                    class,
                    format!("{} rejects what sequential accepts: {e}", algo.name()),
                ));
            }
            (None, Ok(_)) => {
                return Some((
                    FindingClass::Mismatch,
                    format!("{} accepts what sequential rejects", algo.name()),
                ));
            }
            (None, Err(_)) => {} // error-vs-error: agreement
            (Some(want), Ok(art)) => match execute(art) {
                Err(p) => {
                    return Some((FindingClass::Panic, format!("{}: {p}", algo.name())))
                }
                Ok(got) => {
                    if got != *want {
                        return Some((
                            FindingClass::Mismatch,
                            format!(
                                "{} diverges from sequential: {}",
                                algo.name(),
                                diff_outcomes(want, &got)
                            ),
                        ));
                    }
                }
            },
        }
    }
    None
}

fn diff_outcomes(want: &ExecOutcome, got: &ExecOutcome) -> String {
    match (want, got) {
        (ExecOutcome::Halted(a), ExecOutcome::Halted(b)) => {
            for (k, v) in a {
                match b.get(k) {
                    Some(w) if w == v => {}
                    Some(w) => return format!("`{k}` = {v:?} vs {w:?}"),
                    None => return format!("`{k}` missing from candidate state"),
                }
            }
            for k in b.keys() {
                if !a.contains_key(k) {
                    return format!("extra symbol `{k}` in candidate state");
                }
            }
            "states differ".to_string()
        }
        (ExecOutcome::Stopped(a), ExecOutcome::Stopped(b)) => {
            format!("stop class {a} vs {b}")
        }
        (ExecOutcome::Halted(_), ExecOutcome::Stopped(c)) => {
            format!("sequential halts, candidate stops with {c}")
        }
        (ExecOutcome::Stopped(c), ExecOutcome::Halted(_)) => {
            format!("sequential stops with {c}, candidate halts")
        }
    }
}

/// Runs the bare frontend on (possibly malformed) input, returning its
/// raw [`Diagnostic`] so span invariants can be checked. Panics inside
/// the frontend escape to the caller's `catch_unwind`.
pub fn frontend_diag(lang: SourceLang, m: &MachineDesc, src: &str) -> Result<(), Diagnostic> {
    let limits = mcc_lang::FrontendLimits::default();
    match lang {
        SourceLang::Simpl => mcc_simpl::parse_with_limits(src, m, &limits).map(|_| ()),
        SourceLang::Empl => mcc_empl::compile_with_limits(src, &limits).map(|_| ()),
        SourceLang::Sstar => mcc_sstar::parse_with_limits(src, m, &limits).map(|_| ()),
        SourceLang::Yalll => mcc_yalll::parse_with_limits(src, m, &limits).map(|_| ()),
    }
}
