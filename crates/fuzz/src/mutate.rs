//! Byte- and token-level mutation of well-formed programs.
//!
//! The mutator deliberately produces *malformed* variants: the containment
//! oracle then checks that every frontend rejects them with a structured,
//! span-carrying diagnostic instead of panicking, hanging, or truncating.
//! Mutations operate on bytes and repair UTF-8 lossily afterwards, so
//! invalid byte sequences reach the lexers as replacement characters —
//! exactly what `mcc compile` sees when fed arbitrary files.

use rand::{rngs::StdRng, Rng};

/// Applies 1–4 random mutations to `base`.
pub fn mutate(base: &str, rng: &mut StdRng) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1..=4u32) {
        if bytes.is_empty() {
            bytes.push(rng.gen_range(0..=255u64) as u8);
            continue;
        }
        let len = bytes.len();
        match rng.gen_range(0..7u32) {
            // Delete a random range.
            0 => {
                let a = rng.gen_range(0..len);
                let b = (a + rng.gen_range(1..=8usize)).min(len);
                bytes.drain(a..b);
            }
            // Duplicate a random range in place.
            1 => {
                let a = rng.gen_range(0..len);
                let b = (a + rng.gen_range(1..=12usize)).min(len);
                let chunk: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.gen_range(0..=len);
                bytes.splice(at..at, chunk);
            }
            // Flip bits in one byte.
            2 => {
                let i = rng.gen_range(0..len);
                bytes[i] ^= rng.gen_range(1..=255u64) as u8;
            }
            // Insert a random byte (punctuation-biased: parsers care).
            3 => {
                let at = rng.gen_range(0..=len);
                let b = if rng.gen_bool(0.5) {
                    b"();=<>,:+-*/&|"[rng.gen_range(0..14usize)]
                } else {
                    rng.gen_range(0..=255u64) as u8
                };
                bytes.insert(at, b);
            }
            // Truncate.
            4 => {
                bytes.truncate(rng.gen_range(0..len));
            }
            // Swap two ranges.
            5 => {
                let a = rng.gen_range(0..len);
                let b = rng.gen_range(0..len);
                let w = rng.gen_range(1..=4usize);
                for k in 0..w {
                    if a + k < bytes.len() && b + k < bytes.len() {
                        bytes.swap(a + k, b + k);
                    }
                }
            }
            // Splice a keyword-ish token from elsewhere in the input.
            _ => {
                let a = rng.gen_range(0..len);
                let b = (a + rng.gen_range(1..=6usize)).min(len);
                let chunk: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, chunk);
            }
        }
        // Keep mutants bounded: containment, not throughput, is under test.
        bytes.truncate(4096);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}
