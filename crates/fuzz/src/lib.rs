//! mcc-fuzz: differential fuzzing for the whole compilation pipeline.
//!
//! Three cooperating pieces (§2.1.1's "the microprogrammer must be able
//! to trust the translator" turned into an executable criterion):
//!
//! * [`gen`] — seeded, grammar-directed generators that emit well-formed
//!   SIMPL, EMPL, S*, and YALLL programs, plus [`mutate`], which derives
//!   malformed byte-level variants from them.
//! * [`oracle`] — every program is compiled once per compaction
//!   algorithm with [`mcc_compact::Algorithm::Sequential`] as the
//!   reference, executed in `mcc-sim`, and the final architectural state
//!   compared. Divergence, a panic, a budget blowout, or a
//!   diagnostic-quality failure is a *finding*.
//! * [`shrink`] — findings are automatically reduced (line-, statement-,
//!   and token-level delta debugging) while they keep failing.
//!
//! Campaigns are fully deterministic: the per-trial RNG is derived from
//! `(seed, language, trial)` alone, so `mcc fuzz --seed N` reproduces
//! bit-identical findings and the `exp_e10` robustness table is stable.

pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

use std::fmt;

use rand::{rngs::StdRng, SeedableRng};

pub use mcc_core::SourceLang;
use mcc_machine::MachineDesc;

/// What kind of robustness failure a trial exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingClass {
    /// A panic escaped a frontend or pipeline pass (surfaced as
    /// `CompileError::Internal` by the containment boundary).
    Panic,
    /// A generated, guaranteed-terminating program hit the simulator's
    /// cycle budget under the sequential reference.
    Hang,
    /// A compaction algorithm disagreed with the sequential reference:
    /// accept/reject, stop class, or final architectural state.
    Mismatch,
    /// Diagnostic quality: a well-formed program was rejected, or a
    /// malformed one produced an empty message or an out-of-range span.
    Diagnostic,
    /// A resource limit tripped on a well-formed generated program.
    Budget,
}

impl FindingClass {
    /// Every class, in table-column order.
    pub const ALL: [FindingClass; 5] = [
        FindingClass::Panic,
        FindingClass::Hang,
        FindingClass::Mismatch,
        FindingClass::Diagnostic,
        FindingClass::Budget,
    ];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Panic => "panic",
            FindingClass::Hang => "hang",
            FindingClass::Mismatch => "mismatch",
            FindingClass::Diagnostic => "diagnostic",
            FindingClass::Budget => "budget",
        }
    }

    fn index(self) -> usize {
        match self {
            FindingClass::Panic => 0,
            FindingClass::Hang => 1,
            FindingClass::Mismatch => 2,
            FindingClass::Diagnostic => 3,
            FindingClass::Budget => 4,
        }
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reproducible robustness failure.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Failure class.
    pub class: FindingClass,
    /// Frontend under test.
    pub lang: SourceLang,
    /// Trial number within the language (re-derives the RNG).
    pub trial: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The program that triggered it.
    pub program: String,
    /// The shrunk program (equal to `program` when shrinking is off).
    pub shrunk: String,
}

/// Per-frontend finding counts.
#[derive(Debug, Clone)]
pub struct LangReport {
    /// Frontend.
    pub lang: SourceLang,
    /// Trials run.
    pub trials: u64,
    /// Findings per class, indexed like [`FindingClass::ALL`].
    pub counts: [u64; 5],
}

/// A whole campaign's results.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed the campaign ran under.
    pub seed: u64,
    /// One row per frontend.
    pub reports: Vec<LangReport>,
    /// Every finding, in discovery order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Total findings across all frontends and classes.
    pub fn total_findings(&self) -> u64 {
        self.reports.iter().map(|r| r.counts.iter().sum::<u64>()).sum()
    }

    /// Deterministic findings-per-class table (the `exp_e10` payload).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "frontend"));
        for c in FindingClass::ALL {
            out.push_str(&format!("{:>12}", c.name()));
        }
        out.push('\n');
        let mut totals = [0u64; 5];
        for r in &self.reports {
            out.push_str(&format!("{:<10}", r.lang.name()));
            for (i, n) in r.counts.iter().enumerate() {
                totals[i] += n;
                out.push_str(&format!("{n:>12}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<10}", "total"));
        for n in totals {
            out.push_str(&format!("{n:>12}"));
        }
        out.push('\n');
        out
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every trial's RNG derives from it deterministically.
    pub seed: u64,
    /// Trials per frontend.
    pub trials: u64,
    /// Frontends to fuzz.
    pub langs: Vec<SourceLang>,
    /// Target machine.
    pub machine: MachineDesc,
    /// Whether to shrink findings (costs extra oracle runs per finding).
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            trials: 100,
            langs: SourceLang::ALL.to_vec(),
            machine: mcc_machine::machines::hm1(),
            shrink: true,
        }
    }
}

/// Oracle checks per shrink attempt; bounds reduction cost per finding.
const SHRINK_BUDGET: usize = 300;

/// Strips digits so details differing only in positions, block ids, or
/// concrete values still count as "the same finding" while shrinking.
/// Without this a `Diagnostic` finding would happily shrink to the empty
/// program, which is also rejected — just not for the interesting reason.
fn normalized_detail(d: &str) -> String {
    d.chars().filter(|c| !c.is_ascii_digit()).collect()
}

fn trial_rng(seed: u64, lang: SourceLang, trial: u64) -> StdRng {
    // Golden-ratio mixing keeps per-(lang, trial) streams independent of
    // each other while staying a pure function of the inputs.
    let mix = seed
        ^ (lang.name().len() as u64 ^ (lang as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ trial.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    StdRng::seed_from_u64(mix)
}

/// Checks one input through the containment + differential oracle.
///
/// `expect_wellformed` selects the strict path (generated programs must
/// compile, halt, and agree) versus the containment path (mutants may
/// fail, but only with a clean, span-carrying diagnostic, and never
/// divergently).
fn check(
    m: &MachineDesc,
    lang: SourceLang,
    src: &str,
    expect_wellformed: bool,
) -> Option<(FindingClass, String)> {
    if !expect_wellformed {
        // Diagnostic-quality gate on the bare frontend first: a panic or
        // a malformed span here is a finding even if the driver's
        // containment boundary would have masked it.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            oracle::frontend_diag(lang, m, src)
        }));
        match r {
            Err(_) => {
                return Some((
                    FindingClass::Panic,
                    "frontend panicked on malformed input".to_string(),
                ));
            }
            Ok(Err(d)) => {
                if d.message.trim().is_empty() {
                    return Some((
                        FindingClass::Diagnostic,
                        "empty diagnostic message".to_string(),
                    ));
                }
                if d.span.start > d.span.end || d.span.end > src.len() {
                    return Some((
                        FindingClass::Diagnostic,
                        format!(
                            "span {}..{} out of range for {}-byte source",
                            d.span.start,
                            d.span.end,
                            src.len()
                        ),
                    ));
                }
            }
            Ok(Ok(())) => {}
        }
    }
    oracle::run_trial(m, lang, src, expect_wellformed)
}

/// Runs a campaign. Deterministic in `cfg`.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    fuzz_range(cfg, 0, cfg.trials)
}

/// Runs only the trial window `lo..hi` of the campaign `cfg` describes.
///
/// Because each trial's RNG is a pure function of `(seed, lang, trial)`,
/// the window executes exactly the trials the full campaign would, with
/// identical programs and findings — so a campaign can be chunked into
/// independent harness jobs and the per-class counts summed back together
/// without changing a single number. `cfg.trials` is ignored; the window
/// bounds it instead.
pub fn fuzz_range(cfg: &FuzzConfig, lo: u64, hi: u64) -> FuzzReport {
    let mut reports = Vec::new();
    let mut findings = Vec::new();
    for &lang in &cfg.langs {
        let mut counts = [0u64; 5];
        for trial in lo..hi {
            let mut rng = trial_rng(cfg.seed, lang, trial);
            // Even trials: strict differential check of a generated
            // program. Odd trials: containment check of a mutant derived
            // from a fresh generation or the example corpus.
            let (src, wellformed) = if trial % 2 == 0 {
                (gen::generate(lang, &cfg.machine, &mut rng), true)
            } else {
                let base = if trial % 4 == 1 {
                    let ex = gen::examples(lang);
                    ex[(trial as usize / 4) % ex.len()].to_string()
                } else {
                    gen::generate(lang, &cfg.machine, &mut rng)
                };
                (mutate::mutate(&base, &mut rng), false)
            };
            if let Some((class, detail)) = check(&cfg.machine, lang, &src, wellformed) {
                counts[class.index()] += 1;
                let shrunk = if cfg.shrink {
                    let want = normalized_detail(&detail);
                    shrink::shrink(
                        &src,
                        |s| {
                            check(&cfg.machine, lang, s, wellformed)
                                .map(|(c, d)| c == class && normalized_detail(&d) == want)
                                .unwrap_or(false)
                        },
                        SHRINK_BUDGET,
                    )
                } else {
                    src.clone()
                };
                findings.push(Finding {
                    class,
                    lang,
                    trial,
                    detail,
                    program: src,
                    shrunk,
                });
            }
        }
        reports.push(LangReport {
            lang,
            trials: hi.saturating_sub(lo),
            counts,
        });
    }
    FuzzReport {
        seed: cfg.seed,
        reports,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(seed: u64) -> FuzzReport {
        fuzz(&FuzzConfig {
            seed,
            trials: 20,
            ..FuzzConfig::default()
        })
    }

    #[test]
    fn healthy_tree_has_zero_findings() {
        let report = small_campaign(7);
        assert_eq!(
            report.total_findings(),
            0,
            "findings on a healthy tree:\n{}\nfirst: {:?}",
            report.table(),
            report.findings.first().map(|f| (&f.detail, &f.shrunk))
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = small_campaign(42);
        let b = small_campaign(42);
        assert_eq!(a.table(), b.table());
        assert_eq!(a.findings.len(), b.findings.len());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.program, fb.program);
            assert_eq!(fa.detail, fb.detail);
        }
    }

    #[test]
    fn different_seeds_generate_different_programs() {
        let m = mcc_machine::machines::hm1();
        let mut r1 = trial_rng(1, SourceLang::Simpl, 0);
        let mut r2 = trial_rng(2, SourceLang::Simpl, 0);
        assert_ne!(
            gen::generate(SourceLang::Simpl, &m, &mut r1),
            gen::generate(SourceLang::Simpl, &m, &mut r2)
        );
    }

    #[test]
    fn chunked_windows_sum_to_the_full_campaign() {
        let cfg = FuzzConfig {
            seed: 42,
            trials: 20,
            ..FuzzConfig::default()
        };
        let full = fuzz(&cfg);
        let a = fuzz_range(&cfg, 0, 8);
        let b = fuzz_range(&cfg, 8, 20);
        for (i, r) in full.reports.iter().enumerate() {
            let summed: Vec<u64> = (0..5)
                .map(|c| a.reports[i].counts[c] + b.reports[i].counts[c])
                .collect();
            assert_eq!(r.counts.to_vec(), summed, "{} counts", r.lang.name());
        }
        assert_eq!(full.findings.len(), a.findings.len() + b.findings.len());
    }

    #[test]
    fn table_is_well_formed() {
        let report = small_campaign(3);
        let table = report.table();
        assert!(table.contains("frontend"));
        assert!(table.contains("total"));
        for lang in SourceLang::ALL {
            assert!(table.contains(lang.name()));
        }
        for class in FindingClass::ALL {
            assert!(table.contains(class.name()));
        }
    }
}
