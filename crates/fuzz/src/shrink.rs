//! Automatic test-case reduction.
//!
//! Classic delta-debugging at three granularities — whole lines, then
//! `;`-separated statements, then whitespace-separated tokens — each run
//! to a fixpoint. After every candidate removal the oracle predicate is
//! re-run; a removal is kept only if the reduced program still exhibits
//! the original finding. A check budget bounds total oracle invocations
//! so shrinking a pathological case cannot stall the campaign.

/// Reduces `src` while `still_fails` holds, spending at most `max_checks`
/// predicate evaluations. Returns the smallest failing variant found.
pub fn shrink(src: &str, still_fails: impl Fn(&str) -> bool, max_checks: usize) -> String {
    let mut best = src.to_string();
    let mut checks = 0usize;

    // One granularity pass: split, try dropping each piece, re-join.
    let pass = |best: &mut String,
                    checks: &mut usize,
                    split: fn(&str) -> Vec<String>,
                    join: fn(&[String]) -> String| {
        loop {
            let pieces = split(best);
            if pieces.len() <= 1 {
                return;
            }
            let mut removed_any = false;
            let mut i = 0;
            while i < split(best).len() {
                if *checks >= max_checks {
                    return;
                }
                let pieces = split(best);
                let mut candidate: Vec<String> = pieces.clone();
                candidate.remove(i);
                let text = join(&candidate);
                *checks += 1;
                if still_fails(&text) {
                    *best = text;
                    removed_any = true;
                    // Same index now names the next piece.
                } else {
                    i += 1;
                }
            }
            if !removed_any {
                return;
            }
        }
    };

    pass(
        &mut best,
        &mut checks,
        |s| s.lines().map(str::to_string).collect(),
        |p| {
            let mut out = p.join("\n");
            out.push('\n');
            out
        },
    );
    pass(
        &mut best,
        &mut checks,
        |s| s.split_inclusive(';').map(str::to_string).collect(),
        |p| p.concat(),
    );
    pass(
        &mut best,
        &mut checks,
        |s| s.split_whitespace().map(str::to_string).collect(),
        |p| {
            let mut out = p.join(" ");
            out.push('\n');
            out
        },
    );

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_line() {
        let src = "good one\nBAD marker here\ngood two\ngood three\n";
        let out = shrink(src, |s| s.contains("BAD"), 1000);
        assert!(out.contains("BAD"));
        assert!(!out.contains("good"));
    }

    #[test]
    fn result_always_satisfies_predicate() {
        let src = "a; b; NEEDLE; c; d;\nmore lines\n";
        let out = shrink(src, |s| s.contains("NEEDLE"), 1000);
        assert!(out.contains("NEEDLE"));
        assert!(out.len() < src.len());
    }

    #[test]
    fn respects_check_budget() {
        let src = (0..100).map(|i| format!("line {i}\n")).collect::<String>();
        let out = shrink(&src, |s| s.contains("line 99"), 5);
        // With only five checks it cannot fully reduce, but must still fail.
        assert!(out.contains("line 99"));
    }
}
