//! Seeded fault-injection campaigns and dependability classification.
//!
//! The simulator ([`mcc-sim`](mcc_sim)) knows how to *apply* a
//! [`FaultPlan`] and how to detect and recover from what it hits; this
//! crate supplies the other half of a dependability study (§2.1.5's
//! concern that microcode must survive the machine misbehaving under it):
//!
//! * [`FaultSpace`] — the population of injectable sites for one program
//!   on one machine (control-store words and bits, architectural
//!   registers, memory, pages, injection cycles);
//! * [`FaultMix`] + [`sample_fault`] — seeded, reproducible sampling of
//!   single faults from that space;
//! * [`Outcome`] + [`classify`] — mapping each trial's result onto the
//!   classic dependability classes (masked, detected-and-recovered,
//!   silent data corruption, detected halt, hang);
//! * [`run_campaign`] — the driver: N independent single-fault trials,
//!   each executed by a caller-supplied closure, tallied into a
//!   [`CampaignReport`]. Same seed in, same report out.

use mcc_machine::{FileId, MachineDesc, RegRef};
use mcc_sim::{Fault, FaultKind, FaultPlan, SimError, SimStats, MEM_WORDS, PAGE_WORDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The population of fault sites for one program on one machine.
#[derive(Debug, Clone)]
pub struct FaultSpace {
    /// Control store length in words (flattened program).
    pub store_len: u32,
    /// Used bits per control word.
    pub word_bits: u32,
    /// Architectural registers, each with its width in bits.
    pub regs: Vec<(RegRef, u16)>,
    /// Memory addresses eligible for upset (a workload's working set; an
    /// empty range falls back to low memory).
    pub mem_lo: u64,
    /// Exclusive upper bound of the memory target range.
    pub mem_hi: u64,
    /// Faults are injected at a cycle drawn from `[1, cycle_horizon]` —
    /// normally the fault-free run's cycle count, so every trial hits a
    /// *live* program.
    pub cycle_horizon: u64,
}

impl FaultSpace {
    /// Builds the space for a flattened program of `store_len` words on
    /// machine `m`, whose fault-free run takes `cycle_horizon` cycles.
    pub fn new(m: &MachineDesc, store_len: u32, cycle_horizon: u64) -> Self {
        let mut regs = Vec::new();
        for (i, f) in m.files.iter().enumerate() {
            for idx in 0..f.count {
                regs.push((RegRef::new(FileId(i as u16), idx), f.width));
            }
        }
        FaultSpace {
            store_len,
            word_bits: u32::from(m.control_word_bits()).min(128),
            regs,
            mem_lo: 0,
            mem_hi: MEM_WORDS,
            cycle_horizon: cycle_horizon.max(1),
        }
    }
}

/// Relative weights of the fault kinds a campaign draws from. A zero
/// weight excludes that kind entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    /// Single-bit control store upsets.
    pub control: u32,
    /// Register-file upsets.
    pub register: u32,
    /// Main-memory upsets.
    pub memory: u32,
    /// Persistent stuck-at control fields.
    pub stuck: u32,
    /// Page unmappings (exercise the §2.1.5 restart microtrap).
    pub unmap: u32,
}

impl Default for FaultMix {
    /// Control-store upsets dominate (the paper's central store is the
    /// biggest cross-section), with a tail of register, memory, stuck-at
    /// and paging faults.
    fn default() -> Self {
        FaultMix {
            control: 50,
            register: 20,
            memory: 15,
            stuck: 10,
            unmap: 5,
        }
    }
}

impl FaultMix {
    /// Only control-store bit flips (for protected-vs-raw comparisons).
    pub fn control_only() -> Self {
        FaultMix {
            control: 1,
            register: 0,
            memory: 0,
            stuck: 0,
            unmap: 0,
        }
    }

    fn total(&self) -> u32 {
        self.control + self.register + self.memory + self.stuck + self.unmap
    }
}

/// Draws one fault uniformly from `space` according to `mix`.
///
/// # Panics
///
/// Panics when every weight in `mix` is zero, or when `mix` asks for
/// register faults but `space.regs` is empty.
pub fn sample_fault(rng: &mut StdRng, space: &FaultSpace, mix: &FaultMix) -> Fault {
    let total = mix.total();
    assert!(total > 0, "fault mix has no enabled kinds");
    let at_cycle = rng.gen_range(1..=space.cycle_horizon);
    let pick = rng.gen_range(0..total);
    // Cumulative weight boundaries: [0, control) control flips,
    // [control, control+register) register upsets, and so on.
    let reg_hi = mix.control + mix.register;
    let mem_hi = reg_hi + mix.memory;
    let stuck_hi = mem_hi + mix.stuck;
    let kind = if pick < mix.control {
        FaultKind::ControlBitFlip {
            addr: rng.gen_range(0..space.store_len.max(1)),
            bit: rng.gen_range(0..space.word_bits.max(1)) as u8,
        }
    } else if pick < reg_hi {
        let (reg, width) = space.regs[rng.gen_range(0..space.regs.len())];
        FaultKind::RegisterUpset {
            reg,
            bit: rng.gen_range(0..u32::from(width.max(1))) as u8,
        }
    } else if pick < mem_hi {
        let (lo, hi) = if space.mem_lo < space.mem_hi {
            (space.mem_lo, space.mem_hi)
        } else {
            (0, PAGE_WORDS)
        };
        FaultKind::MemoryUpset {
            addr: rng.gen_range(lo..hi),
            bit: rng.gen_range(0..16u32) as u8,
        }
    } else if pick < stuck_hi {
        let lo = rng.gen_range(0..space.word_bits.max(1)) as u8;
        FaultKind::StuckField {
            addr: rng.gen_range(0..space.store_len.max(1)),
            lo,
            width: rng.gen_range(1..=8u32) as u8,
            stuck_one: rng.gen_bool(0.5),
        }
    } else {
        FaultKind::UnmapPage {
            page: rng.gen_range(0..(MEM_WORDS / PAGE_WORDS)),
        }
    };
    Fault { at_cycle, kind }
}

/// Dependability classes for one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The run completed with the correct result and no recovery was
    /// needed — the fault had no architectural effect.
    Masked,
    /// The run completed correctly *because* detection and
    /// restart-from-checkpoint recovery intervened.
    Recovered,
    /// The machine stopped in a defined error state (machine check,
    /// undecodable word, off-end, stack underflow) instead of producing
    /// wrong data.
    DetectedHalt,
    /// The watchdog (or the blunt cycle budget) caught a runaway — the
    /// program never reached its halt.
    Hang,
    /// Silent data corruption: the run "succeeded" with a wrong result.
    /// The class a dependable design must drive toward zero.
    Sdc,
}

impl Outcome {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Recovered => "recovered",
            Outcome::DetectedHalt => "detected-halt",
            Outcome::Hang => "hang",
            Outcome::Sdc => "SDC",
        }
    }
}

/// Classifies one trial. `correct` reports whether the observable result
/// matched the fault-free reference (only consulted when the run
/// completed).
pub fn classify(result: &Result<SimStats, SimError>, correct: bool) -> Outcome {
    match result {
        Ok(stats) => {
            if !correct {
                Outcome::Sdc
            } else if stats.fault_recoveries > 0 {
                Outcome::Recovered
            } else {
                Outcome::Masked
            }
        }
        Err(SimError::WatchdogExpired(_)) | Err(SimError::CycleLimit(_)) => Outcome::Hang,
        Err(
            SimError::MachineCheck(_)
            | SimError::BadInstr(_)
            | SimError::OffEnd(_)
            | SimError::StackUnderflow,
        ) => Outcome::DetectedHalt,
    }
}

/// Per-class counts for a finished campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// No architectural effect.
    pub masked: u64,
    /// Detected and recovered to a correct result.
    pub recovered: u64,
    /// Stopped in a defined error state.
    pub detected_halt: u64,
    /// Caught looping by the watchdog or cycle budget.
    pub hang: u64,
    /// Completed with a wrong result.
    pub sdc: u64,
}

impl Tally {
    /// Adds one outcome.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Recovered => self.recovered += 1,
            Outcome::DetectedHalt => self.detected_halt += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::Sdc => self.sdc += 1,
        }
    }

    /// Total trials tallied.
    pub fn total(&self) -> u64 {
        self.masked + self.recovered + self.detected_halt + self.hang + self.sdc
    }

    /// Fraction of trials that did *not* end in silent data corruption —
    /// the headline dependability number.
    pub fn coverage(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            1.0 - (self.sdc as f64) / (t as f64)
        }
    }
}

/// One recorded trial.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Trial index (also the per-trial RNG offset).
    pub trial: usize,
    /// The fault injected.
    pub fault: Fault,
    /// How the run ended.
    pub outcome: Outcome,
}

/// A finished campaign: the tally plus every trial for drill-down.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-class counts.
    pub tally: Tally,
    /// All trials in injection order.
    pub trials: Vec<TrialRecord>,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Master seed; the entire campaign is a pure function of it.
    pub seed: u64,
    /// Number of independent single-fault trials.
    pub trials: usize,
    /// Which faults to draw.
    pub mix: FaultMix,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            seed: 0xC0FFEE,
            trials: 1000,
            mix: FaultMix::default(),
        }
    }
}

/// Runs a campaign: for each trial, samples one fault, hands the
/// single-fault plan to `exec` (which compiles nothing — it just runs the
/// prepared simulator against the plan and reports the raw result plus
/// whether the observable answer was correct), and classifies.
///
/// Determinism: the sampler is seeded from `spec.seed` alone, and trials
/// are executed in order, so the same spec and the same `exec` behaviour
/// yield an identical report.
pub fn run_campaign<F>(spec: &CampaignSpec, space: &FaultSpace, mut exec: F) -> CampaignReport
where
    F: FnMut(FaultPlan) -> (Result<SimStats, SimError>, bool),
{
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut tally = Tally::default();
    let mut trials = Vec::with_capacity(spec.trials);
    for trial in 0..spec.trials {
        let fault = sample_fault(&mut rng, space, &spec.mix);
        let plan = FaultPlan {
            faults: vec![fault],
        };
        let (result, correct) = exec(plan);
        let outcome = classify(&result, correct);
        tally.add(outcome);
        trials.push(TrialRecord {
            trial,
            fault,
            outcome,
        });
    }
    CampaignReport { tally, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;

    fn space() -> FaultSpace {
        FaultSpace::new(&hm1(), 32, 500)
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = space();
        let mix = FaultMix::default();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|_| sample_fault(&mut rng, &s, &mix))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds, different faults");
    }

    #[test]
    fn sampled_faults_stay_in_bounds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let f = sample_fault(&mut rng, &s, &FaultMix::default());
            assert!(f.at_cycle >= 1 && f.at_cycle <= s.cycle_horizon);
            match f.kind {
                FaultKind::ControlBitFlip { addr, bit } => {
                    assert!(addr < s.store_len);
                    assert!(u32::from(bit) < s.word_bits);
                }
                FaultKind::RegisterUpset { reg, bit } => {
                    let (_, w) = s.regs.iter().find(|(r, _)| *r == reg).expect("known reg");
                    assert!(u16::from(bit) < *w);
                }
                FaultKind::MemoryUpset { addr, bit } => {
                    assert!(addr < MEM_WORDS);
                    assert!(bit < 16);
                }
                FaultKind::StuckField { addr, lo, width, .. } => {
                    assert!(addr < s.store_len);
                    assert!(u32::from(lo) < s.word_bits);
                    assert!((1..=8).contains(&width));
                }
                FaultKind::UnmapPage { page } => {
                    assert!(page < MEM_WORDS / PAGE_WORDS);
                }
            }
        }
    }

    #[test]
    fn mix_weights_select_kinds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let f = sample_fault(&mut rng, &s, &FaultMix::control_only());
            assert!(matches!(f.kind, FaultKind::ControlBitFlip { .. }));
        }
    }

    #[test]
    fn classification_covers_every_ending() {
        let ok = |recoveries| {
            Ok(SimStats {
                fault_recoveries: recoveries,
                ..Default::default()
            })
        };
        assert_eq!(classify(&ok(0), true), Outcome::Masked);
        assert_eq!(classify(&ok(2), true), Outcome::Recovered);
        assert_eq!(classify(&ok(0), false), Outcome::Sdc);
        assert_eq!(
            classify(&Err(SimError::WatchdogExpired(64)), true),
            Outcome::Hang
        );
        assert_eq!(classify(&Err(SimError::CycleLimit(1000)), true), Outcome::Hang);
        assert_eq!(
            classify(&Err(SimError::MachineCheck("persistent".into())), true),
            Outcome::DetectedHalt
        );
        assert_eq!(
            classify(&Err(SimError::BadInstr("undecodable".into())), true),
            Outcome::DetectedHalt
        );
    }

    #[test]
    fn tally_totals_and_coverage() {
        let mut t = Tally::default();
        for o in [
            Outcome::Masked,
            Outcome::Masked,
            Outcome::Recovered,
            Outcome::Sdc,
        ] {
            t.add(o);
        }
        assert_eq!(t.total(), 4);
        assert!((t.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn campaign_is_reproducible_and_complete() {
        let s = space();
        let spec = CampaignSpec {
            seed: 99,
            trials: 50,
            ..Default::default()
        };
        // A fake executor keyed off the fault so outcomes vary: the report
        // must still be a pure function of the seed.
        let exec = |plan: FaultPlan| {
            let f = plan.faults[0];
            match f.kind {
                FaultKind::ControlBitFlip { bit, .. } if bit % 3 == 0 => {
                    (Err(SimError::MachineCheck("x".into())), false)
                }
                FaultKind::RegisterUpset { .. } => (Ok(SimStats::default()), false),
                _ => (Ok(SimStats::default()), true),
            }
        };
        let a = run_campaign(&spec, &s, exec);
        let b = run_campaign(&spec, &s, exec);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.tally.total(), 50);
        assert_eq!(a.trials.len(), 50);
        assert!(a
            .trials
            .iter()
            .zip(&b.trials)
            .all(|(x, y)| x.fault == y.fault && x.outcome == y.outcome));
    }
}
