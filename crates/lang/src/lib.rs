//! # `mcc-lang` — shared frontend infrastructure
//!
//! Source positions, diagnostics and a character cursor used by all four
//! language frontends (SIMPL, EMPL, S\*, YALLL). Each language keeps its
//! own lexer — their token vocabularies are from different decades of
//! language design — but they share the plumbing.

/// A byte span in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// A diagnostic: message plus location (resolved to line/column on demand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic against the source as `line:col: message`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        format!("{line}:{col}: {}", self.message)
    }

    /// Renders the diagnostic with a caret-underlined source excerpt:
    ///
    /// ```text
    /// 3:9: expected `->`
    ///    3 | R1 + + R2 -> R3;
    ///      |         ^
    /// ```
    ///
    /// Out-of-range spans (possible when a diagnostic survives a source
    /// edit, or points at end-of-input) degrade to the plain
    /// [`render`](Self::render) form rather than panicking.
    pub fn render_excerpt(&self, source: &str) -> String {
        let head = self.render(source);
        let start = self.span.start.min(source.len());
        let (line, col) = line_col(source, start);
        let Some(text) = source.lines().nth(line - 1) else {
            return head;
        };
        // Width of the underline: the span's extent within this line,
        // measured in characters, at least one caret.
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let in_line = start - line_start;
        let line_rest = text.len().saturating_sub(in_line);
        let span_len = self.span.end.saturating_sub(start).clamp(1, line_rest.max(1));
        let carets: usize = text
            .get(in_line..)
            .unwrap_or("")
            .char_indices()
            .take_while(|(i, _)| *i < span_len)
            .count()
            .max(1);
        format!(
            "{head}\n{line:>5} | {text}\n      | {spaces}{carets}",
            spaces = " ".repeat(col - 1),
            carets = "^".repeat(carets),
        )
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// 1-based line/column of a byte offset.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A character cursor over source text, with the helpers every
/// hand-written lexer needs.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts at the beginning of `src`.
    pub fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The full source.
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// Next character without consuming.
    pub fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Character after next, without consuming.
    pub fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes `c` if it is next; returns whether it did.
    pub fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the literal `s` if it is next (case-sensitive).
    pub fn eat_str(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Consumes characters while `f` holds, returning the consumed slice.
    pub fn take_while(&mut self, mut f: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            self.bump();
        }
        &self.src[start..self.pos]
    }

    /// Skips ASCII whitespace.
    pub fn skip_ws(&mut self) {
        self.take_while(|c| c.is_whitespace());
    }

    /// Skips whitespace and line comments starting with `marker`.
    pub fn skip_ws_and_line_comments(&mut self, marker: &str) {
        loop {
            self.skip_ws();
            if self.src[self.pos..].starts_with(marker) {
                self.take_while(|c| c != '\n');
            } else {
                break;
            }
        }
    }

    /// Whether the cursor is at end of input.
    pub fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }
}

/// Parses an integer literal in the notations the 1970s languages share:
/// decimal, `0x`/`0o`/`0b` prefixes, and a trailing `H`/`B` suffix form.
pub fn parse_int(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        return u64::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        return u64::from_str_radix(bin, 2).ok();
    }
    if let Some(hex) = t.strip_suffix('H').or_else(|| t.strip_suffix('h')) {
        if hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return u64::from_str_radix(hex, 16).ok();
        }
    }
    if let Some(bin) = t.strip_suffix('B').or_else(|| t.strip_suffix('b')) {
        if bin.chars().all(|c| c == '0' || c == '1') {
            return u64::from_str_radix(bin, 2).ok();
        }
    }
    t.parse().ok()
}

/// Resource limits every frontend enforces while lexing and parsing, so
/// that arbitrary (including adversarial) input always terminates with a
/// structured [`Diagnostic`] — never a hang, stack overflow, or OOM.
///
/// The limits are deterministic counts, not timeouts: the same input
/// exhausts the same budget on every machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendLimits {
    /// Largest accepted source text, in bytes.
    pub max_source_bytes: usize,
    /// Token budget: lexing stops with a diagnostic after this many tokens.
    pub max_tokens: usize,
    /// Maximum statement/expression nesting depth in recursive-descent
    /// parsers (bounds native stack use; overflow would abort, not unwind).
    pub max_depth: usize,
}

impl Default for FrontendLimits {
    fn default() -> Self {
        FrontendLimits {
            max_source_bytes: 1 << 20,
            max_tokens: 500_000,
            max_depth: 64,
        }
    }
}

impl FrontendLimits {
    /// Checks the source size budget.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] naming the limit when the text is too large.
    pub fn check_source(&self, src: &str) -> Result<(), Diagnostic> {
        if src.len() > self.max_source_bytes {
            return Err(Diagnostic::new(
                format!(
                    "source of {} bytes exceeds the {}-byte limit",
                    src.len(),
                    self.max_source_bytes
                ),
                Span::new(0, 0),
            ));
        }
        Ok(())
    }
}

/// A deterministic decrementing budget over a discrete resource: simulator
/// cycles, watchdog cycles-without-a-poll, harness retry attempts. One type
/// shared by `mcc-sim`, `mcc-fuzz`, and `mcc-harness` so the toolkit's hang
/// and exhaustion thresholds are counted the same way everywhere and cannot
/// drift apart. Budgets are counts, never wall-clock: the same input
/// exhausts the same budget on every machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    limit: u64,
    spent: u64,
}

impl Budget {
    /// The toolkit-wide default simulator cycle ceiling. The fuzz oracle's
    /// hang detection and `SimOptions::default()` both use this value, so
    /// "hang" means the same thing to the simulator and the fuzzer.
    pub const DEFAULT_SIM_CYCLES: u64 = 1_000_000;

    /// A fresh budget of `limit` ticks.
    pub const fn new(limit: u64) -> Self {
        Budget { limit, spent: 0 }
    }

    /// The toolkit-default simulation cycle budget.
    pub const fn sim_cycles() -> Self {
        Budget::new(Self::DEFAULT_SIM_CYCLES)
    }

    /// The configured ceiling.
    pub const fn limit(&self) -> u64 {
        self.limit
    }

    /// Ticks spent so far.
    pub const fn spent(&self) -> u64 {
        self.spent
    }

    /// Ticks remaining before exhaustion.
    pub const fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent)
    }

    /// Whether the budget is exhausted.
    pub const fn exhausted(&self) -> bool {
        self.spent >= self.limit
    }

    /// Spends one tick. Returns `false` once the budget is exhausted (the
    /// tick that would cross the ceiling is refused, so a caller can treat
    /// `false` as "stop now" without overshooting).
    pub fn tick(&mut self) -> bool {
        if self.spent >= self.limit {
            return false;
        }
        self.spent += 1;
        true
    }

    /// Resets the spent count to zero (a watchdog "pet").
    pub fn reset(&mut self) {
        self.spent = 0;
    }
}

/// A decrementing token budget for lexers; see [`FrontendLimits::max_tokens`].
#[derive(Debug, Clone)]
pub struct TokenBudget {
    left: usize,
}

impl TokenBudget {
    /// A budget of `limits.max_tokens` ticks.
    pub fn new(limits: &FrontendLimits) -> Self {
        TokenBudget {
            left: limits.max_tokens,
        }
    }

    /// Spends one token.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] at `span` once the budget is exhausted.
    pub fn tick(&mut self, span: Span) -> Result<(), Diagnostic> {
        if self.left == 0 {
            return Err(Diagnostic::new("token budget exceeded", span));
        }
        self.left -= 1;
        Ok(())
    }
}

/// A recursion-depth guard for recursive-descent parsers; see
/// [`FrontendLimits::max_depth`]. Call [`enter`](Self::enter) at the top
/// of each recursive production and [`leave`](Self::leave) on its success
/// path (error paths abort the whole parse, so leaks there are harmless).
#[derive(Debug, Clone)]
pub struct DepthGuard {
    depth: usize,
    max: usize,
}

impl DepthGuard {
    /// A guard allowing `limits.max_depth` nested levels.
    pub fn new(limits: &FrontendLimits) -> Self {
        DepthGuard {
            depth: 0,
            max: limits.max_depth,
        }
    }

    /// Descends one level.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] at `span` when nesting exceeds the limit.
    pub fn enter(&mut self, span: Span) -> Result<(), Diagnostic> {
        self.depth += 1;
        if self.depth > self.max {
            return Err(Diagnostic::new(
                format!("nesting deeper than {} levels", self.max),
                span,
            ));
        }
        Ok(())
    }

    /// Ascends one level.
    pub fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_renders_caret_under_span() {
        let src = "line one\nR1 ++ R2\nline three\n";
        let d = Diagnostic::new("bad op", Span::new(12, 14));
        let r = d.render_excerpt(src);
        assert_eq!(r, "2:4: bad op\n    2 | R1 ++ R2\n      |    ^^");
    }

    #[test]
    fn excerpt_survives_out_of_range_spans() {
        let src = "x";
        let d = Diagnostic::new("eof", Span::new(900, 901));
        // Clamped to end-of-input; must not panic.
        let r = d.render_excerpt(src);
        assert!(r.starts_with("1:2: eof"), "{r}");
        let r = d.render_excerpt("");
        assert_eq!(r, "1:1: eof");
    }

    #[test]
    fn excerpt_handles_multibyte_lines() {
        let src = "é é é\nfoo";
        let d = Diagnostic::new("m", Span::new(3, 5));
        // Span covers the middle `é` (2 bytes → 1 caret).
        let r = d.render_excerpt(src);
        assert!(r.contains("| é é é"), "{r}");
        assert!(r.ends_with("^"), "{r}");
    }

    #[test]
    fn budget_ticks_and_resets() {
        let mut b = Budget::new(3);
        assert_eq!(b.limit(), 3);
        assert!(b.tick() && b.tick());
        assert_eq!(b.remaining(), 1);
        assert!(!b.exhausted());
        assert!(b.tick());
        assert!(b.exhausted());
        // The crossing tick is refused, not overshot.
        assert!(!b.tick());
        assert_eq!(b.spent(), 3);
        b.reset();
        assert_eq!(b.spent(), 0);
        assert!(b.tick());
        assert_eq!(Budget::sim_cycles().limit(), Budget::DEFAULT_SIM_CYCLES);
    }

    #[test]
    fn zero_budget_is_born_exhausted() {
        let mut b = Budget::new(0);
        assert!(b.exhausted());
        assert!(!b.tick());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn token_budget_exhausts_exactly() {
        let limits = FrontendLimits {
            max_tokens: 2,
            ..FrontendLimits::default()
        };
        let mut b = TokenBudget::new(&limits);
        assert!(b.tick(Span::default()).is_ok());
        assert!(b.tick(Span::default()).is_ok());
        let e = b.tick(Span::new(5, 6)).unwrap_err();
        assert!(e.message.contains("token budget"));
        assert_eq!(e.span.start, 5);
    }

    #[test]
    fn depth_guard_limits_nesting() {
        let limits = FrontendLimits {
            max_depth: 3,
            ..FrontendLimits::default()
        };
        let mut g = DepthGuard::new(&limits);
        for _ in 0..3 {
            g.enter(Span::default()).unwrap();
        }
        assert!(g.enter(Span::default()).is_err());
        g.leave();
        g.leave();
        assert!(g.enter(Span::default()).is_ok());
    }

    #[test]
    fn source_size_check() {
        let limits = FrontendLimits {
            max_source_bytes: 4,
            ..FrontendLimits::default()
        };
        assert!(limits.check_source("abcd").is_ok());
        assert!(limits.check_source("abcde").is_err());
    }

    #[test]
    fn spans_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 6), (3, 1));
    }

    #[test]
    fn diagnostic_renders_position() {
        let src = "x\nyz";
        let d = Diagnostic::new("bad thing", Span::new(3, 4));
        assert_eq!(d.render(src), "2:2: bad thing");
    }

    #[test]
    fn cursor_basics() {
        let mut c = Cursor::new("ab cd");
        assert_eq!(c.peek(), Some('a'));
        assert_eq!(c.peek2(), Some('b'));
        assert_eq!(c.bump(), Some('a'));
        assert!(c.eat('b'));
        c.skip_ws();
        assert_eq!(c.take_while(|ch| ch.is_alphabetic()), "cd");
        assert!(c.at_end());
    }

    #[test]
    fn cursor_comments() {
        let mut c = Cursor::new("  ; note\n  x");
        c.skip_ws_and_line_comments(";");
        assert_eq!(c.peek(), Some('x'));
    }

    #[test]
    fn eat_str_advances_only_on_match() {
        let mut c = Cursor::new("begin end");
        assert!(c.eat_str("begin"));
        assert!(!c.eat_str("begin"));
        c.skip_ws();
        assert!(c.eat_str("end"));
    }

    #[test]
    fn int_formats() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("0x2A"), Some(42));
        assert_eq!(parse_int("0o52"), Some(42));
        assert_eq!(parse_int("0b101010"), Some(42));
        assert_eq!(parse_int("2AH"), Some(42));
        assert_eq!(parse_int("101010B"), Some(42));
        assert_eq!(parse_int("nope"), None);
    }
}
