//! # `mcc-verify` — firmware verification
//!
//! §2.1.1 of Sint's survey: "verification of microprograms has received
//! more attention than verification of macroprograms … microprograms are
//! small and simple in comparison with macroprograms. The first two facts
//! make verification attractive; the last one makes it feasible as well."
//! This crate supplies the verification machinery of Strum and the S\*
//! design: a bitvector expression/predicate language, Hoare triples over
//! straight-line assignment sequences via **weakest preconditions**, and a
//! checker that is *exhaustive* for small state spaces and randomised for
//! large ones.
//!
//! The semantics is width-parametric, so S\*'s instantiation story — the
//! `INC X` rule specialised to a 16-bit machine must account for overflow —
//! falls out naturally:
//!
//! ```
//! use mcc_verify::{check_triple, parse_pred, Assign, Expr, Verdict};
//!
//! // { X = 32767 } INC X { X = -32768 }  (as unsigned 16-bit: 32768)
//! let pre = parse_pred("x = 32767").unwrap();
//! let post = parse_pred("x = 32768").unwrap();
//! let inc = Assign::new("x", Expr::add(Expr::var("x"), Expr::konst(1)));
//! assert_eq!(check_triple(&pre, &[inc], &post, 16), Verdict::Valid);
//! ```

use std::collections::{BTreeMap, BTreeSet};

/// Binary bitvector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (amount taken mod width from the rhs value).
    Shl,
    /// Logical shift right.
    Shr,
}

/// A bitvector expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// A named variable.
    Var(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Bitwise complement.
    Not(Box<Expr>),
}

// Constructor shorthands share names with `std::ops` trait methods on
// purpose: `Expr::add(a, b)` builds syntax, it does not compute.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A constant.
    pub fn konst(v: u64) -> Expr {
        Expr::Const(v)
    }

    /// A variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a & b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(a), Box::new(b))
    }

    /// `a | b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(a), Box::new(b))
    }

    /// `a ^ b`.
    pub fn xor(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Xor, Box::new(a), Box::new(b))
    }

    /// `a << n`.
    pub fn shl(a: Expr, n: u64) -> Expr {
        Expr::Bin(BinOp::Shl, Box::new(a), Box::new(Expr::Const(n)))
    }

    /// `a >> n`.
    pub fn shr(a: Expr, n: u64) -> Expr {
        Expr::Bin(BinOp::Shr, Box::new(a), Box::new(Expr::Const(n)))
    }

    /// Evaluates under `env`, wrapping to `width` bits. Unbound variables
    /// evaluate to 0.
    pub fn eval(&self, env: &BTreeMap<String, u64>, width: u16) -> u64 {
        let mask = mask(width);
        match self {
            Expr::Const(v) => v & mask,
            Expr::Var(n) => env.get(n).copied().unwrap_or(0) & mask,
            Expr::Not(e) => !e.eval(env, width) & mask,
            Expr::Bin(op, a, b) => {
                let a = a.eval(env, width);
                let b = b.eval(env, width);
                let r = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => {
                        if b >= width as u64 {
                            0
                        } else {
                            a << b
                        }
                    }
                    BinOp::Shr => {
                        if b >= width as u64 {
                            0
                        } else {
                            a >> b
                        }
                    }
                };
                r & mask
            }
        }
    }

    /// Substitutes `expr` for every occurrence of `var`.
    pub fn subst(&self, var: &str, expr: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(n) if n == var => expr.clone(),
            Expr::Var(_) => self.clone(),
            Expr::Not(e) => Expr::Not(Box::new(e.subst(var, expr))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.subst(var, expr)),
                Box::new(b.subst(var, expr)),
            ),
        }
    }

    fn vars_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(n) => {
                out.insert(n.clone());
            }
            Expr::Not(e) => e.vars_into(out),
            Expr::Bin(_, a, b) => {
                a.vars_into(out);
                b.vars_into(out);
            }
        }
    }
}

/// Comparison operators (unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A predicate over bitvector expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// A comparison.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Implication.
    Implies(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Pred {
        Pred::Cmp(CmpOp::Eq, a, b)
    }

    /// Conjunction of two predicates.
    pub fn and(a: Pred, b: Pred) -> Pred {
        Pred::And(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Pred, b: Pred) -> Pred {
        Pred::Implies(Box::new(a), Box::new(b))
    }

    /// Evaluates the predicate under `env` at `width` bits.
    pub fn eval(&self, env: &BTreeMap<String, u64>, width: u16) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(op, a, b) => {
                let a = a.eval(env, width);
                let b = b.eval(env, width);
                match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }
            }
            Pred::And(a, b) => a.eval(env, width) && b.eval(env, width),
            Pred::Or(a, b) => a.eval(env, width) || b.eval(env, width),
            Pred::Not(a) => !a.eval(env, width),
            Pred::Implies(a, b) => !a.eval(env, width) || b.eval(env, width),
        }
    }

    /// Substitutes `expr` for `var` everywhere.
    pub fn subst(&self, var: &str, expr: &Expr) -> Pred {
        match self {
            Pred::True | Pred::False => self.clone(),
            Pred::Cmp(op, a, b) => Pred::Cmp(*op, a.subst(var, expr), b.subst(var, expr)),
            Pred::And(a, b) => Pred::And(
                Box::new(a.subst(var, expr)),
                Box::new(b.subst(var, expr)),
            ),
            Pred::Or(a, b) => Pred::Or(
                Box::new(a.subst(var, expr)),
                Box::new(b.subst(var, expr)),
            ),
            Pred::Not(a) => Pred::Not(Box::new(a.subst(var, expr))),
            Pred::Implies(a, b) => Pred::Implies(
                Box::new(a.subst(var, expr)),
                Box::new(b.subst(var, expr)),
            ),
        }
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.vars_into(&mut out);
        out
    }

    fn vars_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(_, a, b) => {
                a.vars_into(out);
                b.vars_into(out);
            }
            Pred::And(a, b) | Pred::Or(a, b) | Pred::Implies(a, b) => {
                a.vars_into(out);
                b.vars_into(out);
            }
            Pred::Not(a) => a.vars_into(out),
        }
    }
}

/// One assignment `var := expr` of a straight-line segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// The assigned variable.
    pub var: String,
    /// The right-hand side.
    pub expr: Expr,
}

impl Assign {
    /// Creates an assignment.
    pub fn new(var: impl Into<String>, expr: Expr) -> Self {
        Assign {
            var: var.into(),
            expr,
        }
    }
}

/// The weakest precondition of a straight-line assignment sequence with
/// respect to `post`: substitute backwards, Hoare/Dijkstra style.
pub fn wp(assigns: &[Assign], post: &Pred) -> Pred {
    let mut p = post.clone();
    for a in assigns.iter().rev() {
        p = p.subst(&a.var, &a.expr);
    }
    p
}

/// Outcome of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Exhaustively proven valid.
    Valid,
    /// No counterexample among the random samples (state space too big
    /// for exhaustion).
    ProbablyValid {
        /// How many assignments were sampled.
        samples: u64,
    },
    /// A counterexample was found.
    Invalid {
        /// The falsifying assignment.
        env: BTreeMap<String, u64>,
    },
}

/// Budget: exhaust at most this many environments before sampling.
const EXHAUSTIVE_LIMIT: u128 = 1 << 20;
/// Random samples when exhausting is infeasible.
const SAMPLES: u64 = 20_000;

/// Checks whether `p` holds for **all** variable assignments at `width`
/// bits: exhaustively when the state space is small, by seeded random
/// sampling otherwise.
pub fn check_valid(p: &Pred, width: u16) -> Verdict {
    let vars: Vec<String> = p.vars().into_iter().collect();
    let space: u128 = (1u128 << width.min(64)).saturating_pow(vars.len() as u32);
    if vars.is_empty() {
        return if p.eval(&BTreeMap::new(), width) {
            Verdict::Valid
        } else {
            Verdict::Invalid {
                env: BTreeMap::new(),
            }
        };
    }
    if space <= EXHAUSTIVE_LIMIT {
        let n = 1u64 << width;
        let mut idx = vec![0u64; vars.len()];
        loop {
            let env: BTreeMap<String, u64> = vars
                .iter()
                .cloned()
                .zip(idx.iter().copied())
                .collect();
            if !p.eval(&env, width) {
                return Verdict::Invalid { env };
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return Verdict::Valid;
                }
                idx[k] += 1;
                if idx[k] < n {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
    // Random sampling with a fixed-seed xorshift (deterministic runs).
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mask = mask(width);
    // Bias toward boundary values, which is where bitvector identities die.
    let boundary = [0u64, 1, 2, mask, mask - 1, mask >> 1, (mask >> 1) + 1];
    for i in 0..SAMPLES {
        let env: BTreeMap<String, u64> = vars
            .iter()
            .map(|v| {
                let x = if i % 4 == 0 {
                    boundary[(next() % boundary.len() as u64) as usize]
                } else {
                    next() & mask
                };
                (v.clone(), x)
            })
            .collect();
        if !p.eval(&env, width) {
            return Verdict::Invalid { env };
        }
    }
    Verdict::ProbablyValid { samples: SAMPLES }
}

/// Checks the Hoare triple `{pre} assigns {post}` at `width` bits by
/// validity of `pre ⇒ wp(assigns, post)`.
pub fn check_triple(pre: &Pred, assigns: &[Assign], post: &Pred, width: u16) -> Verdict {
    let goal = Pred::implies(pre.clone(), wp(assigns, post));
    check_valid(&goal, width)
}

fn mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

// --------------------------------------------------------------- parser --

/// Parses a predicate, e.g. `x + 1 = y and (z < 3 or not (y = 0))`.
///
/// Grammar (loosest binding first): `=>` (implies), `or`, `and`, `not`,
/// comparisons `= <> < <= > >=`, then expressions with `+ -` over
/// `& | ^ << >>` over atoms (numbers, identifiers, `~atom`, parens).
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse_pred(src: &str) -> Result<Pred, String> {
    let toks = tokenize(src)?;
    let mut p = PParser { toks, pos: 0 };
    let pred = p.implies()?;
    if p.pos != p.toks.len() {
        return Err(format!("trailing input at token {}", p.pos));
    }
    Ok(pred)
}

/// Parses an expression, e.g. `(x & 255) << 8`.
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse_expr(src: &str) -> Result<Expr, String> {
    let toks = tokenize(src)?;
    let mut p = PParser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(format!("trailing input at token {}", p.pos));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum T {
    Num(u64),
    Ident(String),
    Sym(String),
}

fn tokenize(src: &str) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    let mut c = mcc_lang::Cursor::new(src);
    loop {
        c.skip_ws();
        let Some(ch) = c.peek() else { break };
        if ch.is_ascii_digit() {
            let w = c.take_while(|x| x.is_alphanumeric());
            let v = mcc_lang::parse_int(w).ok_or_else(|| format!("bad number `{w}`"))?;
            out.push(T::Num(v));
        } else if ch.is_alphabetic() || ch == '_' {
            let w = c.take_while(|x| x.is_alphanumeric() || x == '_');
            out.push(T::Ident(w.to_ascii_lowercase()));
        } else {
            let mut matched = false;
            for s in ["=>", "<>", "<=", ">=", "<<", ">>"] {
                if c.eat_str(s) {
                    out.push(T::Sym(s.into()));
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            match c.peek() {
                Some(x @ ('=' | '<' | '>' | '~' | '&' | '|' | '^' | '+' | '-' | '(' | ')')) => {
                    c.bump();
                    out.push(T::Sym(x.to_string()));
                }
                Some(other) => return Err(format!("unexpected character `{other}`")),
                None => {}
            }
        }
    }
    Ok(out)
}

struct PParser {
    toks: Vec<T>,
    pos: usize,
}

impl PParser {
    fn peek(&self) -> Option<&T> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(T::Sym(x)) if x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Some(T::Ident(x)) if x == w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn implies(&mut self) -> Result<Pred, String> {
        let a = self.disj()?;
        if self.eat_sym("=>") {
            let b = self.implies()?;
            return Ok(Pred::Implies(Box::new(a), Box::new(b)));
        }
        Ok(a)
    }

    fn disj(&mut self) -> Result<Pred, String> {
        let mut a = self.conj()?;
        while self.eat_ident("or") {
            let b = self.conj()?;
            a = Pred::Or(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn conj(&mut self) -> Result<Pred, String> {
        let mut a = self.negp()?;
        while self.eat_ident("and") {
            let b = self.negp()?;
            a = Pred::And(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn negp(&mut self) -> Result<Pred, String> {
        if self.eat_ident("not") {
            return Ok(Pred::Not(Box::new(self.negp()?)));
        }
        if self.eat_ident("true") {
            return Ok(Pred::True);
        }
        if self.eat_ident("false") {
            return Ok(Pred::False);
        }
        // Parenthesised predicate? Try with backtracking.
        if matches!(self.peek(), Some(T::Sym(s)) if s == "(") {
            let save = self.pos;
            self.pos += 1;
            if let Ok(p) = self.implies() {
                if self.eat_sym(")") {
                    // Could still be an expression used in a comparison —
                    // only if a relop follows; predicates are not operands.
                    if !matches!(self.peek(), Some(T::Sym(s)) if ["=","<>","<","<=",">",">="].contains(&s.as_str()))
                    {
                        return Ok(p);
                    }
                }
            }
            self.pos = save;
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Pred, String> {
        let a = self.expr()?;
        let op = match self.peek() {
            Some(T::Sym(s)) => match s.as_str() {
                "=" => CmpOp::Eq,
                "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return Err(format!("expected relational operator, got `{s}`")),
            },
            other => return Err(format!("expected relational operator, got {other:?}")),
        };
        self.pos += 1;
        let b = self.expr()?;
        Ok(Pred::Cmp(op, a, b))
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut a = self.term()?;
        loop {
            if self.eat_sym("+") {
                a = Expr::add(a, self.term()?);
            } else if self.eat_sym("-") {
                a = Expr::sub(a, self.term()?);
            } else {
                return Ok(a);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut a = self.atom()?;
        loop {
            if self.eat_sym("&") {
                a = Expr::and(a, self.atom()?);
            } else if self.eat_sym("|") {
                a = Expr::or(a, self.atom()?);
            } else if self.eat_sym("^") {
                a = Expr::xor(a, self.atom()?);
            } else if self.eat_sym("<<") {
                let n = self.number()?;
                a = Expr::shl(a, n);
            } else if self.eat_sym(">>") {
                let n = self.number()?;
                a = Expr::shr(a, n);
            } else {
                return Ok(a);
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        match self.peek() {
            Some(T::Num(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn atom(&mut self) -> Result<Expr, String> {
        match self.peek().cloned() {
            Some(T::Num(v)) => {
                self.pos += 1;
                Ok(Expr::Const(v))
            }
            Some(T::Ident(w)) => {
                self.pos += 1;
                Ok(Expr::Var(w))
            }
            Some(T::Sym(s)) if s == "~" => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.atom()?)))
            }
            Some(T::Sym(s)) if s == "(" => {
                self.pos += 1;
                let e = self.expr()?;
                if !self.eat_sym(")") {
                    return Err("missing `)`".into());
                }
                Ok(e)
            }
            other => Err(format!("expected expression atom, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn expr_eval_wraps() {
        let e = Expr::add(Expr::var("x"), Expr::konst(1));
        assert_eq!(e.eval(&env(&[("x", 0xFFFF)]), 16), 0);
        assert_eq!(e.eval(&env(&[("x", 0xFFFF)]), 32), 0x10000);
    }

    #[test]
    fn pred_eval_and_subst() {
        let p = parse_pred("x + 1 = y").unwrap();
        assert!(p.eval(&env(&[("x", 4), ("y", 5)]), 16));
        assert!(!p.eval(&env(&[("x", 4), ("y", 6)]), 16));
        let q = p.subst("y", &Expr::konst(5));
        assert!(q.eval(&env(&[("x", 4)]), 16));
    }

    #[test]
    fn parser_precedence() {
        let p = parse_pred("x = 0 and y = 1 or z = 2").unwrap();
        // (and) binds tighter than (or)
        assert!(matches!(p, Pred::Or(_, _)));
        let p = parse_pred("x = 0 => y = 1").unwrap();
        assert!(matches!(p, Pred::Implies(_, _)));
        let p = parse_pred("not (x = 0)").unwrap();
        assert!(matches!(p, Pred::Not(_)));
    }

    #[test]
    fn parser_expressions() {
        let e = parse_expr("(x & 255) << 8").unwrap();
        assert_eq!(e.eval(&env(&[("x", 0x3FF)]), 16), 0xFF00);
        let e = parse_expr("~x & 15").unwrap();
        assert_eq!(e.eval(&env(&[("x", 0)]), 16), 15);
    }

    #[test]
    fn wp_substitutes_backwards() {
        // { ? } x := x + 1; y := x { y = 5 }  →  wp = (x+1 = 5)
        let assigns = vec![
            Assign::new("x", parse_expr("x + 1").unwrap()),
            Assign::new("y", parse_expr("x").unwrap()),
        ];
        let post = parse_pred("y = 5").unwrap();
        let got = wp(&assigns, &post);
        let want = parse_pred("x + 1 = 5").unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn triple_valid_exhaustive() {
        // { x < 10 } x := x + 1 { x < 11 } at 8 bits: exhaustive.
        let pre = parse_pred("x < 10").unwrap();
        let post = parse_pred("x < 11").unwrap();
        let a = vec![Assign::new("x", parse_expr("x + 1").unwrap())];
        assert_eq!(check_triple(&pre, &a, &post, 8), Verdict::Valid);
    }

    #[test]
    fn triple_invalid_finds_counterexample() {
        // { true } x := x + 1 { x > 0 } fails at x = max (wraps to 0).
        let pre = Pred::True;
        let post = parse_pred("x > 0").unwrap();
        let a = vec![Assign::new("x", parse_expr("x + 1").unwrap())];
        match check_triple(&pre, &a, &post, 8) {
            Verdict::Invalid { env } => assert_eq!(env["x"], 0xFF),
            v => panic!("expected Invalid, got {v:?}"),
        }
    }

    #[test]
    fn inc_overflow_rule_from_the_paper() {
        // S* instantiation: {X = 32767} INC X {X = 32768} at 16 bits
        // (the "-32768" of the paper in two's complement).
        let pre = parse_pred("x = 32767").unwrap();
        let post = parse_pred("x = 32768").unwrap();
        let inc = vec![Assign::new("x", parse_expr("x + 1").unwrap())];
        assert_eq!(check_triple(&pre, &inc, &post, 16), Verdict::Valid);
        // And the naive rule {X = v} INC X {X = v + 1 with v+1 unbounded}
        // is NOT valid as an inequality claim x > 32767 → false at wrap:
        let bad_post = parse_pred("x > 32767").unwrap();
        let pre_any = Pred::True;
        assert!(matches!(
            check_triple(&pre_any, &inc, &bad_post, 16),
            Verdict::Invalid { .. }
        ));
    }

    #[test]
    fn swap_by_xor_is_verified() {
        // The classic: x ^= y; y ^= x; x ^= y swaps.
        let a = vec![
            Assign::new("x", parse_expr("x ^ y").unwrap()),
            Assign::new("y", parse_expr("y ^ x").unwrap()),
            Assign::new("x", parse_expr("x ^ y").unwrap()),
        ];
        let pre = parse_pred("x = a and y = b").unwrap();
        let post = parse_pred("x = b and y = a").unwrap();
        // 4 variables × 8 bits = 2^32 states — sampled.
        match check_triple(&pre, &a, &post, 8) {
            Verdict::ProbablyValid { .. } | Verdict::Valid => {}
            v => panic!("{v:?}"),
        }
        // 4 variables × 4 bits = 65536 states — exhausted.
        assert_eq!(check_triple(&pre, &a, &post, 4), Verdict::Valid);
    }

    #[test]
    fn sampling_finds_shallow_bugs() {
        // x & 1 = 1 is falsified immediately by sampling at 32 bits.
        let p = parse_pred("x & 1 = 1").unwrap();
        assert!(matches!(check_valid(&p, 32), Verdict::Invalid { .. }));
    }

    #[test]
    fn no_vars_is_decided_directly() {
        assert_eq!(check_valid(&parse_pred("1 < 2").unwrap(), 16), Verdict::Valid);
        assert!(matches!(
            check_valid(&parse_pred("2 < 1").unwrap(), 16),
            Verdict::Invalid { .. }
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_pred("x +").is_err());
        assert!(parse_pred("x = ").is_err());
        assert!(parse_expr("(x").is_err());
    }
}
