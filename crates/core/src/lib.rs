//! # `mcc-core` — the compilation pipeline
//!
//! Ties the toolkit together: one [`Compiler`] object drives
//!
//! ```text
//! source ─(frontend)→ MIR ─(legalize)→ MIR ─(insert_polls)→ MIR
//!        ─(regalloc)→ MIR ─(select)→ bound µops ─(compact)→ µinstrs
//!        ─(emit)→ MicroProgram ─(encode / simulate)
//! ```
//!
//! plus the §2.1.5 facilities no surveyed language implemented: automatic
//! interrupt poll-point insertion and the microtrap restart-safety
//! analysis that catches the paper's `incread` double-increment bug.

pub mod autoverify;
pub mod emit;
pub mod passes;

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mcc_compact::Algorithm;
use mcc_lang::FrontendLimits;
use mcc_machine::{ConflictModel, MachineDesc, MicroProgram};
use mcc_mir::operand::VReg;
use mcc_mir::MirFunction;
use mcc_regalloc::{AllocOptions, AllocReport, Location};
use mcc_sim::{SimOptions, SimStats, Simulator};

pub use autoverify::{block_assigns, check_block};
pub use passes::{insert_polls, mark_dead_flags, thread_jumps, trap_safety, Warning};

/// One of the four surveyed source languages, for dispatch by name
/// (CLI `--lang`, fuzzing campaigns, experiment tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceLang {
    /// SIMPL (§2.2.1) — registers as variables.
    Simpl,
    /// EMPL (§2.2.2) — symbolic variables, extensible operators.
    Empl,
    /// S* (§2.2.3) — machine-parameterized schema.
    Sstar,
    /// YALLL (§2.2.4) — line-based micro-assembly.
    Yalll,
}

impl SourceLang {
    /// All four frontends, in survey order.
    pub const ALL: [SourceLang; 4] = [
        SourceLang::Simpl,
        SourceLang::Empl,
        SourceLang::Sstar,
        SourceLang::Yalll,
    ];

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SourceLang::Simpl => "simpl",
            SourceLang::Empl => "empl",
            SourceLang::Sstar => "sstar",
            SourceLang::Yalll => "yalll",
        }
    }

    /// Parses a language name (canonical names and common file extensions).
    pub fn from_name(s: &str) -> Option<SourceLang> {
        match s.to_ascii_lowercase().as_str() {
            "simpl" | "sim" => Some(SourceLang::Simpl),
            "empl" | "emp" => Some(SourceLang::Empl),
            "sstar" | "ss" | "s*" => Some(SourceLang::Sstar),
            "yalll" | "yll" => Some(SourceLang::Yalll),
            _ => None,
        }
    }
}

impl std::fmt::Display for SourceLang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic resource budgets for the whole pipeline. Every limit is
/// a count, not a timeout, so exhaustion is reproducible byte-for-byte
/// across machines — a requirement for the differential fuzzer.
#[derive(Debug, Clone, Copy)]
pub struct ResourceLimits {
    /// Frontend limits (source size, token budget, nesting depth).
    pub frontend: FrontendLimits,
    /// Maximum MIR operations after any pipeline stage; bounds the work
    /// done by legalisation, allocation, selection and compaction.
    pub max_mir_ops: usize,
    /// Maximum basic blocks after any pipeline stage.
    pub max_blocks: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            frontend: FrontendLimits::default(),
            max_mir_ops: 1_000_000,
            max_blocks: 250_000,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Compaction algorithm.
    pub algorithm: Algorithm,
    /// Conflict model for compaction and validation.
    pub model: ConflictModel,
    /// Register allocation options.
    pub alloc: AllocOptions,
    /// When set, insert an interrupt poll point at every loop header and
    /// every `n` straight-line operations (§2.1.5).
    pub poll_interval: Option<usize>,
    /// Deterministic node budget for the exact branch-and-bound search;
    /// exhaustion degrades gracefully instead of hanging the compiler.
    pub bb_budget: u64,
    /// Resource budgets for the frontends and the pipeline proper.
    pub limits: ResourceLimits,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            algorithm: Algorithm::CriticalPath,
            model: ConflictModel::Fine,
            alloc: AllocOptions::default(),
            poll_interval: None,
            bb_budget: mcc_compact::BB_DEFAULT_BUDGET,
            limits: ResourceLimits::default(),
        }
    }
}

/// Anything the pipeline can fail with.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Frontend syntax/semantic error (message carries position info).
    Language(String),
    /// Malformed MIR.
    Mir(mcc_mir::func::MirError),
    /// The machine cannot express the program.
    Legalize(mcc_mir::LegalizeError),
    /// Register allocation failed.
    Alloc(mcc_regalloc::AllocError),
    /// Instruction selection failed.
    Select(mcc_mir::SelectError),
    /// Binary encoding failed.
    Encode(mcc_machine::EncodeError),
    /// A deterministic resource budget was exhausted ([`ResourceLimits`]).
    Limit {
        /// What ran out (e.g. `"mir operations"`).
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
    },
    /// A pipeline pass panicked; the panic was contained at the pipeline
    /// boundary ([`Compiler::compile_contained`]) and converted into this
    /// structured error naming the offending pass.
    Internal {
        /// The pass that was running when the panic fired.
        pass: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Language(s) => write!(f, "language error: {s}"),
            CompileError::Mir(e) => write!(f, "mir error: {e}"),
            CompileError::Legalize(e) => write!(f, "legalize error: {e}"),
            CompileError::Alloc(e) => write!(f, "allocation error: {e}"),
            CompileError::Select(e) => write!(f, "selection error: {e}"),
            CompileError::Encode(e) => write!(f, "encode error: {e}"),
            CompileError::Limit { what, limit } => {
                write!(f, "resource limit exceeded: {what} over the {limit} ceiling")
            }
            CompileError::Internal { pass, message } => {
                write!(f, "internal error in pass `{pass}`: {message}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<mcc_mir::func::MirError> for CompileError {
    fn from(e: mcc_mir::func::MirError) -> Self {
        CompileError::Mir(e)
    }
}
impl From<mcc_mir::LegalizeError> for CompileError {
    fn from(e: mcc_mir::LegalizeError) -> Self {
        CompileError::Legalize(e)
    }
}
impl From<mcc_regalloc::AllocError> for CompileError {
    fn from(e: mcc_regalloc::AllocError) -> Self {
        CompileError::Alloc(e)
    }
}
impl From<mcc_mir::SelectError> for CompileError {
    fn from(e: mcc_mir::SelectError) -> Self {
        CompileError::Select(e)
    }
}
impl From<mcc_machine::EncodeError> for CompileError {
    fn from(e: mcc_machine::EncodeError) -> Self {
        CompileError::Encode(e)
    }
}

thread_local! {
    /// The pipeline stage currently executing, so a contained panic can be
    /// attributed to the pass that raised it.
    static CURRENT_PASS: Cell<&'static str> = const { Cell::new("frontend") };
}

fn set_pass(pass: &'static str) {
    CURRENT_PASS.with(|c| c.set(pass));
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panics converted into [`CompileError::Internal`] naming
/// the pass recorded by the pipeline's `set_pass` breadcrumbs.
///
/// `AssertUnwindSafe` is sound here because the closure's state is
/// discarded wholesale on unwind — nothing half-mutated outlives the call.
fn contain<T>(f: impl FnOnce() -> Result<T, CompileError>) -> Result<T, CompileError> {
    set_pass("frontend");
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(CompileError::Internal {
            pass: CURRENT_PASS.with(|c| c.get()),
            message: panic_message(payload),
        }),
    }
}

/// Compilation statistics for the experiment tables.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Abstract operations after legalisation.
    pub mir_ops: usize,
    /// Microinstructions emitted (code size, experiment E1).
    pub micro_instrs: usize,
    /// Micro-operations packed.
    pub micro_ops: usize,
    /// Virtual registers spilled.
    pub spills: usize,
    /// Spill fills/stores inserted.
    pub spill_moves: usize,
    /// Poll points inserted.
    pub polls: usize,
    /// Operations whose flag writes were proven dead (freeing flag-free
    /// template variants for packing).
    pub dead_flags: usize,
    /// The compaction algorithm that finally produced the schedule — the
    /// requested one, or whatever the degradation chain fell back to
    /// (`"sequential"` at the bottom).
    pub algorithm_used: String,
    /// Degradation events recorded during emission, one per fallback step
    /// (empty when every block compacted with the requested algorithm).
    pub degradations: Vec<String>,
    /// Wall-clock nanoseconds spent per pipeline pass, in execution order
    /// (passes that run twice, like `legalize`, are merged). Diagnostic
    /// only: never printed in experiment tables and never part of a cached
    /// artifact's identity, so warm and cold runs stay byte-identical.
    pub pass_nanos: Vec<(&'static str, u64)>,
    /// `Some(tier)` when this artifact was served by `mcc-cache`
    /// (`"memory"` or `"disk"`) rather than compiled; `None` on a cold
    /// compile. Diagnostic only, like [`pass_nanos`](Self::pass_nanos).
    pub cached: Option<&'static str>,
}

impl CompileStats {
    /// Records wall-clock time spent in `pass` since `started`, merging
    /// into an existing entry when the pass already ran once.
    pub fn note_pass(&mut self, pass: &'static str, started: std::time::Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        if let Some(e) = self.pass_nanos.iter_mut().find(|(p, _)| *p == pass) {
            e.1 += ns;
        } else {
            self.pass_nanos.push((pass, ns));
        }
    }

    /// Total wall-clock nanoseconds across all recorded passes.
    pub fn compile_nanos(&self) -> u64 {
        self.pass_nanos.iter().map(|&(_, ns)| ns).sum()
    }

    /// Mean micro-operations per microinstruction.
    pub fn packing_ratio(&self) -> f64 {
        if self.micro_instrs == 0 {
            0.0
        } else {
            self.micro_ops as f64 / self.micro_instrs as f64
        }
    }
}

/// The output of a compilation.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The machine compiled for.
    pub machine: MachineDesc,
    /// The microprogram (block-structured; flatten to get a control store).
    pub program: MicroProgram,
    /// Where each symbolic variable's virtual register ended up.
    pub locations: HashMap<VReg, Location>,
    /// Source-level names resolved to final locations (populated by the
    /// language entry points; empty for raw [`Compiler::compile_mir`]).
    pub symbols: HashMap<String, Location>,
    /// Source-level arrays resolved to memory regions `(base, length)`.
    pub memory_symbols: HashMap<String, (u64, u64)>,
    /// Trap-safety and other warnings.
    pub warnings: Vec<Warning>,
    /// Pipeline statistics.
    pub stats: CompileStats,
}

impl Artifact {
    /// Resolves a source operand to its final location.
    pub fn locate(&self, op: mcc_mir::Operand) -> Option<Location> {
        match op {
            mcc_mir::Operand::Reg(r) => Some(Location::Reg(r)),
            mcc_mir::Operand::Vreg(v) => self.locations.get(&v).copied(),
        }
    }

    /// Reads the value of a named symbol from a finished simulator.
    ///
    /// Returns `None` when the symbol is unknown or was optimised away.
    pub fn read_symbol(&self, sim: &Simulator, name: &str) -> Option<u64> {
        match self.symbols.get(name)? {
            Location::Reg(r) | Location::Scratch(r) => Some(sim.reg(*r)),
            Location::Mem(a) => Some(sim.mem(*a)),
        }
    }

    /// Encodes the program into control-store words.
    ///
    /// # Errors
    ///
    /// Propagates [`mcc_machine::EncodeError`].
    pub fn encode(&self) -> Result<Vec<u128>, mcc_machine::EncodeError> {
        mcc_machine::encode_program(&self.machine, &self.program)
    }

    /// Loads the program into a fresh simulator.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(self.machine.clone(), &self.program)
    }

    /// Runs the program to halt with default options.
    ///
    /// # Errors
    ///
    /// Propagates [`mcc_sim::SimError`].
    pub fn run(&self) -> Result<(Simulator, SimStats), mcc_sim::SimError> {
        self.run_with(&SimOptions::default())
    }

    /// Runs the program under the given simulation options.
    ///
    /// # Errors
    ///
    /// Propagates [`mcc_sim::SimError`].
    pub fn run_with(&self, opts: &SimOptions) -> Result<(Simulator, SimStats), mcc_sim::SimError> {
        let mut s = self.simulator();
        let stats = s.run(opts)?;
        Ok((s, stats))
    }
}

/// The compiler: a machine plus pipeline options.
#[derive(Debug, Clone)]
pub struct Compiler {
    machine: MachineDesc,
    options: CompilerOptions,
}

impl Compiler {
    /// A compiler for `machine` with default options.
    pub fn new(machine: MachineDesc) -> Self {
        Compiler {
            machine,
            options: CompilerOptions::default(),
        }
    }

    /// A compiler with explicit options.
    pub fn with_options(machine: MachineDesc, options: CompilerOptions) -> Self {
        Compiler { machine, options }
    }

    /// The target machine.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// The pipeline options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Mutable access to the pipeline options (builder-style tweaks).
    pub fn options_mut(&mut self) -> &mut CompilerOptions {
        &mut self.options
    }

    /// Compiles a MIR function through the whole pipeline.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_mir(&self, mut f: MirFunction) -> Result<Artifact, CompileError> {
        use std::time::Instant;
        let mut stats = CompileStats::default();

        set_pass("validate");
        let t = Instant::now();
        f.validate()?;
        self.check_size(&f)?;
        stats.note_pass("validate", t);
        set_pass("legalize");
        let t = Instant::now();
        mcc_mir::legalize(&self.machine, &mut f)?;
        f.validate()?;
        self.check_size(&f)?;
        stats.note_pass("legalize", t);
        set_pass("thread_jumps");
        let t = Instant::now();
        passes::thread_jumps(&mut f);
        stats.note_pass("thread_jumps", t);

        if let Some(n) = self.options.poll_interval {
            set_pass("insert_polls");
            let t = Instant::now();
            stats.polls = passes::insert_polls(&mut f, n);
            self.check_size(&f)?;
            stats.note_pass("insert_polls", t);
        }

        set_pass("regalloc");
        let t = Instant::now();
        let report: AllocReport = mcc_regalloc::allocate(&self.machine, &mut f, &self.options.alloc)?;
        stats.spills = report.spilled;
        stats.spill_moves = report.spill_moves;
        stats.note_pass("regalloc", t);
        // Spill code may introduce operations that still need legalising
        // on narrow machines (wide spill addresses); one more round is
        // always enough because spill addresses fit the immediate path.
        set_pass("legalize");
        let t = Instant::now();
        mcc_mir::legalize(&self.machine, &mut f)?;
        self.check_size(&f)?;
        stats.note_pass("legalize", t);
        if f.has_virtual_regs() {
            // Legalisation after spilling created scratch vregs; allocate
            // them too (no further spilling expected).
            set_pass("regalloc");
            let t = Instant::now();
            let r2 = mcc_regalloc::allocate(&self.machine, &mut f, &self.options.alloc)?;
            stats.spills += r2.spilled;
            stats.spill_moves += r2.spill_moves;
            stats.note_pass("regalloc", t);
        }

        set_pass("trap_safety");
        let t = Instant::now();
        let warnings = passes::trap_safety(&self.machine, &f);
        stats.mir_ops = f.op_count();
        stats.note_pass("trap_safety", t);
        set_pass("mark_dead_flags");
        let t = Instant::now();
        stats.dead_flags = passes::mark_dead_flags(&mut f);
        stats.note_pass("mark_dead_flags", t);

        set_pass("select");
        let t = Instant::now();
        let selected = mcc_mir::select_function(&self.machine, &f)?;
        stats.note_pass("select", t);
        set_pass("compact");
        let t = Instant::now();
        let (program, emitted) = emit::emit(
            &self.machine,
            &selected,
            self.options.algorithm,
            self.options.model,
            self.options.bb_budget,
        );
        stats.note_pass("compact", t);
        stats.micro_instrs = program.instr_count();
        stats.micro_ops = program.op_count();
        stats.algorithm_used = emitted.algorithm_used;
        stats.degradations = emitted.degradations;

        Ok(Artifact {
            machine: self.machine.clone(),
            program,
            locations: report.locations,
            symbols: HashMap::new(),
            memory_symbols: HashMap::new(),
            warnings,
            stats,
        })
    }

    /// Checks the MIR against the pipeline's deterministic size budgets.
    fn check_size(&self, f: &MirFunction) -> Result<(), CompileError> {
        let lim = &self.options.limits;
        if f.op_count() > lim.max_mir_ops {
            return Err(CompileError::Limit {
                what: "mir operations",
                limit: lim.max_mir_ops,
            });
        }
        if f.blocks.len() > lim.max_blocks {
            return Err(CompileError::Limit {
                what: "basic blocks",
                limit: lim.max_blocks,
            });
        }
        Ok(())
    }

    fn attach_symbols(
        art: &mut Artifact,
        names: impl IntoIterator<Item = (String, mcc_mir::Operand)>,
    ) {
        for (name, op) in names {
            if let Some(loc) = art.locate(op) {
                art.symbols.insert(name, loc);
            }
        }
    }

    /// Compiles a SIMPL program (§2.2.1 of the survey).
    ///
    /// SIMPL variables are machine registers, so symbols resolve directly.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; frontend diagnostics arrive as
    /// [`CompileError::Language`] with line/column prefixes.
    pub fn compile_simpl(&self, src: &str) -> Result<Artifact, CompileError> {
        set_pass("frontend");
        let t = std::time::Instant::now();
        let p = mcc_simpl::parse_with_limits(src, &self.machine, &self.options.limits.frontend)
            .map_err(|e| CompileError::Language(e.render_excerpt(src)))?;
        let fe = t.elapsed().as_nanos() as u64;
        let mut art = self.compile_mir(p.func)?;
        art.stats.pass_nanos.insert(0, ("frontend", fe));
        Ok(art)
    }

    /// Compiles a YALLL program (§2.2.4). Declared register names become
    /// artifact symbols.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_yalll(&self, src: &str) -> Result<Artifact, CompileError> {
        set_pass("frontend");
        let t = std::time::Instant::now();
        let p = mcc_yalll::parse_with_limits(src, &self.machine, &self.options.limits.frontend)
            .map_err(|e| CompileError::Language(e.render_excerpt(src)))?;
        let fe = t.elapsed().as_nanos() as u64;
        let bindings = p.bindings.clone();
        let mut art = self.compile_mir(p.func)?;
        art.stats.pass_nanos.insert(0, ("frontend", fe));
        Self::attach_symbols(&mut art, bindings);
        Ok(art)
    }

    /// Compiles an EMPL program (§2.2.2). Global variables (including type
    /// instance fields as `INSTANCE.FIELD`) become symbols; arrays become
    /// memory symbols. The special symbol `"ERROR"` holds the error flag.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_empl(&self, src: &str) -> Result<Artifact, CompileError> {
        set_pass("frontend");
        let t = std::time::Instant::now();
        let p = mcc_empl::compile_with_limits(src, &self.options.limits.frontend)
            .map_err(|e| CompileError::Language(e.render_excerpt(src)))?;
        let fe = t.elapsed().as_nanos() as u64;
        let globals = p.globals.clone();
        let arrays = p.arrays.clone();
        let eflag = p.error_flag;
        let mut art = self.compile_mir(p.func)?;
        art.stats.pass_nanos.insert(0, ("frontend", fe));
        Self::attach_symbols(&mut art, globals);
        Self::attach_symbols(&mut art, [("ERROR".to_string(), eflag)]);
        art.memory_symbols = arrays;
        Ok(art)
    }

    /// Compiles an S\* program (§2.2.3) and *verifies the explicit
    /// parallelism*: every `cobegin … coend` group must fit one
    /// microinstruction on this machine, otherwise compilation fails —
    /// S\* programmers specify composition, the compiler only checks it.
    /// The special symbol `"ASSERT"` holds the runtime assertion flag
    /// (0 = all passed).
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; an unschedulable `cobegin` is reported as
    /// [`CompileError::Language`].
    pub fn compile_sstar(&self, src: &str) -> Result<Artifact, CompileError> {
        set_pass("frontend");
        let t = std::time::Instant::now();
        let p = mcc_sstar::parse_with_limits(src, &self.machine, &self.options.limits.frontend)
            .map_err(|e| CompileError::Language(e.render_excerpt(src)))?;
        let fe = t.elapsed().as_nanos() as u64;
        let vars = p.vars.clone();
        let cogroups = p.cogroups.clone();
        let aflag = p.assert_flag;
        let mut art = self.compile_mir(p.func)?;
        art.stats.pass_nanos.insert(0, ("frontend", fe));
        for g in cogroups {
            let n = art.program.blocks[g as usize].instrs.len();
            // The group block holds its ops plus an elidable jump; more
            // than one instruction means the hardware could not take the
            // whole group in one cycle.
            if n > 1 {
                return Err(CompileError::Language(format!(
                    "cobegin group at block b{g} needs {n} microinstructions on {}; \
                     the statements cannot be co-scheduled",
                    self.machine.name
                )));
            }
        }
        Self::attach_symbols(&mut art, vars);
        if let Some(f) = aflag {
            Self::attach_symbols(&mut art, [("ASSERT".to_string(), f)]);
        }
        Ok(art)
    }

    /// Compiles source text in the named language.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_source(&self, lang: SourceLang, src: &str) -> Result<Artifact, CompileError> {
        match lang {
            SourceLang::Simpl => self.compile_simpl(src),
            SourceLang::Empl => self.compile_empl(src),
            SourceLang::Sstar => self.compile_sstar(src),
            SourceLang::Yalll => self.compile_yalll(src),
        }
    }

    /// [`compile_source`](Self::compile_source) behind a panic boundary:
    /// any residual panic in a pipeline pass is caught and converted into
    /// [`CompileError::Internal`] naming the pass, so feeding the compiler
    /// arbitrary bytes always terminates with a structured error. The
    /// frontends' resource budgets ([`ResourceLimits`]) are what make this
    /// guarantee real — `catch_unwind` cannot contain a stack overflow, so
    /// the depth limits must prevent one from ever happening.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_contained(&self, lang: SourceLang, src: &str) -> Result<Artifact, CompileError> {
        contain(|| self.compile_source(lang, src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{bx2, hm1, vm1, wm64};
    use mcc_machine::{AluOp, CondKind, RegRef};
    use mcc_mir::{FuncBuilder, Term};

    /// End-to-end: sum 1..=5 with symbolic variables on every machine.
    #[test]
    fn sum_compiles_and_runs_everywhere() {
        for m in [hm1(), vm1(), bx2(), wm64()] {
            let mut b = FuncBuilder::new("sum");
            let i = b.vreg();
            let acc = b.vreg();
            b.ldi(i, 5);
            b.ldi(acc, 0);
            let head = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.jump_and_switch(head);
            b.alu_un(AluOp::Pass, i, i);
            b.branch(CondKind::Zero, done, body);
            b.switch_to(body);
            b.alu(AluOp::Add, acc, acc, i);
            b.alu_imm(AluOp::Sub, i, i, 1);
            b.terminate(Term::Jump(head));
            b.switch_to(done);
            b.mark_live_out(acc);
            b.terminate(Term::Halt);
            let f = b.finish();

            let c = Compiler::new(m.clone());
            let art = c.compile_mir(f).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let (sim, stats) = art.run().unwrap();
            // Find where acc ended up and check the value.
            let loc = art.locations[&acc];
            let v = match loc {
                Location::Reg(r) | Location::Scratch(r) => sim.reg(r),
                Location::Mem(a) => sim.mem(a),
            };
            assert_eq!(v, 15, "{}", m.name);
            assert!(stats.cycles > 0);
            // The binary encodes and decodes.
            let words = art.encode().unwrap();
            assert_eq!(words.len(), art.program.instr_count());
        }
    }

    /// The same program takes more instructions on the vertical machine.
    #[test]
    fn vertical_code_is_longer() {
        let build = || {
            let mut b = FuncBuilder::new("k");
            let x = b.vreg();
            let y = b.vreg();
            let z = b.vreg();
            b.ldi(x, 3);
            b.ldi(y, 4);
            b.alu(AluOp::Add, z, x, y);
            b.alu(AluOp::Xor, x, x, y);
            b.mark_live_out(z);
            b.mark_live_out(x);
            b.terminate(Term::Halt);
            b.finish()
        };
        let h = Compiler::new(hm1()).compile_mir(build()).unwrap();
        let v = Compiler::new(vm1()).compile_mir(build()).unwrap();
        assert!(
            v.program.instr_count() >= h.program.instr_count(),
            "vertical {} vs horizontal {}",
            v.program.instr_count(),
            h.program.instr_count()
        );
    }

    #[test]
    fn trap_safety_warning_on_incread() {
        // The paper's incread: reg[n] := reg[n]+1; mbr := readmem(reg[n]).
        let m = hm1();
        let r0 = RegRef::new(m.find_file("R").unwrap(), 0);
        let mut b = FuncBuilder::new("incread");
        let r0 = mcc_mir::Operand::Reg(r0);
        b.alu_un(AluOp::Inc, r0, r0);
        let d = b.vreg();
        b.load(d, r0);
        b.mark_live_out(d);
        b.terminate(Term::Halt);
        let art = Compiler::new(m).compile_mir(b.finish()).unwrap();
        assert!(
            art.warnings.iter().any(|w| w.message.contains("restart")),
            "expected a trap-safety warning, got {:?}",
            art.warnings
        );
    }

    /// A straight-line block far over the exact-search size limit still
    /// compiles under `Algorithm::BranchBound`: the degradation chain
    /// falls back to list scheduling, the artifact records which
    /// algorithm actually produced the code, and the result is correct.
    #[test]
    fn oversize_block_compiles_via_degradation_chain() {
        let m = hm1();
        let mut c = Compiler::new(m);
        c.options_mut().algorithm = Algorithm::BranchBound;
        let mut b = FuncBuilder::new("big");
        let a = b.vreg();
        b.ldi(a, 1);
        for _ in 0..21 {
            b.alu_imm(AluOp::Add, a, a, 1);
        }
        b.mark_live_out(a);
        b.terminate(Term::Halt);
        let f = b.finish();
        assert!(f.blocks[0].ops.len() >= 20, "crafted block must be ≥20 ops");
        let art = c.compile_mir(f).unwrap();
        assert_eq!(art.stats.algorithm_used, "critpath", "degraded to list scheduling");
        assert!(
            art.stats.degradations.iter().any(|d| d.contains("exceed")),
            "degradation recorded: {:?}",
            art.stats.degradations
        );
        let (sim, _) = art.run().unwrap();
        let v = match art.locations[&a] {
            Location::Reg(r) | Location::Scratch(r) => sim.reg(r),
            Location::Mem(addr) => sim.mem(addr),
        };
        assert_eq!(v, 22);
    }

    /// When compaction succeeds outright the stats name the requested
    /// algorithm and record no degradations.
    #[test]
    fn undegraded_compile_reports_requested_algorithm() {
        let m = hm1();
        let mut b = FuncBuilder::new("small");
        let a = b.vreg();
        b.ldi(a, 7);
        b.mark_live_out(a);
        b.terminate(Term::Halt);
        let art = Compiler::new(m).compile_mir(b.finish()).unwrap();
        assert_eq!(art.stats.algorithm_used, "critpath");
        assert!(art.stats.degradations.is_empty());
    }

    #[test]
    fn poll_insertion_counts() {
        let m = hm1();
        let mut c = Compiler::new(m);
        c.options_mut().poll_interval = Some(2);
        let mut b = FuncBuilder::new("p");
        let x = b.vreg();
        b.ldi(x, 9);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump_and_switch(head);
        b.alu_un(AluOp::Pass, x, x);
        b.branch(CondKind::Zero, done, body);
        b.switch_to(body);
        b.alu_imm(AluOp::Sub, x, x, 1);
        b.terminate(Term::Jump(head));
        b.switch_to(done);
        b.terminate(Term::Halt);
        let art = c.compile_mir(b.finish()).unwrap();
        assert!(art.stats.polls > 0);
        // And the program still runs with interrupts arriving.
        let opts = SimOptions {
            interrupts: vec![1, 5, 9],
            ..Default::default()
        };
        let (_, stats) = art.run_with(&opts).unwrap();
        assert_eq!(stats.interrupts, 3);
    }

    #[test]
    fn mir_op_budget_is_enforced() {
        let m = hm1();
        let mut c = Compiler::new(m);
        c.options_mut().limits.max_mir_ops = 5;
        let mut b = FuncBuilder::new("big");
        let x = b.vreg();
        b.ldi(x, 0);
        for _ in 0..20 {
            b.alu_imm(AluOp::Add, x, x, 1);
        }
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        match c.compile_mir(b.finish()) {
            Err(CompileError::Limit { what, limit }) => {
                assert_eq!(what, "mir operations");
                assert_eq!(limit, 5);
            }
            other => panic!("expected Limit error, got {other:?}"),
        }
    }

    #[test]
    fn contained_panic_becomes_internal_error() {
        let r: Result<(), CompileError> = contain(|| {
            set_pass("select");
            panic!("boom in selection")
        });
        match r {
            Err(CompileError::Internal { pass, message }) => {
                assert_eq!(pass, "select");
                assert!(message.contains("boom"), "got: {message}");
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
    }

    #[test]
    fn compile_contained_round_trips_good_and_bad_source() {
        let c = Compiler::new(hm1());
        // Garbage in every language terminates with a structured error.
        for lang in SourceLang::ALL {
            let e = c.compile_contained(lang, "\u{0}\u{1}garbage ((((").unwrap_err();
            assert!(!e.to_string().is_empty(), "{lang}");
        }
        // And a healthy program still compiles through the boundary.
        let art = c
            .compile_contained(SourceLang::Yalll, "reg a = R0\nconst a, 7\nexit a\n")
            .unwrap();
        let (sim, _) = art.run().unwrap();
        assert_eq!(art.read_symbol(&sim, "a"), Some(7));
    }

    #[test]
    fn source_lang_names_round_trip() {
        for lang in SourceLang::ALL {
            assert_eq!(SourceLang::from_name(lang.name()), Some(lang));
        }
        assert_eq!(SourceLang::from_name("yll"), Some(SourceLang::Yalll));
        assert_eq!(SourceLang::from_name("cobol"), None);
    }

    #[test]
    fn frontend_diagnostics_carry_source_excerpts() {
        let c = Compiler::new(hm1());
        let e = c.compile_yalll("reg a = R0\nbogus a, 7\nexit a\n").unwrap_err();
        let msg = e.to_string();
        // line:col prefix and the caret line from render_excerpt.
        assert!(msg.contains("2:"), "got: {msg}");
        assert!(msg.contains('^'), "got: {msg}");
    }

    #[test]
    fn compile_stats_populated() {
        let m = hm1();
        let mut b = FuncBuilder::new("s");
        let x = b.vreg();
        b.ldi(x, 1);
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        let art = Compiler::new(m).compile_mir(b.finish()).unwrap();
        assert!(art.stats.micro_instrs > 0);
        assert!(art.stats.packing_ratio() > 0.0);
    }
}
