//! Strum-style automatic verification of straight-line microcode.
//!
//! Strum (§2.2.5 of the survey) compiled programs "developed together with
//! their proofs": assertions generated verification formulas checked by an
//! automatic verifier. This module is the toolkit's equivalent at the IR
//! level — it converts a straight-line MIR block into a sequence of
//! bitvector assignments over *register names* and hands Hoare triples to
//! [`mcc_verify`]'s weakest-precondition checker. Unlike the S\*
//! source-level assertions (which see variable names), this works on any
//! compiled function, including ones written directly in MIR.

use mcc_machine::{AluOp, MachineDesc, Semantic, ShiftOp};
use mcc_mir::{BlockId, MirFunction, Operand};
use mcc_verify::{check_triple, Assign, Expr, Pred, Verdict};

/// The canonical verification name of an operand: special-role names
/// (`ACC`, `MAR`, `MBR`), `FILE<index>` for other physical registers, and
/// `v<n>` for virtual registers. Lower-cased, since the predicate parser
/// lower-cases identifiers.
pub fn operand_name(m: &MachineDesc, op: Operand) -> String {
    match op {
        Operand::Reg(r) => mcc_machine::pretty::reg_name(m, r).to_ascii_lowercase(),
        Operand::Vreg(v) => format!("v{}", v.0),
    }
}

fn expr_of(m: &MachineDesc, op: Operand) -> Expr {
    Expr::Var(operand_name(m, op))
}

/// Converts one block's straight-line operations into verification
/// assignments. Returns `None` when the block contains an operation
/// outside the bitvector fragment (memory access, calls, polls,
/// carry-consuming arithmetic, rotates/arithmetic shifts).
pub fn block_assigns(m: &MachineDesc, f: &MirFunction, block: BlockId) -> Option<Vec<Assign>> {
    let b = f.blocks.get(block as usize)?;
    let mut out = Vec::with_capacity(b.ops.len());
    for op in &b.ops {
        let dst = || operand_name(m, op.dst.expect("dst"));
        let s = |i: usize| expr_of(m, op.srcs[i]);
        let assign = match op.sem {
            Semantic::LoadImm => Assign::new(dst(), Expr::Const(op.imm.unwrap_or(0))),
            Semantic::Move => Assign::new(dst(), s(0)),
            Semantic::Alu(a) => {
                let rhs = match a {
                    AluOp::Add => bin(Expr::add, op, m)?,
                    AluOp::Sub => bin(Expr::sub, op, m)?,
                    AluOp::And => bin(Expr::and, op, m)?,
                    AluOp::Or => bin(Expr::or, op, m)?,
                    AluOp::Xor => bin(Expr::xor, op, m)?,
                    AluOp::Nand => Expr::Not(Box::new(bin(Expr::and, op, m)?)),
                    AluOp::Nor => Expr::Not(Box::new(bin(Expr::or, op, m)?)),
                    AluOp::Not => Expr::Not(Box::new(s(0))),
                    AluOp::Neg => Expr::sub(Expr::Const(0), s(0)),
                    AluOp::Inc => Expr::add(s(0), Expr::Const(1)),
                    AluOp::Dec => Expr::sub(s(0), Expr::Const(1)),
                    AluOp::Pass => s(0),
                    AluOp::Adc | AluOp::Sbb => return None, // carry not modelled
                };
                Assign::new(dst(), rhs)
            }
            Semantic::Shift(sh) => {
                let n = op.imm.unwrap_or(0);
                let rhs = match sh {
                    ShiftOp::Shl => Expr::shl(s(0), n),
                    ShiftOp::Shr => Expr::shr(s(0), n),
                    ShiftOp::Sar | ShiftOp::Rol | ShiftOp::Ror => return None,
                };
                Assign::new(dst(), rhs)
            }
            _ => return None,
        };
        out.push(assign);
    }
    Some(out)
}

fn bin(
    ctor: fn(Expr, Expr) -> Expr,
    op: &mcc_mir::MirOp,
    m: &MachineDesc,
) -> Option<Expr> {
    let a = expr_of(m, op.srcs[0]);
    let b = match (op.srcs.get(1), op.imm) {
        (Some(&s), None) => expr_of(m, s),
        (None, Some(v)) => Expr::Const(v),
        _ => return None,
    };
    Some(ctor(a, b))
}

/// Checks the Hoare triple `{pre} block {post}` for a straight-line block,
/// at the machine's datapath width. Returns `None` when the block is not
/// expressible in the bitvector fragment.
pub fn check_block(
    m: &MachineDesc,
    f: &MirFunction,
    block: BlockId,
    pre: &Pred,
    post: &Pred,
) -> Option<Verdict> {
    let assigns = block_assigns(m, f, block)?;
    Some(check_triple(pre, &assigns, post, m.word_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_mir::{FuncBuilder, Term};
    use mcc_verify::parse_pred;

    #[test]
    fn three_mov_swap_verifies() {
        // The classic register swap through a scratch register, verified
        // automatically — Strum's promise, delivered on raw MIR.
        let m = hm1();
        let r = |n: &str| Operand::Reg(m.resolve_reg_name(n).unwrap());
        let mut b = FuncBuilder::new("swap");
        b.mov(r("R2"), r("R0"));
        b.mov(r("R0"), r("R1"));
        b.mov(r("R1"), r("R2"));
        b.terminate(Term::Halt);
        let f = b.finish();
        let pre = parse_pred("r0 = a and r1 = b").unwrap();
        let post = parse_pred("r0 = b and r1 = a").unwrap();
        let v = check_block(&m, &f, 0, &pre, &post).unwrap();
        assert!(matches!(v, Verdict::Valid | Verdict::ProbablyValid { .. }), "{v:?}");
    }

    #[test]
    fn wrong_swap_is_refuted() {
        let m = hm1();
        let r = |n: &str| Operand::Reg(m.resolve_reg_name(n).unwrap());
        let mut b = FuncBuilder::new("swap");
        b.mov(r("R0"), r("R1"));
        b.mov(r("R1"), r("R0")); // clobbered — not a swap
        b.terminate(Term::Halt);
        let f = b.finish();
        let pre = parse_pred("r0 = a and r1 = b").unwrap();
        let post = parse_pred("r0 = b and r1 = a").unwrap();
        let v = check_block(&m, &f, 0, &pre, &post).unwrap();
        assert!(matches!(v, Verdict::Invalid { .. }), "{v:?}");
    }

    #[test]
    fn masking_identity_verifies() {
        // (x & 0x00FF) | (x & 0xFF00) = x, via two temporaries.
        let m = hm1();
        let r = |n: &str| Operand::Reg(m.resolve_reg_name(n).unwrap());
        let mut b = FuncBuilder::new("mask");
        b.alu_imm(mcc_machine::AluOp::And, r("R1"), r("R0"), 0x00FF);
        b.alu_imm(mcc_machine::AluOp::And, r("R2"), r("R0"), 0xFF00);
        b.alu(mcc_machine::AluOp::Or, r("R3"), r("R1"), r("R2"));
        b.terminate(Term::Halt);
        let f = b.finish();
        let v = check_block(
            &m,
            &f,
            0,
            &Pred::True,
            &parse_pred("r3 = r0").unwrap(),
        )
        .unwrap();
        assert!(matches!(v, Verdict::Valid | Verdict::ProbablyValid { .. }), "{v:?}");
    }

    #[test]
    fn memory_ops_are_out_of_fragment() {
        let m = hm1();
        let mut b = FuncBuilder::new("mem");
        let x = b.vreg();
        let y = b.vreg();
        b.load(y, x);
        b.terminate(Term::Halt);
        let f = b.finish();
        assert!(block_assigns(&m, &f, 0).is_none());
    }

    #[test]
    fn special_registers_get_role_names() {
        let m = hm1();
        assert_eq!(operand_name(&m, Operand::Reg(m.special.acc.unwrap())), "acc");
        let r0 = m.resolve_reg_name("R0").unwrap();
        assert_eq!(operand_name(&m, Operand::Reg(r0)), "r0");
    }
}
