//! MIR passes for the §2.1.5 problems: interrupt poll insertion and
//! microtrap restart-safety analysis.
//!
//! The survey notes these were "completely neglected" by every language it
//! reviews; this module is the toolkit's answer. Poll insertion makes long
//! microprograms service interrupts; the trap-safety analysis detects the
//! `incread` pattern — a non-idempotent write to a macro-visible register
//! that precedes a faultable memory operation, so that the
//! restart-from-the-beginning semantics of a page-fault microtrap would
//! replay it.

use std::collections::{BTreeMap, BTreeSet};

use mcc_machine::{MachineDesc, RegRef};
use mcc_mir::operand::Operand;
use mcc_mir::{MirFunction, MirOp};

/// A compiler warning (the pipeline still produces code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Human-readable description.
    pub message: String,
}

/// Inserts interrupt poll points: one at every loop header (a block with a
/// back edge into it) and one every `n` operations inside each block.
/// Returns the number of polls inserted.
///
/// Runs before register allocation; `Poll` is a scheduling barrier, so the
/// cost is measured by experiment E7's latency/overhead sweep.
pub fn insert_polls(f: &mut MirFunction, n: usize) -> usize {
    let n = n.max(1);
    let mut count = 0;

    // Loop headers: any block targeted by a block with an id ≥ its own
    // (conservative back-edge test on the reducible CFGs frontends build).
    let mut headers: BTreeSet<u32> = BTreeSet::new();
    for (i, b) in f.blocks.iter().enumerate() {
        if let Some(t) = &b.term {
            for s in t.successors() {
                if s <= i as u32 {
                    headers.insert(s);
                }
            }
        }
    }

    for (bi, b) in f.blocks.iter_mut().enumerate() {
        let mut ops = std::mem::take(&mut b.ops);
        let mut out = Vec::with_capacity(ops.len() + 1);
        if headers.contains(&(bi as u32)) {
            out.push(MirOp::poll());
            count += 1;
        }
        let mut since = 0usize;
        for op in ops.drain(..) {
            out.push(op);
            since += 1;
            if since >= n {
                out.push(MirOp::poll());
                count += 1;
                since = 0;
            }
        }
        // Avoid a trailing poll immediately before a terminator-only exit.
        if matches!(out.last(), Some(op) if op.sem == mcc_machine::Semantic::Poll)
            && matches!(b.term, Some(mcc_mir::Term::Halt) | Some(mcc_mir::Term::Ret))
        {
            out.pop();
            count -= 1;
        }
        b.ops = out;
    }
    count
}

/// Jump threading: retargets branches and jumps that land on *empty*
/// blocks whose only effect is to jump elsewhere, letting the emitter's
/// fallthrough elision remove them entirely. Dispatch-table blocks are
/// exempt (they must stay one instruction long at a fixed address).
///
/// Frontends produce many such trampolines (`if`/`while` join blocks, case
/// arms); threading them shrinks code measurably on machines where a jump
/// costs a full word. Returns the number of edges retargeted.
pub fn thread_jumps(f: &mut MirFunction) -> usize {
    use mcc_mir::Term;
    // Blocks that must keep their identity: dispatch-table entries.
    let mut pinned: BTreeSet<u32> = BTreeSet::new();
    for b in &f.blocks {
        if let Some(Term::Dispatch { table, .. }) = &b.term {
            pinned.extend(table.iter().copied());
        }
    }
    // Resolve the final destination of a trampoline chain.
    let resolve = |start: u32, f: &MirFunction, pinned: &BTreeSet<u32>| -> u32 {
        let mut seen = BTreeSet::new();
        let mut t = start;
        loop {
            if pinned.contains(&t) || !seen.insert(t) {
                return t;
            }
            let b = &f.blocks[t as usize];
            match (&b.ops.is_empty(), &b.term) {
                (true, Some(Term::Jump(u))) => t = *u,
                _ => return t,
            }
        }
    };
    let mut changed = 0usize;
    for bi in 0..f.blocks.len() {
        let term = f.blocks[bi].term.clone();
        let retarget = |t: u32, f: &MirFunction| resolve(t, f, &pinned);
        let new = match term {
            Some(Term::Jump(t)) => {
                let r = retarget(t, f);
                (r != t).then_some(Term::Jump(r))
            }
            Some(Term::Branch {
                cond,
                then_block,
                else_block,
            }) => {
                let rt = retarget(then_block, f);
                let re = retarget(else_block, f);
                (rt != then_block || re != else_block).then_some(Term::Branch {
                    cond,
                    then_block: rt,
                    else_block: re,
                })
            }
            _ => None,
        };
        if let Some(n) = new {
            changed += 1;
            f.blocks[bi].term = Some(n);
        }
        // Call ops and dispatch-table trampolines keep their targets: a
        // call returns, and table entries are pinned above.
    }
    // Trampoline targets *inside* dispatch tables: the table block itself
    // is pinned, but its own jump can thread.
    for bi in 0..f.blocks.len() {
        if let Some(Term::Jump(t)) = f.blocks[bi].term {
            if pinned.contains(&(bi as u32)) {
                let r = resolve(t, f, &pinned);
                if r != t {
                    changed += 1;
                    f.blocks[bi].term = Some(Term::Jump(r));
                }
            }
        }
    }
    changed
}

/// Dead-flag analysis: marks every flag-setting operation whose flags no
/// one observes before they are overwritten, so selection may use
/// flag-free template variants (see [`mcc_mir::select::select_op`]).
///
/// Backward per block. Flags are observed by the block terminator when it
/// is a conditional branch, by `Adc`/`Sbb` (they read carry), and —
/// conservatively — by `Call` and `Poll` (a callee or an interrupt
/// handler may look at them). Flags are conservatively assumed live at
/// the exit of every block except those ending in `Halt`/`Ret`, which
/// keeps the analysis sound without a cross-block fixpoint: the *last*
/// flag writer of a fall-through block stays flagful.
///
/// Returns the number of operations marked.
pub fn mark_dead_flags(f: &mut MirFunction) -> usize {
    use mcc_machine::{AluOp, Semantic};
    let mut marked = 0;
    for b in &mut f.blocks {
        let mut live = !matches!(
            b.term,
            Some(mcc_mir::Term::Halt) | Some(mcc_mir::Term::Ret)
        );
        if matches!(b.term, Some(mcc_mir::Term::Branch { .. })) {
            live = true;
        }
        for op in b.ops.iter_mut().rev() {
            let reads = matches!(
                op.sem,
                Semantic::Alu(AluOp::Adc | AluOp::Sbb) | Semantic::Call | Semantic::Poll
            );
            if op.sets_flags() {
                op.flags_dead = !live;
                if op.flags_dead {
                    marked += 1;
                }
                live = false;
            }
            if reads {
                live = true;
            }
        }
    }
    marked
}

fn is_macro_visible(m: &MachineDesc, r: RegRef) -> bool {
    m.file(r.file).macro_visible
}

/// Taint: which entry values of macro-visible registers a value depends on.
type Taint = BTreeSet<RegRef>;

/// Detects restart-unsafe writes: an operation that writes a macro-visible
/// register with a value depending on that same register's value at entry
/// (non-idempotent), followed on the linearised program by a faultable
/// memory operation. A page-fault restart then replays the write on the
/// already-updated register — the paper's `incread` double increment.
///
/// The analysis is linear and conservative about loops (every block is
/// visited in layout order with taints joined), which is sound for the
/// structured CFGs the frontends emit.
pub fn trap_safety(m: &MachineDesc, f: &MirFunction) -> Vec<Warning> {
    let mut taint: BTreeMap<RegRef, Taint> = BTreeMap::new();
    // Entry: every macro-visible register depends on itself.
    for (fi, file) in m.files.iter().enumerate() {
        if file.macro_visible {
            for i in 0..file.count {
                let r = RegRef::new(mcc_machine::ids::FileId(fi as u16), i);
                taint.insert(r, BTreeSet::from([r]));
            }
        }
    }

    let mut warnings = Vec::new();
    let mut pending: Vec<(RegRef, String)> = Vec::new();

    for (bi, b) in f.blocks.iter().enumerate() {
        for op in &b.ops {
            if op.sem.may_trap() {
                // Raw memory op: any pending non-idempotent write becomes
                // observable through a restart.
                for (r, what) in &pending {
                    warnings.push(Warning {
                        message: format!(
                            "macro-visible register {r} is updated non-idempotently by \
                             `{what}` before a faultable memory operation in b{bi}; a \
                             page-fault restart would replay the update (the paper's \
                             `incread` bug)"
                        ),
                    });
                }
                pending.clear();
                continue;
            }
            // Propagate taint.
            let mut src_taint: Taint = BTreeSet::new();
            for s in &op.srcs {
                if let Operand::Reg(r) = s {
                    if let Some(t) = taint.get(r) {
                        src_taint.extend(t.iter().copied());
                    }
                }
            }
            if let Some(Operand::Reg(d)) = op.dst {
                if is_macro_visible(m, d) && src_taint.contains(&d) {
                    pending.push((d, op.to_string()));
                }
                taint.insert(d, src_taint);
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::{AluOp, CondKind, Semantic};
    use mcc_mir::{FuncBuilder, Term};

    #[test]
    fn incread_pattern_flagged() {
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mar = Operand::Reg(m.special.mar.unwrap());
        let mut b = FuncBuilder::new("incread");
        b.alu_un(AluOp::Inc, r0, r0);
        b.mov(mar, r0);
        b.push(MirOp::new(Semantic::MemRead));
        b.terminate(Term::Halt);
        let f = b.finish();
        let w = trap_safety(&m, &f);
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("non-idempotently"));
    }

    #[test]
    fn idempotent_write_not_flagged() {
        // r0 := 5 (constant) before a read: restart-safe.
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mar = Operand::Reg(m.special.mar.unwrap());
        let mut b = FuncBuilder::new("safe");
        b.ldi(r0, 5);
        b.mov(mar, r0);
        b.push(MirOp::new(Semantic::MemRead));
        b.terminate(Term::Halt);
        let w = trap_safety(&m, &b.finish());
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn scratch_register_updates_are_safe() {
        // ACC (not macro-visible) may be updated non-idempotently.
        let m = hm1();
        let acc = Operand::Reg(m.special.acc.unwrap());
        let mar = Operand::Reg(m.special.mar.unwrap());
        let mut b = FuncBuilder::new("s");
        b.alu_un(AluOp::Inc, acc, acc);
        b.mov(mar, acc);
        b.push(MirOp::new(Semantic::MemRead));
        b.terminate(Term::Halt);
        let w = trap_safety(&m, &b.finish());
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn write_after_last_fault_is_safe() {
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mut b = FuncBuilder::new("s");
        b.push(MirOp::new(Semantic::MemRead));
        b.alu_un(AluOp::Inc, r0, r0);
        b.terminate(Term::Halt);
        let w = trap_safety(&m, &b.finish());
        assert!(w.is_empty());
    }

    #[test]
    fn polls_inserted_at_loop_header_and_interval() {
        let mut b = FuncBuilder::new("p");
        let x = b.vreg();
        b.ldi(x, 9);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump_and_switch(head);
        b.alu_un(AluOp::Pass, x, x);
        b.branch(CondKind::Zero, done, body);
        b.switch_to(body);
        for _ in 0..5 {
            b.alu_imm(AluOp::Sub, x, x, 1);
        }
        b.terminate(Term::Jump(head));
        b.switch_to(done);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let n = insert_polls(&mut f, 3);
        assert!(n >= 2, "header poll + interval poll, got {n}");
        let polls: usize = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| o.sem == mcc_machine::Semantic::Poll)
            .count();
        assert_eq!(polls, n);
        // Loop header got one at the front.
        assert_eq!(f.blocks[head as usize].ops[0].sem, mcc_machine::Semantic::Poll);
    }

    #[test]
    fn jump_threading_skips_trampolines() {
        use mcc_mir::Term;
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 1);
        let tramp = b.new_block();
        let tramp2 = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Jump(tramp));
        b.switch_to(tramp);
        b.terminate(Term::Jump(tramp2));
        b.switch_to(tramp2);
        b.terminate(Term::Jump(end));
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let n = thread_jumps(&mut f);
        assert!(n >= 1);
        assert_eq!(f.blocks[0].term, Some(Term::Jump(end)));
        f.validate().unwrap();
    }

    #[test]
    fn jump_threading_keeps_dispatch_tables() {
        use mcc_mir::Term;
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 0);
        let t0 = b.new_block();
        let t1 = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Dispatch {
            src: x.into(),
            mask: 1,
            table: vec![t0, t1],
        });
        for t in [t0, t1] {
            b.switch_to(t);
            b.terminate(Term::Jump(end));
        }
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        thread_jumps(&mut f);
        // Table entries survive as blocks (pinned), still valid.
        f.validate().unwrap();
        match f.blocks[0].term.as_ref().unwrap() {
            Term::Dispatch { table, .. } => assert_eq!(table, &vec![t0, t1]),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn self_loop_trampoline_terminates() {
        use mcc_mir::Term;
        let mut b = FuncBuilder::new("t");
        let lp = b.new_block();
        b.terminate(Term::Jump(lp));
        b.switch_to(lp);
        b.terminate(Term::Jump(lp)); // empty self-loop (an infinite spin)
        let mut f = b.finish();
        thread_jumps(&mut f); // must not hang
        f.validate().unwrap();
    }

    #[test]
    fn no_trailing_poll_before_halt() {
        let mut b = FuncBuilder::new("p");
        let x = b.vreg();
        b.ldi(x, 1);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let n = insert_polls(&mut f, 1);
        assert_eq!(n, 0, "a poll right before halt is useless");
    }
}
