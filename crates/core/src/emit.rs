//! Emission: compacted blocks + terminators → a [`MicroProgram`].
//!
//! Terminator micro-operations are packed into the last microinstruction
//! of their block when dependence- and conflict-safe
//! ([`mcc_compact::pack_control`]); fallthrough jumps to the next block
//! are elided — except for dispatch-table blocks, which must stay exactly
//! one microinstruction long so that `µPC = base + index` lands correctly.

use std::collections::HashSet;

use mcc_compact::{compact_degrading, pack_control, Algorithm};
use mcc_machine::op::MicroBlock;
use mcc_machine::{BoundOp, CondKind, ConflictModel, MachineDesc, MicroProgram, Semantic};
use mcc_mir::select::{SelectedFunction, SelectedTerm};

/// What emission actually did: the algorithm the schedule came from (the
/// most degraded one across all blocks) and every degradation event.
#[derive(Debug, Clone, Default)]
pub struct EmitReport {
    /// Name of the weakest algorithm any block fell back to.
    pub algorithm_used: String,
    /// One entry per degradation step, prefixed with the block index.
    pub degradations: Vec<String>,
}

/// Degradation rank: higher = weaker algorithm.
fn degrade_rank(name: &str) -> u32 {
    match name {
        "critpath" => 1,
        "linear" => 2,
        "sequential" => 3,
        _ => 0, // the requested algorithm itself
    }
}

fn control_op(m: &MachineDesc, sem: Semantic) -> mcc_machine::TemplateId {
    m.templates_for(sem)
        .next()
        .unwrap_or_else(|| panic!("machine {} lacks {:?}", m.name, sem))
}

/// Whether `cond` has a genuine machine-testable negation.
fn negatable(m: &MachineDesc, cond: CondKind) -> bool {
    let n = cond.negate();
    n != cond && m.supports_cond(n)
}

/// Whether control falls from block `i` to block `t` with no intervening
/// instructions: `t` is ahead of `i` and every block between them emits
/// nothing.
fn falls_through(i: usize, t: u32, empty: &[bool]) -> bool {
    let t = t as usize;
    t > i && (i + 1..t).all(|j| empty[j])
}

/// Assembles the selected function into a block-structured microprogram.
///
/// Compaction never fails: each block runs through the degradation chain
/// (requested algorithm → list scheduling → FCFS → sequential), and the
/// returned [`EmitReport`] records which algorithm the weakest block ended
/// up with plus every fallback event.
pub fn emit(
    m: &MachineDesc,
    f: &SelectedFunction,
    algo: Algorithm,
    model: ConflictModel,
    bb_budget: u64,
) -> (MicroProgram, EmitReport) {
    // Tokoro-style compaction always judges conflicts per phase; the
    // emitted code must be validated (and terminators packed) under the
    // same model it was scheduled with.
    let model = if algo == Algorithm::Tokoro {
        ConflictModel::Fine
    } else {
        model
    };
    // Dispatch-table blocks may not collapse to zero instructions.
    let mut table_blocks: HashSet<u32> = HashSet::new();
    for b in &f.blocks {
        if let SelectedTerm::Dispatch { table, .. } = &b.term {
            table_blocks.extend(table.iter().copied());
        }
    }

    // Which blocks emit zero instructions: op-less, jump-terminated, and
    // the jump itself elidable. Jump threading retargets jumps *past*
    // empty trampolines, so elision must look through them rather than
    // test `target == i + 1` — otherwise a threaded jump costs a word on
    // vertical machines (and breaks S*'s cobegin one-instruction check).
    // `empty[j]` only depends on blocks after `j`, so a backward sweep
    // computes the fixpoint in one pass.
    let n = f.blocks.len();
    let mut empty = vec![false; n];
    for j in (0..n).rev() {
        if table_blocks.contains(&(j as u32)) {
            continue;
        }
        if let SelectedTerm::Jump(t) = f.blocks[j].term {
            empty[j] =
                f.blocks[j].ops.is_empty() && falls_through(j, t, &empty);
        }
    }

    let mut report = EmitReport {
        algorithm_used: algo.name().to_string(),
        degradations: Vec::new(),
    };
    let mut worst = 0u32;
    let mut out = MicroProgram::new();
    for (i, b) in f.blocks.iter().enumerate() {
        let fall = |t: u32| falls_through(i, t, &empty);
        let i = i as u32;
        let d = compact_degrading(m, &b.ops, algo, model, bb_budget);
        for ev in &d.events {
            report.degradations.push(format!("b{i}: {ev}"));
        }
        let rank = if d.algorithm_used == algo.name() {
            0
        } else {
            degrade_rank(d.algorithm_used)
        };
        if rank > worst {
            worst = rank;
            report.algorithm_used = d.algorithm_used.to_string();
        }
        let mut instrs = d.compaction.instrs;
        match &b.term {
            SelectedTerm::Jump(t) => {
                if !fall(*t) || table_blocks.contains(&i) {
                    let op = BoundOp::new(control_op(m, Semantic::Jump)).with_target(*t);
                    pack_control(m, &mut instrs, op, model);
                }
            }
            SelectedTerm::Branch {
                cond,
                then_block,
                else_block,
            } => {
                let br = control_op(m, Semantic::Branch);
                if fall(*else_block) {
                    let op = BoundOp::new(br).with_cond(*cond).with_target(*then_block);
                    pack_control(m, &mut instrs, op, model);
                } else if fall(*then_block) && negatable(m, *cond) {
                    let op = BoundOp::new(br)
                        .with_cond(cond.negate())
                        .with_target(*else_block);
                    pack_control(m, &mut instrs, op, model);
                } else {
                    let op = BoundOp::new(br).with_cond(*cond).with_target(*then_block);
                    pack_control(m, &mut instrs, op, model);
                    let jmp =
                        BoundOp::new(control_op(m, Semantic::Jump)).with_target(*else_block);
                    instrs.push(mcc_machine::MicroInstr::single(jmp));
                }
            }
            SelectedTerm::Dispatch { src, mask, table } => {
                let op = BoundOp::new(control_op(m, Semantic::Dispatch))
                    .with_src(*src)
                    .with_imm(*mask)
                    .with_target(table[0]);
                pack_control(m, &mut instrs, op, model);
            }
            SelectedTerm::Ret => {
                let op = BoundOp::new(control_op(m, Semantic::Return));
                pack_control(m, &mut instrs, op, model);
            }
            SelectedTerm::Halt => {
                let op = BoundOp::new(control_op(m, Semantic::Halt));
                pack_control(m, &mut instrs, op, model);
            }
        }
        out.blocks.push(MicroBlock { instrs });
    }

    debug_assert!(
        out.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .all(|mi| m.validate_instr(mi, model).is_ok()),
        "emitted invalid microinstruction"
    );
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::{AluOp, RegRef};
    use mcc_mir::select::select_function;
    use mcc_mir::{FuncBuilder, Operand, Term};

    fn emit_simple(term_to_next: bool) -> MicroProgram {
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mut b = FuncBuilder::new("t");
        b.alu_imm(AluOp::Add, r0, r0, 1);
        let nxt = b.new_block();
        if term_to_next {
            b.terminate(Term::Jump(nxt));
        } else {
            // jump back to self — can't be elided
            b.terminate(Term::Jump(0));
        }
        b.switch_to(nxt);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        mcc_mir::legalize(&m, &mut f).unwrap();
        let sf = select_function(&m, &f).unwrap();
        emit(&m, &sf, Algorithm::CriticalPath, ConflictModel::Fine, 0).0
    }

    #[test]
    fn fallthrough_jump_elided() {
        let p = emit_simple(true);
        // Block 0: just the add (jump elided). Block 1: halt.
        assert_eq!(p.blocks[0].instrs.len(), 1);
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn backward_jump_kept_and_packed() {
        let p = emit_simple(false);
        // The jmp packs into the add's microinstruction (no conflicts).
        assert_eq!(p.blocks[0].instrs.len(), 1);
        assert_eq!(p.blocks[0].instrs[0].len(), 2);
    }

    #[test]
    fn branch_with_far_else_gets_trailing_jump() {
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mut b = FuncBuilder::new("t");
        b.alu_imm(AluOp::Add, r0, r0, 1);
        let t1 = b.new_block();
        let t2 = b.new_block();
        // then = next block, else = far: emit negated branch to else.
        b.branch(mcc_machine::CondKind::Zero, t1, t2);
        b.switch_to(t1);
        b.terminate(Term::Halt);
        b.switch_to(t2);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        mcc_mir::legalize(&m, &mut f).unwrap();
        let sf = select_function(&m, &f).unwrap();
        let (p, rep) = emit(&m, &sf, Algorithm::CriticalPath, ConflictModel::Fine, 0);
        assert_eq!(rep.algorithm_used, "critpath");
        assert!(rep.degradations.is_empty());
        // Block 0: add-MI, then branch-MI (flag RAW forbids packing).
        assert_eq!(p.blocks[0].instrs.len(), 2);
        let br = &p.blocks[0].instrs[1].ops[0];
        assert_eq!(br.cond, Some(mcc_machine::CondKind::NotZero), "negated");
        assert_eq!(br.target, Some(t2));
    }

    #[test]
    fn jump_threaded_past_empty_blocks_is_elided() {
        // b0: op, jump b2 (as if jump-threaded past empty b1); b1: empty,
        // jump b2; b2: halt. Both jumps are pure fallthrough once b1
        // vanishes, so b0 must emit exactly one instruction with no jump.
        let m = hm1();
        let r0 = Operand::Reg(RegRef::new(m.find_file("R").unwrap(), 0));
        let mut b = FuncBuilder::new("t");
        b.alu_imm(AluOp::Add, r0, r0, 1);
        let mid = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Jump(end));
        b.switch_to(mid);
        b.terminate(Term::Jump(end));
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        mcc_mir::legalize(&m, &mut f).unwrap();
        let sf = select_function(&m, &f).unwrap();
        let p = emit(&m, &sf, Algorithm::CriticalPath, ConflictModel::Fine, 0).0;
        assert_eq!(p.blocks[0].instrs.len(), 1);
        assert_eq!(p.blocks[0].instrs[0].len(), 1, "jump over empty block elided");
        assert_eq!(p.blocks[mid as usize].instrs.len(), 0);
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn dispatch_table_blocks_never_collapse() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 0);
        let t0 = b.new_block();
        let t1 = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Dispatch {
            src: x.into(),
            mask: 1,
            table: vec![t0, t1],
        });
        b.switch_to(t0);
        b.terminate(Term::Jump(end)); // would normally be elidable if end == t0+1? no: t1 intervenes
        b.switch_to(t1);
        b.terminate(Term::Jump(end)); // end == t1+1 → normally elided!
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        f.validate().unwrap();
        mcc_mir::legalize(&m, &mut f).unwrap();
        mcc_regalloc::allocate(&m, &mut f, &Default::default()).unwrap();
        let sf = select_function(&m, &f).unwrap();
        let p = emit(&m, &sf, Algorithm::CriticalPath, ConflictModel::Fine, 0).0;
        assert_eq!(p.blocks[t0 as usize].instrs.len(), 1, "table entry is 1 MI");
        assert_eq!(p.blocks[t1 as usize].instrs.len(), 1, "table entry kept");
    }
}
