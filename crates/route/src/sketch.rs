//! A count-min sketch for hot-key detection: fixed memory, never
//! undercounts, and the overestimate is bounded by the sketch width —
//! exactly the trade a router wants, because the only decision riding
//! on it is "replicate this key to one more shard", where a false
//! positive costs a little cache duplication and a false negative costs
//! a hot shard.

use mcc_harness::splitmix64;

/// A count-min sketch: `depth` rows of `width` counters; each key
/// increments one counter per row and reads back the row minimum.
#[derive(Debug)]
pub struct Sketch {
    width: u64,
    rows: Vec<Vec<u64>>,
    seeds: Vec<u64>,
}

impl Sketch {
    /// A sketch with `depth` independent rows of `width` counters,
    /// hashed by per-row seeds derived from `seed`.
    ///
    /// # Panics
    ///
    /// If `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Sketch {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        Sketch {
            width: width as u64,
            rows: vec![vec![0; width]; depth],
            seeds: (0..depth as u64).map(|r| splitmix64(seed ^ r)).collect(),
        }
    }

    /// Records one occurrence of `key` and returns its estimated count
    /// (an overestimate, never an undercount).
    pub fn observe(&mut self, key: u64) -> u64 {
        let mut est = u64::MAX;
        for (row, &rs) in self.rows.iter_mut().zip(&self.seeds) {
            #[allow(clippy::cast_possible_truncation)]
            let idx = (splitmix64(key ^ rs) % self.width) as usize;
            row[idx] += 1;
            est = est.min(row[idx]);
        }
        est
    }

    /// Reads the current estimate without incrementing.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        for (row, &rs) in self.rows.iter().zip(&self.seeds) {
            #[allow(clippy::cast_possible_truncation)]
            let idx = (splitmix64(key ^ rs) % self.width) as usize;
            est = est.min(row[idx]);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_never_undercount_and_hot_keys_stand_out() {
        let mut s = Sketch::new(256, 4, 7);
        // Background noise: 512 distinct cold keys, once each.
        for k in 0..512u64 {
            s.observe(splitmix64(k));
        }
        // One hot key, 100 times.
        let hot = splitmix64(0xdead_beef);
        let mut last = 0;
        for _ in 0..100 {
            last = s.observe(hot);
        }
        assert!(last >= 100, "count-min never undercounts, got {last}");
        assert!(
            last < 100 + 64,
            "overestimate stays modest at this load, got {last}"
        );
        // A cold key's estimate stays far below the hot key's.
        let cold = s.estimate(splitmix64(3));
        assert!(cold < 20, "cold keys stay cold, got {cold}");
    }

    #[test]
    fn estimate_matches_observe_without_incrementing() {
        let mut s = Sketch::new(64, 3, 1);
        s.observe(42);
        s.observe(42);
        assert_eq!(s.estimate(42), 2);
        assert_eq!(s.estimate(42), 2, "estimate does not increment");
    }
}
