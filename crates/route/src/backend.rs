//! Backend transports: how the router actually reaches a shard.
//!
//! A [`Backend`] turns one request line into one response line.
//! `Err` means *transport* failure — connect refused, connection torn
//! mid-frame, backend process gone — and feeds the shard's circuit
//! breaker. Structured protocol errors (`400`, `503`, …) come back as
//! `Ok`: the shard answered, so it is healthy, whatever it said.
//!
//! Two transports:
//!
//! * [`InProcBackend`] wraps an in-process [`Server`] — the bench fleet
//!   and the deterministic unit tests, with a [`kill`] switch that
//!   simulates a SIGKILLed shard;
//! * [`TcpBackend`] pools real connections to a remote `mcc serve`,
//!   reconnecting with the harness's capped-exponential,
//!   splitmix64-jittered backoff so a restarting fleet of routers does
//!   not stampede a recovering shard.
//!
//! [`kill`]: InProcBackend::kill

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mcc_harness::backoff::{self, BackoffConfig};
use mcc_serve::proto::{self, Envelope, Response, MAX_FRAME_BYTES};
use mcc_serve::proto2;
use mcc_serve::tcp::{read_frame_into, write_frame, FrameRead};
use mcc_serve::Server;

/// One shard, behind whatever transport reaches it.
pub trait Backend: Send + Sync {
    /// The shard's stable name (ring placement hashes this).
    fn name(&self) -> &str;

    /// One request line in, one response line out. `Err` is a transport
    /// failure and trips the breaker; structured errors are `Ok`.
    fn call(&self, line: &str, client: &str) -> Result<String, String>;
}

/// An in-process shard: calls straight into a [`Server`], with a kill
/// switch for deterministic failover tests.
pub struct InProcBackend {
    name: String,
    server: Arc<Server>,
    dead: AtomicBool,
}

impl InProcBackend {
    /// Wraps `server` as the shard named `name`.
    pub fn new(name: &str, server: Arc<Server>) -> InProcBackend {
        InProcBackend {
            name: name.to_string(),
            server,
            dead: AtomicBool::new(false),
        }
    }

    /// Simulates SIGKILL: every subsequent call is a transport failure.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Undoes [`kill`](InProcBackend::kill) — the shard restarted.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
    }

    /// The wrapped server (for counter assertions in tests).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

impl Backend for InProcBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, line: &str, client: &str) -> Result<String, String> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(format!("{}: connection refused (killed)", self.name));
        }
        // Through the frame path, so enveloped requests get the same
        // dedup/replay semantics a TCP shard would apply; the envelope is
        // stripped because backends return bare bodies (the router wraps
        // its own client's response itself).
        let resp = self.server.handle_frame(line, client);
        Ok(match proto::unwrap_envelope(&resp) {
            Envelope::Enveloped { body, .. } => format!("{body}\n"),
            _ => resp,
        })
    }
}

/// A remote shard over TCP, with a small connection pool, deterministic
/// reconnect backoff, a read deadline on every round trip, and
/// exactly-once retries for enveloped requests.
///
/// Retry safety: a pooled-connection failure *after the write completed*
/// is indistinguishable from a failure before the server executed — so a
/// blind re-send could double-execute. For enveloped requests the retry
/// re-sends the **same frame** (same `request_id`): the server's
/// idempotency window replays the recorded response instead of executing
/// again, which is what makes the reconnect path safe.
pub struct TcpBackend {
    name: String,
    addr: String,
    pool: Mutex<Vec<Conn>>,
    backoff: BackoffConfig,
    seed: u64,
    connect_attempts: u32,
    /// Read deadline per round trip — distinct from the serve-side idle
    /// reaper, so a black-holed shard surfaces as a timed-out call
    /// feeding the breaker instead of hanging a router worker.
    read_timeout: Option<Duration>,
    /// Fresh-connection attempts after a failed round trip (each re-sends
    /// the same frame; the dedup window makes that exactly-once).
    call_retries: u32,
    /// Version negotiation: set when the peer rejected an envelope as
    /// bare JSON — subsequent requests are sent unwrapped.
    peer_bare: AtomicBool,
    /// Guard against corruption-driven downgrades: once any enveloped
    /// exchange succeeded, a later bare 400 can't flip `peer_bare`.
    envelope_ok: AtomicBool,
    /// Speak binary protocol v2 first (fall back to v1 on handshake
    /// evidence that the peer only does lines).
    proto2: bool,
    /// Sticky v2→v1 downgrade: the peer answered the v2 hello with v1's
    /// bare 400.
    peer_v1: AtomicBool,
    /// Guard against corruption-driven v2 downgrades, mirroring
    /// `envelope_ok`: once any v2 exchange succeeded, a later bare
    /// answer can't flip `peer_v1`.
    v2_ok: AtomicBool,
    /// Pooled negotiated v2 connections (their internal buffers are the
    /// reusable read/write state).
    v2_pool: Mutex<Vec<proto2::Client>>,
    /// rid source for bare (unenveloped) requests sent over v2 — only
    /// used to match responses on the connection, never for dedup.
    anon_rid: AtomicU64,
}

/// One pooled v1 connection: the buffered reader survives across round
/// trips (writes go through [`BufReader::get_mut`]) and `buf` is the
/// reusable frame buffer — no per-call `BufReader` or `Vec` churn.
struct Conn {
    r: BufReader<TcpStream>,
    buf: Vec<u8>,
}

/// One validated round-trip result.
enum Wire {
    /// The matching response body (bare, newline-terminated).
    Ok(String),
    /// The peer answered an enveloped request with a bare
    /// `400 malformed frame` — it predates the envelope.
    BarePeer,
}

/// One connection attempt's outcome inside [`TcpBackend::call`].
enum Attempt {
    Done(String),
    BareRenegotiate,
    Fail(String),
}

impl TcpBackend {
    /// A backend reaching `addr`, retrying failed connects
    /// `connect_attempts` times on the jittered schedule derived from
    /// `seed` and the backend name. Wire defaults: 10 s read deadline,
    /// one fresh-connection retry (tune with [`TcpBackend::with_wire`]).
    pub fn new(name: &str, addr: &str, seed: u64, connect_attempts: u32) -> TcpBackend {
        TcpBackend {
            name: name.to_string(),
            addr: addr.to_string(),
            pool: Mutex::new(Vec::new()),
            backoff: BackoffConfig::default(),
            seed,
            connect_attempts: connect_attempts.max(1),
            read_timeout: Some(Duration::from_millis(10_000)),
            call_retries: 1,
            peer_bare: AtomicBool::new(false),
            envelope_ok: AtomicBool::new(false),
            proto2: false,
            peer_v1: AtomicBool::new(false),
            v2_ok: AtomicBool::new(false),
            v2_pool: Mutex::new(Vec::new()),
            anon_rid: AtomicU64::new(1),
        }
    }

    /// Overrides the per-round-trip read deadline (`None` = wait forever)
    /// and the number of fresh-connection retries per call.
    pub fn with_wire(mut self, read_timeout: Option<Duration>, call_retries: u32) -> TcpBackend {
        self.read_timeout = read_timeout;
        self.call_retries = call_retries.max(1);
        self
    }

    /// Opts this backend into binary protocol v2. The first connection
    /// runs the hello handshake; a peer that answers with v1's bare 400
    /// downgrades the backend to lines, stickily, exactly like the
    /// envelope negotiation one layer down.
    pub fn with_proto2(mut self, on: bool) -> TcpBackend {
        self.proto2 = on;
        self
    }

    /// Connects with capped-exponential backoff; the jitter is a pure
    /// function of `(seed, backend name, attempt)`, so a router fleet
    /// restarting together still spreads its reconnects.
    fn connect(&self) -> Result<TcpStream, String> {
        let mut last = String::new();
        for attempt in 1..=self.connect_attempts {
            if attempt > 1 {
                std::thread::sleep(backoff::delay(
                    &self.backoff,
                    self.seed,
                    &self.name,
                    attempt - 1,
                ));
            }
            match TcpStream::connect(&self.addr) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    return Ok(s);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(format!("{}: connect {} failed: {last}", self.name, self.addr))
    }

    /// One request/response round trip on an established connection, with
    /// the read deadline applied and capped frame reads. For enveloped
    /// requests (`ident` set) the read loop validates the response: frames
    /// with the wrong identity are stale duplicates from an earlier
    /// request on this pooled connection and are discarded, corrupt
    /// envelopes are transport failures (never accepted — the retry, not
    /// the corruption, wins), and the matching frame is unwrapped.
    fn round_trip(
        &self,
        conn: &mut Conn,
        frame: &str,
        ident: Option<&(String, u64)>,
    ) -> Result<Wire, String> {
        conn.r
            .get_ref()
            .set_read_timeout(self.read_timeout)
            .map_err(|e| format!("set read timeout: {e}"))?;
        write_frame(conn.r.get_mut(), frame.as_bytes()).map_err(|e| format!("write: {e}"))?;
        // The reader persists across round trips: anything a previous
        // trip left buffered is a stale duplicate, and this trip's
        // discard loop skips it. A failed trip drops the whole
        // connection, so `buf` never carries a torn partial forward.
        conn.buf.clear();
        loop {
            let resp = match read_frame_into(&mut conn.r, &mut conn.buf, MAX_FRAME_BYTES)
                .map_err(|e| format!("read: {e}"))?
            {
                FrameRead::Frame(resp) => resp,
                FrameRead::Eof => return Err("connection closed mid-response".to_string()),
                FrameRead::TimedOut => {
                    return Err(format!(
                        "read timed out after {:?} (black-holed or stalled peer)",
                        self.read_timeout.unwrap_or_default()
                    ))
                }
                FrameRead::Oversized => return Err("oversized response frame".to_string()),
            };
            let Some((cid, rid)) = ident else {
                return Ok(Wire::Ok(resp));
            };
            match proto::unwrap_envelope(&resp) {
                Envelope::Enveloped { cid: rcid, rid: rrid, body } => {
                    if rcid == *cid && rrid == *rid {
                        return Ok(Wire::Ok(format!("{body}\n")));
                    }
                    // Stale duplicate delivery: discard, keep reading.
                }
                Envelope::Corrupt(reason) => {
                    return Err(format!("corrupt response frame: {reason}"));
                }
                Envelope::Bare => {
                    if Response::field_num(&resp, "code") == Some(400)
                        && resp.contains("not a flat JSON object")
                    {
                        // The peer parsed our envelope as garbage JSON:
                        // it predates the extension.
                        return Ok(Wire::BarePeer);
                    }
                    // A stray bare frame on an enveloped exchange:
                    // stale — discard, keep reading.
                }
            }
        }
    }

    /// One attempt over one connection: round trip, pool the connection
    /// back on success, and remember that the peer speaks the envelope.
    fn attempt(&self, mut conn: Conn, frame: &str, ident: Option<&(String, u64)>) -> Attempt {
        match self.round_trip(&mut conn, frame, ident) {
            Ok(Wire::Ok(resp)) => {
                if ident.is_some() {
                    self.envelope_ok.store(true, Ordering::Relaxed);
                }
                mcc_serve::buf::shrink_reusable(&mut conn.buf);
                self.pool.lock().unwrap().push(conn);
                Attempt::Done(resp)
            }
            Ok(Wire::BarePeer) => {
                self.pool.lock().unwrap().push(conn);
                Attempt::BareRenegotiate
            }
            Err(e) => Attempt::Fail(e),
        }
    }

    /// One v2 attempt over one negotiated client connection.
    fn attempt_v2(
        &self,
        mut c: proto2::Client,
        cid: &str,
        rid: u64,
        body: &str,
    ) -> Attempt {
        match c.call(cid, rid, body) {
            Ok(resp) => {
                self.v2_ok.store(true, Ordering::Relaxed);
                self.v2_pool.lock().unwrap().push(c);
                Attempt::Done(resp)
            }
            // Any failure drops the connection; the caller retries on a
            // fresh one with the SAME (cid, rid), so the shard's dedup
            // window keeps the retry exactly-once.
            Err(e) => Attempt::Fail(e),
        }
    }

    /// The v2 call path: pooled negotiated connection first, then fresh
    /// handshakes. Returns `BareRenegotiate` only on strict downgrade
    /// evidence (the peer answered the hello with v1's bare 400) — a
    /// timeout or corrupt stream is a transport failure, never a
    /// downgrade, so chaos cannot flip a healthy v2 peer to v1.
    fn call_v2(&self, line: &str) -> Attempt {
        let (cid, rid, body) = match proto::unwrap_envelope(line) {
            Envelope::Enveloped { cid, rid, body } => (cid, rid, body),
            _ => (
                String::new(),
                self.anon_rid.fetch_add(1, Ordering::Relaxed),
                line.trim_end().to_string(),
            ),
        };
        let mut last = String::new();
        let pooled = self.v2_pool.lock().unwrap().pop();
        if let Some(c) = pooled {
            match self.attempt_v2(c, &cid, rid, &body) {
                Attempt::Done(resp) => return Attempt::Done(resp),
                Attempt::Fail(e) => last = e,
                Attempt::BareRenegotiate => unreachable!("attempt_v2 never renegotiates"),
            }
        }
        for _ in 0..self.call_retries {
            let s = match self.connect() {
                Ok(s) => s,
                Err(e) => return Attempt::Fail(e),
            };
            let want = proto2::Caps { compress: true, window: 8 };
            match proto2::Client::handshake(s, self.read_timeout, &want) {
                Ok(proto2::Handshake::V2(c)) => match self.attempt_v2(c, &cid, rid, &body) {
                    Attempt::Done(resp) => return Attempt::Done(resp),
                    Attempt::Fail(e) => last = e,
                    Attempt::BareRenegotiate => unreachable!("attempt_v2 never renegotiates"),
                },
                Ok(proto2::Handshake::V1Peer) => {
                    if !self.v2_ok.load(Ordering::Relaxed) {
                        return Attempt::BareRenegotiate;
                    }
                    last = "v2 hello answered bare by a v2-capable peer".to_string();
                }
                Err(e) => last = e,
            }
        }
        Attempt::Fail(format!("{}: {last}", self.name))
    }
}

impl Backend for TcpBackend {
    fn name(&self) -> &str {
        &self.name
    }

    // `client` is trait-mandated; this transport only threads it through
    // the renegotiation retry.
    #[allow(clippy::only_used_in_recursion)]
    fn call(&self, line: &str, client: &str) -> Result<String, String> {
        // v2 first when enabled and the peer hasn't proven v1-only.
        if self.proto2 && !self.peer_v1.load(Ordering::Relaxed) {
            match self.call_v2(line) {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::Fail(e) => return Err(e),
                Attempt::BareRenegotiate => {
                    // Strict handshake evidence: the peer is a v1 line
                    // server. Sticky, then fall through and speak v1.
                    self.peer_v1.store(true, Ordering::Relaxed);
                }
            }
        }
        let ident = match proto::unwrap_envelope(line) {
            Envelope::Enveloped { cid, rid, .. } => Some((cid, rid)),
            _ => None,
        };
        // Version negotiation: a peer that rejected the envelope gets the
        // bare body. Sticky per backend, never set while corruption is a
        // plausible cause (see `envelope_ok`).
        let (frame, ident) = if ident.is_some() && self.peer_bare.load(Ordering::Relaxed) {
            (format!("{}\n", proto::envelope_body(line)), None)
        } else {
            (line.to_string(), ident)
        };

        let mut last = String::new();
        // First try a pooled connection; a stale one (shard restarted,
        // idle reaper closed it) falls through to a fresh connect, so
        // one dead pooled socket never fails the request. The pop is
        // bound outside the `if let` — an `if let` on the lock result
        // would hold the guard through the body (edition-2021 scrutinee
        // lifetime) and deadlock against the push inside `attempt`.
        let pooled = self.pool.lock().unwrap().pop();
        if let Some(s) = pooled {
            match self.attempt(s, &frame, ident.as_ref()) {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::BareRenegotiate => {
                    if !self.envelope_ok.load(Ordering::Relaxed) {
                        self.peer_bare.store(true, Ordering::Relaxed);
                        return self.call(line, client);
                    }
                    last = "enveloped request answered bare by an envelope-capable peer"
                        .to_string();
                }
                Attempt::Fail(e) => last = e,
            }
        }
        // Fresh connections re-send the SAME frame — same request_id —
        // so a failure after the server executed replays, not re-runs.
        for _ in 0..self.call_retries {
            let s = Conn { r: BufReader::new(self.connect()?), buf: Vec::new() };
            match self.attempt(s, &frame, ident.as_ref()) {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::BareRenegotiate => {
                    if !self.envelope_ok.load(Ordering::Relaxed) {
                        self.peer_bare.store(true, Ordering::Relaxed);
                        return self.call(line, client);
                    }
                    last = "enveloped request answered bare by an envelope-capable peer"
                        .to_string();
                }
                Attempt::Fail(e) => last = e,
            }
        }
        Err(format!("{}: {last}", self.name))
    }
}

/// A line terminated by `\n`, with `"backend":"<name>"` spliced in
/// before the closing brace — how the router marks which shard served a
/// response, so tests and the bench can audit placement end to end.
pub fn tag_backend(line: &str, name: &str) -> String {
    let t = line.trim_end();
    if let Some(body) = t.strip_suffix('}') {
        format!("{body},\"backend\":\"{}\"}}\n", mcc_harness::json::esc(name))
    } else {
        // Not an object (shouldn't happen) — pass through untagged.
        format!("{t}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_serve::{proto::Response, ServeConfig};

    #[test]
    fn inproc_serves_then_kill_fails_then_revive_serves() {
        let b = InProcBackend::new("b0", Arc::new(Server::start(ServeConfig::default())));
        let pong = b.call("{\"op\":\"ping\"}\n", "t").expect("live backend answers");
        assert_eq!(Response::field_num(&pong, "code"), Some(200));
        b.kill();
        assert!(b.call("{\"op\":\"ping\"}\n", "t").is_err(), "killed = transport error");
        b.revive();
        assert!(b.call("{\"op\":\"ping\"}\n", "t").is_ok());
    }

    #[test]
    fn tag_backend_splices_the_shard_name() {
        let tagged = tag_backend("{\"id\":\"r1\",\"code\":200}\n", "b2");
        assert_eq!(tagged, "{\"id\":\"r1\",\"code\":200,\"backend\":\"b2\"}\n");
        assert_eq!(Response::field_str(&tagged, "backend").as_deref(), Some("b2"));
    }

    #[test]
    fn tcp_backend_reuses_its_pooled_connection_across_calls() {
        let server = Arc::new(Server::start(ServeConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (server, stop) = (server.clone(), stop.clone());
            std::thread::spawn(move || mcc_serve::tcp::serve(server, listener, stop))
        };
        let b = TcpBackend::new("b0", &addr, 1, 2);
        // Sequential calls after the first must reuse the pooled
        // connection; this once deadlocked because the pool guard lived
        // through the `if let` body.
        for i in 0..3 {
            let resp = b.call("{\"op\":\"ping\"}\n", "t").expect("pooled call answers");
            assert_eq!(Response::field_num(&resp, "code"), Some(200), "call {i}");
        }
        assert_eq!(b.pool.lock().unwrap().len(), 1, "one connection, reused");
        stop.store(true, Ordering::SeqCst);
        handle.join().ok();
    }

    #[test]
    fn black_holed_backend_times_out_instead_of_hanging() {
        // A listener that accepts and never answers.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || {
            let mut socks = Vec::new();
            // Keep sockets open (no reply, no close) until the test ends.
            listener
                .set_nonblocking(false)
                .expect("blocking accept for the hold thread");
            for _ in 0..4 {
                match listener.accept() {
                    Ok((s, _)) => socks.push(s),
                    Err(_) => break,
                }
            }
        });
        let b = TcpBackend::new("bh", &addr, 1, 1)
            .with_wire(Some(Duration::from_millis(80)), 1);
        let start = std::time::Instant::now();
        let err = b.call("{\"op\":\"ping\"}\n", "t").unwrap_err();
        assert!(err.contains("timed out"), "deadline surfaced: {err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "bounded wait, not a hung router worker"
        );
        drop(hold);
    }

    #[test]
    fn enveloped_call_round_trips_and_replays_on_same_rid() {
        let server = Arc::new(Server::start(ServeConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (server, stop) = (server.clone(), stop.clone());
            std::thread::spawn(move || mcc_serve::tcp::serve(server, listener, stop))
        };
        let b = TcpBackend::new("b0", &addr, 1, 2);
        let frame = mcc_serve::proto::wrap_envelope("router-x", 11, "{\"op\":\"ping\"}");
        let resp = b.call(&frame, "t").expect("enveloped ping answers");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert!(!resp.starts_with("@mcc1"), "backend returns the bare body");
        // Same rid again: served from the dedup window, still a bare 200.
        let resp2 = b.call(&frame, "t").expect("replay answers");
        assert_eq!(Response::field_num(&resp2, "code"), Some(200));
        stop.store(true, Ordering::SeqCst);
        handle.join().ok();
    }

    #[test]
    fn bare_peer_negotiation_downgrades_and_sticks() {
        use std::io::{BufRead, BufReader as StdBufReader, Write};
        // A pre-envelope peer: envelope lines are garbage JSON to it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            while let Ok((s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut r = StdBufReader::new(s.try_clone().unwrap());
                    let mut w = s;
                    let mut line = String::new();
                    while r.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        let resp = if line.starts_with("@mcc1") {
                            "{\"id\":\"\",\"code\":400,\"error\":\"malformed frame: not a flat JSON object\"}\n".to_string()
                        } else {
                            "{\"id\":\"\",\"code\":200,\"pong\":1}\n".to_string()
                        };
                        if w.write_all(resp.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        let b = TcpBackend::new("old", &addr, 1, 2);
        let frame = mcc_serve::proto::wrap_envelope("router-x", 1, "{\"op\":\"ping\"}");
        let resp = b.call(&frame, "t").expect("negotiates down to bare JSON");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert!(b.peer_bare.load(Ordering::Relaxed), "downgrade is sticky");
        // Subsequent enveloped calls go straight through bare.
        let frame2 = mcc_serve::proto::wrap_envelope("router-x", 2, "{\"op\":\"ping\"}");
        let resp2 = b.call(&frame2, "t").unwrap();
        assert_eq!(Response::field_num(&resp2, "code"), Some(200));
    }

    #[test]
    fn proto2_backend_round_trips_and_pools_the_negotiated_connection() {
        let server = Arc::new(Server::start(ServeConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (server, stop) = (server.clone(), stop.clone());
            std::thread::spawn(move || mcc_serve::tcp::serve(server, listener, stop))
        };
        let b = TcpBackend::new("v2b", &addr, 1, 2).with_proto2(true);
        // Enveloped and bare calls both ride v2, and the same rid
        // replays from the shard's dedup window.
        let frame = mcc_serve::proto::wrap_envelope("router-x", 5, "{\"op\":\"ping\"}");
        let resp = b.call(&frame, "t").expect("v2 enveloped ping answers");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert!(!resp.starts_with("@mcc1"), "backend returns the bare body");
        let resp2 = b.call(&frame, "t").expect("v2 replay answers");
        assert_eq!(resp, resp2, "replayed response is byte-identical");
        let bare = b.call("{\"op\":\"ping\"}\n", "t").expect("bare over v2");
        assert_eq!(Response::field_num(&bare, "code"), Some(200));
        assert_eq!(b.v2_pool.lock().unwrap().len(), 1, "one negotiated conn, reused");
        assert!(b.v2_ok.load(Ordering::Relaxed));
        assert!(!b.peer_v1.load(Ordering::Relaxed), "no downgrade against a v2 server");
        stop.store(true, Ordering::SeqCst);
        handle.join().ok();
    }

    #[test]
    fn proto2_backend_downgrades_stickily_against_a_v1_only_peer() {
        use std::io::{BufRead, BufReader as StdBufReader, Write};
        // A v1-only line server: any non-JSON line (like the binary
        // hello) gets the classic bare 400.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            while let Ok((s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut r = StdBufReader::new(s.try_clone().unwrap());
                    let mut w = s;
                    let mut raw = Vec::new();
                    // Like the real v1 loop: lossy-decode, so the binary
                    // hello surfaces as a 400, not a UTF-8 read error.
                    while r.read_until(b'\n', &mut raw).map(|n| n > 0).unwrap_or(false) {
                        let line = String::from_utf8_lossy(&raw);
                        let resp = if line.trim_start().starts_with('{') {
                            "{\"id\":\"\",\"code\":200,\"pong\":1}\n".to_string()
                        } else {
                            "{\"id\":\"\",\"code\":400,\"error\":\"malformed frame: not a flat JSON object\"}\n".to_string()
                        };
                        if w.write_all(resp.as_bytes()).is_err() {
                            break;
                        }
                        raw.clear();
                    }
                });
            }
        });
        let b = TcpBackend::new("old", &addr, 1, 2).with_proto2(true);
        let resp = b.call("{\"op\":\"ping\"}\n", "t").expect("downgrades to v1 lines");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert!(b.peer_v1.load(Ordering::Relaxed), "v2→v1 downgrade is sticky");
        let resp2 = b.call("{\"op\":\"ping\"}\n", "t").unwrap();
        assert_eq!(Response::field_num(&resp2, "code"), Some(200));
    }

    #[test]
    fn tcp_backend_reports_connect_failure_with_the_backend_name() {
        // A port nothing listens on: bind-then-drop reserves one.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let b = TcpBackend::new("b7", &addr, 1, 2);
        let err = b.call("{\"op\":\"ping\"}\n", "t").unwrap_err();
        assert!(err.contains("b7"), "error names the shard: {err}");
    }
}
