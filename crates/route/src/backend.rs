//! Backend transports: how the router actually reaches a shard.
//!
//! A [`Backend`] turns one request line into one response line.
//! `Err` means *transport* failure — connect refused, connection torn
//! mid-frame, backend process gone — and feeds the shard's circuit
//! breaker. Structured protocol errors (`400`, `503`, …) come back as
//! `Ok`: the shard answered, so it is healthy, whatever it said.
//!
//! Two transports:
//!
//! * [`InProcBackend`] wraps an in-process [`Server`] — the bench fleet
//!   and the deterministic unit tests, with a [`kill`] switch that
//!   simulates a SIGKILLed shard;
//! * [`TcpBackend`] pools real connections to a remote `mcc serve`,
//!   reconnecting with the harness's capped-exponential,
//!   splitmix64-jittered backoff so a restarting fleet of routers does
//!   not stampede a recovering shard.
//!
//! [`kill`]: InProcBackend::kill

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mcc_harness::backoff::{self, BackoffConfig};
use mcc_serve::tcp::write_frame;
use mcc_serve::Server;

/// One shard, behind whatever transport reaches it.
pub trait Backend: Send + Sync {
    /// The shard's stable name (ring placement hashes this).
    fn name(&self) -> &str;

    /// One request line in, one response line out. `Err` is a transport
    /// failure and trips the breaker; structured errors are `Ok`.
    fn call(&self, line: &str, client: &str) -> Result<String, String>;
}

/// An in-process shard: calls straight into a [`Server`], with a kill
/// switch for deterministic failover tests.
pub struct InProcBackend {
    name: String,
    server: Arc<Server>,
    dead: AtomicBool,
}

impl InProcBackend {
    /// Wraps `server` as the shard named `name`.
    pub fn new(name: &str, server: Arc<Server>) -> InProcBackend {
        InProcBackend {
            name: name.to_string(),
            server,
            dead: AtomicBool::new(false),
        }
    }

    /// Simulates SIGKILL: every subsequent call is a transport failure.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Undoes [`kill`](InProcBackend::kill) — the shard restarted.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
    }

    /// The wrapped server (for counter assertions in tests).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

impl Backend for InProcBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, line: &str, client: &str) -> Result<String, String> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(format!("{}: connection refused (killed)", self.name));
        }
        Ok(self.server.handle_line(line, client).to_line())
    }
}

/// A remote shard over TCP, with a small connection pool and
/// deterministic reconnect backoff.
pub struct TcpBackend {
    name: String,
    addr: String,
    pool: Mutex<Vec<TcpStream>>,
    backoff: BackoffConfig,
    seed: u64,
    connect_attempts: u32,
}

impl TcpBackend {
    /// A backend reaching `addr`, retrying failed connects
    /// `connect_attempts` times on the jittered schedule derived from
    /// `seed` and the backend name.
    pub fn new(name: &str, addr: &str, seed: u64, connect_attempts: u32) -> TcpBackend {
        TcpBackend {
            name: name.to_string(),
            addr: addr.to_string(),
            pool: Mutex::new(Vec::new()),
            backoff: BackoffConfig::default(),
            seed,
            connect_attempts: connect_attempts.max(1),
        }
    }

    /// Connects with capped-exponential backoff; the jitter is a pure
    /// function of `(seed, backend name, attempt)`, so a router fleet
    /// restarting together still spreads its reconnects.
    fn connect(&self) -> Result<TcpStream, String> {
        let mut last = String::new();
        for attempt in 1..=self.connect_attempts {
            if attempt > 1 {
                std::thread::sleep(backoff::delay(
                    &self.backoff,
                    self.seed,
                    &self.name,
                    attempt - 1,
                ));
            }
            match TcpStream::connect(&self.addr) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    return Ok(s);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(format!("{}: connect {} failed: {last}", self.name, self.addr))
    }

    /// One request/response round trip on an established connection.
    fn round_trip(stream: &mut TcpStream, line: &str) -> Result<String, String> {
        write_frame(stream, line.as_bytes()).map_err(|e| format!("write: {e}"))?;
        // The server sends exactly one line per request, so a throwaway
        // BufReader cannot strand buffered bytes.
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(0) => Err("connection closed mid-response".to_string()),
            Ok(_) => Ok(resp),
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

impl Backend for TcpBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, line: &str, _client: &str) -> Result<String, String> {
        // First try a pooled connection; a stale one (shard restarted,
        // idle reaper closed it) falls through to a fresh connect, so
        // one dead pooled socket never fails the request. The pop is
        // bound outside the `if let` — an `if let` on the lock result
        // would hold the guard through the body (edition-2021 scrutinee
        // lifetime) and deadlock against the push below.
        let pooled = self.pool.lock().unwrap().pop();
        if let Some(mut s) = pooled {
            if let Ok(resp) = Self::round_trip(&mut s, line) {
                self.pool.lock().unwrap().push(s);
                return Ok(resp);
            }
        }
        let mut s = self.connect()?;
        let resp = Self::round_trip(&mut s, line)?;
        self.pool.lock().unwrap().push(s);
        Ok(resp)
    }
}

/// A line terminated by `\n`, with `"backend":"<name>"` spliced in
/// before the closing brace — how the router marks which shard served a
/// response, so tests and the bench can audit placement end to end.
pub fn tag_backend(line: &str, name: &str) -> String {
    let t = line.trim_end();
    if let Some(body) = t.strip_suffix('}') {
        format!("{body},\"backend\":\"{}\"}}\n", mcc_harness::json::esc(name))
    } else {
        // Not an object (shouldn't happen) — pass through untagged.
        format!("{t}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_serve::{proto::Response, ServeConfig};

    #[test]
    fn inproc_serves_then_kill_fails_then_revive_serves() {
        let b = InProcBackend::new("b0", Arc::new(Server::start(ServeConfig::default())));
        let pong = b.call("{\"op\":\"ping\"}\n", "t").expect("live backend answers");
        assert_eq!(Response::field_num(&pong, "code"), Some(200));
        b.kill();
        assert!(b.call("{\"op\":\"ping\"}\n", "t").is_err(), "killed = transport error");
        b.revive();
        assert!(b.call("{\"op\":\"ping\"}\n", "t").is_ok());
    }

    #[test]
    fn tag_backend_splices_the_shard_name() {
        let tagged = tag_backend("{\"id\":\"r1\",\"code\":200}\n", "b2");
        assert_eq!(tagged, "{\"id\":\"r1\",\"code\":200,\"backend\":\"b2\"}\n");
        assert_eq!(Response::field_str(&tagged, "backend").as_deref(), Some("b2"));
    }

    #[test]
    fn tcp_backend_reuses_its_pooled_connection_across_calls() {
        let server = Arc::new(Server::start(ServeConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (server, stop) = (server.clone(), stop.clone());
            std::thread::spawn(move || mcc_serve::tcp::serve(server, listener, stop))
        };
        let b = TcpBackend::new("b0", &addr, 1, 2);
        // Sequential calls after the first must reuse the pooled
        // connection; this once deadlocked because the pool guard lived
        // through the `if let` body.
        for i in 0..3 {
            let resp = b.call("{\"op\":\"ping\"}\n", "t").expect("pooled call answers");
            assert_eq!(Response::field_num(&resp, "code"), Some(200), "call {i}");
        }
        assert_eq!(b.pool.lock().unwrap().len(), 1, "one connection, reused");
        stop.store(true, Ordering::SeqCst);
        handle.join().ok();
    }

    #[test]
    fn tcp_backend_reports_connect_failure_with_the_backend_name() {
        // A port nothing listens on: bind-then-drop reserves one.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let b = TcpBackend::new("b7", &addr, 1, 2);
        let err = b.call("{\"op\":\"ping\"}\n", "t").unwrap_err();
        assert!(err.contains("b7"), "error names the shard: {err}");
    }
}
