//! The consistent-hash ring: backend placement as a pure function of
//! (backend names, vnode count, cache key), so every router instance —
//! and every test, and the bench's analytic placement table — agrees on
//! which shard owns which key without any coordination.
//!
//! Each backend contributes `vnodes` points on a `u64` ring; a key maps
//! to the first point clockwise from its own hash. Virtual nodes smooth
//! the load: with one point per backend the largest arc is expected to
//! be ~`ln n` times the fair share, while 64 vnodes bring the imbalance
//! down to a few percent. Removing one backend moves only the keys that
//! lived on its arcs — everyone else's placement is untouched, which is
//! what makes failover cheap: the ring successor of a dead shard is a
//! deterministic, minimal reassignment.

use mcc_harness::splitmix64;

/// FNV-1a over bytes, 64-bit — the ring's name hash. Local on purpose:
/// the cache's 128-bit FNV keys content-address *artifacts*; this
/// hashes *backend names*, and the two must be free to evolve apart.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over named backends.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
    /// Number of distinct backends.
    n: usize,
}

impl Ring {
    /// Builds the ring: `vnodes` points per backend, placed by mixing
    /// the backend's name hash with the vnode index.
    ///
    /// # Panics
    ///
    /// If `names` is empty or `vnodes` is zero — a router with no
    /// backends is a configuration error, not a runtime state.
    pub fn new(names: &[String], vnodes: usize) -> Ring {
        assert!(!names.is_empty(), "a ring needs at least one backend");
        assert!(vnodes > 0, "a backend needs at least one virtual node");
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (i, name) in names.iter().enumerate() {
            let base = fnv64(name.as_bytes());
            for v in 0..vnodes {
                points.push((splitmix64(base ^ splitmix64(v as u64 + 1)), i));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            n: names.len(),
        }
    }

    /// Folds a 128-bit cache key onto the ring's `u64` key space. The
    /// splitmix finisher matters: FNV's low bits are weakly mixed, and
    /// the ring compares points across the whole word.
    pub fn point_of(key: u128) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        splitmix64((key >> 64) as u64 ^ key as u64)
    }

    /// Number of distinct backends on the ring.
    pub fn backends(&self) -> usize {
        self.n
    }

    /// The backend that owns `point`: the first ring point clockwise.
    pub fn primary(&self, point: u64) -> usize {
        self.successors(point)[0]
    }

    /// All distinct backends in ring order starting at `point`'s owner —
    /// the deterministic failover (and hot-key replication) order.
    pub fn successors(&self, point: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut seen = vec![false; self.n];
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if !seen[b] {
                seen[b] = true;
                out.push(b);
                if out.len() == self.n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("b{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_covers_every_backend() {
        let ring = Ring::new(&names(4), 64);
        let again = Ring::new(&names(4), 64);
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            let p = Ring::point_of(u128::from(k) * 0x9e37_79b9_7f4a_7c15);
            let owner = ring.primary(p);
            assert_eq!(owner, again.primary(p), "same ring, same owner");
            counts[owner] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 4 / 3,
                "backend {i} owns a reasonable share with 64 vnodes, got {counts:?}"
            );
        }
    }

    #[test]
    fn successors_are_distinct_and_start_at_the_primary() {
        let ring = Ring::new(&names(5), 16);
        for k in 0..512u64 {
            let p = Ring::point_of(u128::from(k) << 7);
            let succ = ring.successors(p);
            assert_eq!(succ.len(), 5);
            assert_eq!(succ[0], ring.primary(p));
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "no duplicates in {succ:?}");
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let all = names(4);
        let ring4 = Ring::new(&all, 64);
        // The 3-backend ring drops "b3"; indices 0..3 name the same
        // backends in both rings.
        let ring3 = Ring::new(&all[..3], 64);
        let mut moved = 0;
        let mut kept = 0;
        for k in 0..4096u64 {
            let p = Ring::point_of(u128::from(k).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let before = ring4.primary(p);
            let after = ring3.primary(p);
            if before == 3 {
                moved += 1;
                // An orphaned key lands on the dead shard's ring
                // successor among the survivors.
                let expect = *ring4.successors(p).iter().find(|&&b| b != 3).unwrap();
                assert_eq!(after, expect, "orphans go to the ring successor");
            } else {
                kept += 1;
                assert_eq!(before, after, "survivor placement is untouched");
            }
        }
        assert!(moved > 0 && kept > 0);
    }

    #[test]
    fn adding_a_backend_moves_only_its_fair_share() {
        // The join path: a shard (re)joining a 3-backend ring must take
        // ~1/4 of the keys and disturb nobody else's placement — the
        // keys it takes are exactly the keys it owns afterwards.
        let all = names(4);
        let ring3 = Ring::new(&all[..3], 64);
        let ring4 = Ring::new(&all, 64);
        let total = 4096u64;
        let mut moved = 0usize;
        for k in 0..total {
            let p = Ring::point_of(u128::from(k).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let before = ring3.primary(p);
            let after = ring4.primary(p);
            if after == 3 {
                moved += 1;
            } else {
                assert_eq!(
                    before, after,
                    "a key not claimed by the joiner must not move"
                );
            }
        }
        // ~1/N of keys move to the joiner; with 64 vnodes the share is
        // within a factor of two of fair either way.
        let fair = total as usize / 4;
        assert!(
            moved > fair / 2 && moved < fair * 2,
            "joiner claimed {moved} of {total} keys, fair share {fair}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_ring_is_a_configuration_error() {
        let _ = Ring::new(&[], 8);
    }
}
