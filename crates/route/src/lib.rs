//! `mcc-route`: a shard router in front of a fleet of `mcc serve`
//! backends, speaking the same newline-delimited protocol on both
//! sides.
//!
//! Placement is a consistent-hash ring ([`Ring`]) over the compile
//! request's content-addressed cache key — the same 128-bit key
//! `mcc-cache` uses — so a given source always lands on the same shard
//! and the fleet's caches partition instead of duplicating. Everything
//! else is about what happens when a shard misbehaves:
//!
//! * **Health probes.** A probe thread pings every backend on a fixed
//!   interval; the pong carries the shard's `draining` flag, so a
//!   draining backend counts as unhealthy and traffic moves off it
//!   before it stops answering. Probe round-trip latency is recorded
//!   per backend and surfaced by `stats`.
//! * **Per-backend circuit breakers.** Probe and request outcomes feed
//!   one [`Breaker`] per shard (closed → open → half-open, logical
//!   ticks). An open backend is skipped at dispatch; a half-open one
//!   admits a single probe.
//! * **Deterministic failover.** A transport failure fails over to the
//!   next live ring successor — the same order every time, because the
//!   ring is a pure function of names and the key.
//! * **Request hedging.** If the primary has not answered within
//!   `hedge_after`, the same idempotent compile is fired at the ring
//!   successor; the first response wins and the loser's outcome is
//!   discarded (its send lands on a dropped channel). Both halves are
//!   accounted: `hedge_wins` and `hedge_losses`.
//! * **Hot-key replication.** A count-min sketch spots keys hot enough
//!   to swamp one shard; their traffic rotates between the primary and
//!   its first successor, warming both caches.
//! * **Live membership.** The ring is *mutable at runtime*: `join`
//!   re-adds (or re-points) a backend and `leave` removes one, with the
//!   consistent-hash guarantee that only ~1/N of keys move either way.
//!   Membership lives behind one `RwLock` shared with the probe thread
//!   — probes and routing read it, `join`/`leave` write it — so the
//!   fleet supervisor can heal a restarted shard back into the ring
//!   while requests are in flight.
//! * **Graceful drain.** Draining the router stops admission, waits out
//!   in-flight requests, stops the probes, then propagates the drain to
//!   every backend — strictly in that order, so no request is in flight
//!   anywhere when the fleet goes down.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mcc_harness::{Admit, Breaker, BreakerConfig};
use mcc_serve::metrics::{merge_with_label, sanitize_label};
use mcc_serve::proto::{
    self, frame_id, parse_request, CompileReq, Envelope, JoinReq, Request, Response,
};
use mcc_serve::tcp::LineHandler;

pub mod backend;
pub mod ring;
pub mod sketch;

pub use backend::{tag_backend, Backend, InProcBackend, TcpBackend};
pub use ring::Ring;
pub use sketch::Sketch;

/// How often the drain loop re-checks the in-flight count.
const DRAIN_TICK: Duration = Duration::from_millis(2);

/// Connect retries for a backend created by a wire `join` frame.
const JOIN_CONNECT_ATTEMPTS: u32 = 3;

/// Router tuning. Everything that affects *placement* (vnodes, seed) or
/// *policy* (hedging, breakers, hot threshold) lives here, so a config
/// fully determines routing behaviour.
#[derive(Debug, Clone, Copy)]
pub struct RouteConfig {
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Fire a hedge at the ring successor after this long without a
    /// primary response; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Per-backend breaker tuning.
    pub breaker: BreakerConfig,
    /// Sketch estimate at which a key counts as hot and starts rotating
    /// across two shards.
    pub hot_threshold: u64,
    /// Seed for the sketch rows and reconnect jitter.
    pub seed: u64,
    /// Idle-connection reaper timeout for the router's own listener.
    pub idle_timeout: Option<Duration>,
    /// Read deadline per backend round trip (applied to backends created
    /// by wire `join`s; construction-time backends set their own).
    pub call_timeout: Option<Duration>,
    /// Same-request-id retries per backend call (exactly-once thanks to
    /// the shard-side dedup window).
    pub call_retries: u32,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            vnodes: 64,
            hedge_after: Some(Duration::from_millis(50)),
            probe_interval: Duration::from_millis(250),
            breaker: BreakerConfig::default(),
            hot_threshold: 64,
            seed: 0,
            idle_timeout: Some(Duration::from_millis(30_000)),
            call_timeout: Some(Duration::from_millis(10_000)),
            call_retries: 1,
        }
    }
}

/// Router service counters (all relaxed: they feed `stats`, not control
/// flow).
#[derive(Debug, Default)]
pub struct RouteCounters {
    /// Compile requests routed (admitted past the drain gate).
    pub routed: AtomicU64,
    /// Requests re-fired at a successor after a transport failure.
    pub failovers: AtomicU64,
    /// Hedges fired after the latency threshold.
    pub hedges: AtomicU64,
    /// Hedged requests won by the hedge, not the primary.
    pub hedge_wins: AtomicU64,
    /// Hedged requests the primary still won (the hedge was wasted work).
    pub hedge_losses: AtomicU64,
    /// Requests answered `503` because no live backend remained.
    pub no_backend: AtomicU64,
    /// Requests routed via hot-key rotation.
    pub hot_routed: AtomicU64,
    /// Requests rejected `503` while the router drains.
    pub drain_rejects: AtomicU64,
    /// Malformed frames answered `400` at the router.
    pub bad_requests: AtomicU64,
    /// Health probes that failed (fed the breaker).
    pub probe_failures: AtomicU64,
    /// Idle connections reaped on the router's own listener.
    pub idle_reaped: AtomicU64,
    /// `join` frames applied (new backend or re-pointed transport).
    pub joins: AtomicU64,
    /// `leave` frames applied.
    pub leaves: AtomicU64,
    /// Envelope-shaped frames that failed validation at the router.
    pub corrupt_frames: AtomicU64,
    /// Inbound lines past `MAX_FRAME_BYTES` on the router's listener.
    pub oversized_frames: AtomicU64,
    /// Client connections that negotiated up to binary protocol v2.
    pub v2_connections: AtomicU64,
    /// Binary v2 frames decoded on the router's listener.
    pub v2_frames: AtomicU64,
}

/// One backend's live state: the swappable transport, its breaker, and
/// its counters. Requests hold `Arc<Slot>` snapshots, so a slot that
/// leaves the ring mid-request keeps absorbing that request's outcome
/// instead of misattributing it to whoever inherited the index.
struct Slot {
    name: String,
    /// The transport, swappable on rejoin (a restarted shard comes back
    /// on a new port; the name — and therefore placement — is stable).
    backend: Mutex<Arc<dyn Backend>>,
    breaker: Mutex<Breaker>,
    /// Responses this backend served.
    served: AtomicU64,
    /// Last successful probe round trip, microseconds.
    probe_rtt_us: AtomicU64,
    /// Successful probes.
    probe_ok: AtomicU64,
    /// Failed probes.
    probe_fail: AtomicU64,
}

impl Slot {
    fn new(backend: Arc<dyn Backend>, breaker: BreakerConfig) -> Slot {
        Slot {
            name: backend.name().to_string(),
            backend: Mutex::new(backend),
            breaker: Mutex::new(Breaker::new(breaker)),
            served: AtomicU64::new(0),
            probe_rtt_us: AtomicU64::new(0),
            probe_ok: AtomicU64::new(0),
            probe_fail: AtomicU64::new(0),
        }
    }

    fn transport(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend.lock().unwrap())
    }
}

/// The mutable membership view: the slots and the ring derived from
/// their names. One `RwLock` guards both so a reader never sees a ring
/// that disagrees with the slot list. This is the "probe lock": the
/// probe thread snapshots slots through it, `join`/`leave` rebuild the
/// ring under it.
struct Membership {
    slots: Vec<Arc<Slot>>,
    ring: Ring,
}

impl Membership {
    fn rebuild_ring(&mut self, vnodes: usize) {
        let names: Vec<String> = self.slots.iter().map(|s| s.name.clone()).collect();
        self.ring = Ring::new(&names, vnodes);
    }
}

/// The shard router. Construct with [`Router::new`], optionally start
/// the probe thread with [`Router::start_probes`], serve lines via the
/// shared [`LineHandler`] loop or call [`Router::handle_line`] directly.
pub struct Router {
    cfg: RouteConfig,
    membership: RwLock<Membership>,
    sketch: Mutex<Sketch>,
    /// Logical clock: one tick per breaker decision (admit / recorded
    /// failure / probe), shared by requests and probes — deterministic,
    /// no wall time.
    tick: AtomicU64,
    counters: RouteCounters,
    draining: AtomicBool,
    inflight: AtomicUsize,
    probe_stop: Arc<AtomicBool>,
    probe_handle: Mutex<Option<JoinHandle<()>>>,
    /// Monotonic request-id source for compiles the router envelopes on
    /// behalf of bare-JSON clients.
    next_rid: AtomicU64,
}

/// Decrements the in-flight gauge on every exit path.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Router {
    /// A router over `backends` (ring order is by backend *name*, so
    /// every router given the same names agrees on placement).
    ///
    /// # Panics
    ///
    /// If `backends` is empty.
    pub fn new(backends: Vec<Arc<dyn Backend>>, cfg: RouteConfig) -> Router {
        let names: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();
        let ring = Ring::new(&names, cfg.vnodes);
        let slots = backends
            .into_iter()
            .map(|b| Arc::new(Slot::new(b, cfg.breaker)))
            .collect();
        Router {
            sketch: Mutex::new(Sketch::new(1024, 4, cfg.seed)),
            cfg,
            membership: RwLock::new(Membership { slots, ring }),
            tick: AtomicU64::new(0),
            counters: RouteCounters::default(),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            probe_stop: Arc::new(AtomicBool::new(false)),
            probe_handle: Mutex::new(None),
            next_rid: AtomicU64::new(1),
        }
    }

    /// Spawns the health-probe thread: every `probe_interval`, ping each
    /// backend its breaker admits and feed the outcome back. A pong is
    /// healthy only if it is a `200` *and* the shard is not draining.
    /// The thread re-snapshots membership every round, so a joined
    /// backend is probed from the next round on.
    pub fn start_probes(router: &Arc<Router>) {
        let r = Arc::clone(router);
        let stop = Arc::clone(&router.probe_stop);
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let slots: Vec<Arc<Slot>> = r.membership.read().unwrap().slots.clone();
                for slot in slots {
                    let now = r.now();
                    let admit = slot.breaker.lock().unwrap().admit(now);
                    if admit == Admit::Reject {
                        continue;
                    }
                    let t0 = Instant::now();
                    let healthy = match slot.transport().call("{\"op\":\"ping\"}\n", "route-probe")
                    {
                        Ok(pong) => {
                            Response::field_num(&pong, "code") == Some(200)
                                && Response::field_str(&pong, "draining").as_deref()
                                    != Some("true")
                        }
                        Err(_) => false,
                    };
                    if healthy {
                        #[allow(clippy::cast_possible_truncation)]
                        slot.probe_rtt_us
                            .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                        slot.probe_ok.fetch_add(1, Ordering::Relaxed);
                        slot.breaker.lock().unwrap().on_success();
                    } else {
                        slot.probe_fail.fetch_add(1, Ordering::Relaxed);
                        r.counters.bump(&r.counters.probe_failures);
                        let at = r.now();
                        slot.breaker.lock().unwrap().on_failure(at);
                    }
                }
                std::thread::sleep(r.cfg.probe_interval);
            }
        });
        *router.probe_handle.lock().unwrap() = Some(handle);
    }

    /// Stops and joins the probe thread (idempotent).
    pub fn stop_probes(&self) {
        self.probe_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.probe_handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// Router counters.
    pub fn counters(&self) -> &RouteCounters {
        &self.counters
    }

    /// Backend names in slot order (ring indices point into this).
    pub fn backend_names(&self) -> Vec<String> {
        self.membership
            .read()
            .unwrap()
            .slots
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    /// The breaker state (`closed` | `open` | `half-open`) of the named
    /// backend, or `None` if it is not a member.
    pub fn breaker_state_of(&self, name: &str) -> Option<&'static str> {
        self.membership
            .read()
            .unwrap()
            .slots
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.breaker.lock().unwrap().state_name())
    }

    /// Responses served by the named backend, or `None` if it is not a
    /// member.
    pub fn served_of(&self, name: &str) -> Option<u64> {
        self.membership
            .read()
            .unwrap()
            .slots
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.served.load(Ordering::Relaxed))
    }

    /// Adds `backend` to the live ring, or — if a member with the same
    /// name exists — swaps its transport in place (the rejoin path: a
    /// restarted shard comes back on a new port under its old name, so
    /// it reclaims exactly its old keys and its disk cache stays warm).
    /// Either way the breaker resets to closed: the supervisor only
    /// joins a shard it has just seen answer a readiness ping.
    pub fn join_backend(&self, backend: Arc<dyn Backend>) -> Result<(), String> {
        let name = backend.name().to_string();
        if name.is_empty() {
            return Err("join: empty backend name".to_string());
        }
        let mut m = self.membership.write().unwrap();
        self.counters.bump(&self.counters.joins);
        if let Some(slot) = m.slots.iter().find(|s| s.name == name) {
            *slot.backend.lock().unwrap() = backend;
            *slot.breaker.lock().unwrap() = Breaker::new(self.cfg.breaker);
            return Ok(());
        }
        m.slots.push(Arc::new(Slot::new(backend, self.cfg.breaker)));
        m.rebuild_ring(self.cfg.vnodes);
        Ok(())
    }

    /// Removes the named backend from the live ring. Refuses to empty
    /// the ring — a router with no backends cannot route anything, so
    /// the last member stays (open-breakered if it is dead).
    pub fn leave_backend(&self, name: &str) -> Result<(), String> {
        let mut m = self.membership.write().unwrap();
        let Some(idx) = m.slots.iter().position(|s| s.name == name) else {
            return Err(format!("leave: `{name}` is not a member"));
        };
        if m.slots.len() == 1 {
            return Err("leave: refusing to remove the last backend".to_string());
        }
        m.slots.remove(idx);
        m.rebuild_ring(self.cfg.vnodes);
        self.counters.bump(&self.counters.leaves);
        Ok(())
    }

    /// The deterministic candidate order (primary first) for a compile,
    /// ignoring breakers and hot rotation — the analytic placement used
    /// by the bench's scaling table and by placement-audit tests.
    pub fn placement(&self, machine: &str, lang: &str, src: &str) -> Vec<usize> {
        self.membership
            .read()
            .unwrap()
            .ring
            .successors(point_for(machine, lang, src))
    }

    /// Whether the router is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop admitting, wait for in-flight requests,
    /// stop the probes, then propagate the drain to every backend.
    /// Returns the number of requests in flight when the drain began.
    pub fn drain(&self) -> usize {
        self.draining.store(true, Ordering::SeqCst);
        let at_start = self.inflight.load(Ordering::SeqCst);
        while self.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(DRAIN_TICK);
        }
        self.stop_probes();
        // Best effort: a dead backend cannot be drained, and that is
        // fine — it has nothing in flight either.
        let slots: Vec<Arc<Slot>> = self.membership.read().unwrap().slots.clone();
        for s in slots {
            let _ = s.transport().call("{\"op\":\"drain\"}\n", "route-drain");
        }
        at_start
    }

    /// Handles one frame: `ping`/`stats`/`drain` are answered locally,
    /// `join`/`leave` mutate the live ring, compiles are routed. Always
    /// returns a newline-terminated line.
    pub fn handle_line(&self, line: &str, client: &str) -> String {
        self.handle_ident(line, client, None)
    }

    /// [`Router::handle_line`] with the client's envelope identity, when
    /// it spoke the envelope — compiles forward it to the shard so the
    /// exactly-once key is end-to-end, not per-hop.
    fn handle_ident(&self, line: &str, client: &str, ident: Option<(&str, u64)>) -> String {
        match parse_request(line) {
            Err(reason) => {
                self.counters.bump(&self.counters.bad_requests);
                Response::error(&frame_id(line), 400, &reason).to_line()
            }
            Ok(Request::Ping) => {
                let (members, live) = {
                    let m = self.membership.read().unwrap();
                    let live = m
                        .slots
                        .iter()
                        .filter(|s| s.breaker.lock().unwrap().is_closed())
                        .count();
                    (m.slots.len(), live)
                };
                let mut r = Response::new(&frame_id(line), 200);
                r.push_str("pong", "mcc-route");
                r.push_num("backends", members as u64);
                r.push_num("live", live as u64);
                r.push_str(
                    "draining",
                    if self.is_draining() { "true" } else { "false" },
                );
                r.to_line()
            }
            Ok(Request::Stats) => self.stats_response(&frame_id(line)).to_line(),
            Ok(Request::Metrics) => self.metrics_response(&frame_id(line)).to_line(),
            Ok(Request::Drain) => {
                let inflight = self.drain();
                let mut r = Response::new(&frame_id(line), 200);
                r.push_str("draining", "true");
                r.push_num("inflight_at_drain", inflight as u64);
                r.to_line()
            }
            Ok(Request::Join(j)) => self.handle_join(&j),
            Ok(Request::Leave { name }) => match self.leave_backend(&name) {
                Ok(()) => {
                    let mut r = Response::new(&frame_id(line), 200);
                    r.push_str("left", &name);
                    r.push_num("backends", self.backend_names().len() as u64);
                    r.to_line()
                }
                Err(reason) => Response::error(&frame_id(line), 400, &reason).to_line(),
            },
            Ok(Request::Compile(req)) => self.route_compile(line, client, &req, ident),
        }
    }

    /// Applies a wire `join`: the new member is reached over TCP with
    /// the router's seeded reconnect backoff.
    fn handle_join(&self, j: &JoinReq) -> String {
        if self.is_draining() {
            return Response::error(&j.id, 503, "router draining").to_line();
        }
        if j.addr.is_empty() {
            return Response::error(&j.id, 400, "join: empty `addr`").to_line();
        }
        let backend: Arc<dyn Backend> = Arc::new(
            TcpBackend::new(&j.name, &j.addr, self.cfg.seed, JOIN_CONNECT_ATTEMPTS)
                .with_wire(self.cfg.call_timeout, self.cfg.call_retries),
        );
        match self.join_backend(backend) {
            Ok(()) => {
                let mut r = Response::new(&j.id, 200);
                r.push_str("joined", &j.name);
                r.push_num("backends", self.backend_names().len() as u64);
                r.to_line()
            }
            Err(reason) => Response::error(&j.id, 400, &reason).to_line(),
        }
    }

    /// Advances the logical clock and returns the new tick.
    fn now(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Routes one compile: place on the ring, rotate if hot, skip open
    /// breakers, hedge if slow, fail over on transport failure.
    fn route_compile(
        &self,
        line: &str,
        client: &str,
        req: &CompileReq,
        ident: Option<(&str, u64)>,
    ) -> String {
        if self.is_draining() {
            self.counters.bump(&self.counters.drain_rejects);
            return Response::error(&req.id, 503, "router draining").to_line();
        }
        self.inflight.fetch_add(1, Ordering::SeqCst);
        let _guard = InflightGuard(&self.inflight);
        self.counters.bump(&self.counters.routed);

        let point = point_for(&req.machine, &req.lang, &req.src);
        // Snapshot the candidate order under the membership lock, then
        // drop it: in-flight requests keep their `Arc<Slot>`s even if a
        // concurrent `leave` rebuilds the ring underneath them.
        let mut order: Vec<Arc<Slot>> = {
            let m = self.membership.read().unwrap();
            m.ring
                .successors(point)
                .into_iter()
                .map(|i| Arc::clone(&m.slots[i]))
                .collect()
        };
        // Hot keys rotate between the primary and its first successor:
        // both shards end up warm, and neither takes the whole flood.
        let count = self.sketch.lock().unwrap().observe(point);
        if count >= self.cfg.hot_threshold && order.len() >= 2 {
            self.counters.bump(&self.counters.hot_routed);
            if count % 2 == 1 {
                order.swap(0, 1);
            }
        }

        // Every forward is enveloped, with ONE identity per client
        // request: the client's own (end-to-end exactly-once when it
        // spoke the envelope) or a router-assigned `(r:<client>, rid)`.
        // Retries, failovers, and hedges all reuse this same frame, so a
        // shard that already executed it replays instead of re-running.
        let fwd = match ident {
            Some((cid, rid)) => proto::wrap_envelope(cid, rid, line.trim_end()),
            None => {
                let rid = self.next_rid.fetch_add(1, Ordering::Relaxed);
                let cid = format!("r:{}", client.replace(' ', "_"));
                proto::wrap_envelope(&cid, rid, line.trim_end())
            }
        };

        // fire(): walk the candidate order, ask each breaker at the
        // moment of dispatch (an admit that is never fired would strand
        // a half-open breaker), spawn the first admitted call. Sends
        // carry the order index, so the winner's slot is unambiguous.
        let (tx, rx) = mpsc::channel::<(usize, Result<String, String>)>();
        let mut next = 0usize;
        let fire = |from: &mut usize| -> Option<usize> {
            while *from < order.len() {
                let oi = *from;
                *from += 1;
                let now = self.now();
                if order[oi].breaker.lock().unwrap().admit(now) == Admit::Reject {
                    continue;
                }
                let backend = order[oi].transport();
                let tx = tx.clone();
                let line = fwd.clone();
                let client = client.to_string();
                std::thread::spawn(move || {
                    // A loser's send lands on a dropped receiver: that
                    // IS the cancelled accounting.
                    let _ = tx.send((oi, backend.call(&line, &client)));
                });
                return Some(oi);
            }
            None
        };

        if fire(&mut next).is_none() {
            self.counters.bump(&self.counters.no_backend);
            return Response::error(&req.id, 503, "no live backend").to_line();
        }
        let mut pending = 1usize;
        let mut hedge_at: Option<usize> = None;

        loop {
            // Hedge window: only before any hedge has fired, and only
            // while the primary is the sole pending call.
            let msg = match self.cfg.hedge_after {
                Some(after) if hedge_at.is_none() => match rx.recv_timeout(after) {
                    Ok(m) => m,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if let Some(oi) = fire(&mut next) {
                            self.counters.bump(&self.counters.hedges);
                            hedge_at = Some(oi);
                            pending += 1;
                        } else {
                            // Nothing to hedge to: wait out the primary.
                            hedge_at = Some(usize::MAX);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!(),
                },
                // `tx` lives in this scope, so recv() can only return
                // once a fired call reports — and pending > 0 here.
                _ => rx.recv().expect("a fired call always reports"),
            };
            match msg {
                (oi, Ok(resp)) => {
                    let slot = &order[oi];
                    slot.breaker.lock().unwrap().on_success();
                    slot.served.fetch_add(1, Ordering::Relaxed);
                    match hedge_at {
                        Some(h) if h == oi => self.counters.bump(&self.counters.hedge_wins),
                        Some(h) if h != usize::MAX => {
                            self.counters.bump(&self.counters.hedge_losses);
                        }
                        _ => {}
                    }
                    return tag_backend(&resp, &slot.name);
                }
                (oi, Err(_)) => {
                    let at = self.now();
                    order[oi].breaker.lock().unwrap().on_failure(at);
                    pending -= 1;
                    if pending == 0 {
                        if fire(&mut next).is_some() {
                            self.counters.bump(&self.counters.failovers);
                            pending = 1;
                        } else {
                            self.counters.bump(&self.counters.no_backend);
                            return Response::error(&req.id, 503, "all backends failed")
                                .to_line();
                        }
                    }
                }
            }
        }
    }

    /// Renders the router `stats` response: one JSON blob aggregating
    /// the routing counters with, per backend, the served count, the
    /// breaker state, and the probe health (last round-trip micros,
    /// ok/fail totals).
    fn stats_response(&self, id: &str) -> Response {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut r = Response::new(id, 200);
        r.push_str("role", "route");
        r.push_num("routed", load(&c.routed));
        r.push_num("failovers", load(&c.failovers));
        r.push_num("hedges", load(&c.hedges));
        r.push_num("hedge_wins", load(&c.hedge_wins));
        r.push_num("hedge_losses", load(&c.hedge_losses));
        r.push_num("no_backend", load(&c.no_backend));
        r.push_num("hot_routed", load(&c.hot_routed));
        r.push_num("drain_rejects", load(&c.drain_rejects));
        r.push_num("bad_requests", load(&c.bad_requests));
        r.push_num("probe_failures", load(&c.probe_failures));
        r.push_num("idle_reaped", load(&c.idle_reaped));
        r.push_num("joins", load(&c.joins));
        r.push_num("leaves", load(&c.leaves));
        r.push_num("corrupt_frames", load(&c.corrupt_frames));
        r.push_num("oversized_frames", load(&c.oversized_frames));
        r.push_num("v2_connections", load(&c.v2_connections));
        r.push_num("v2_frames", load(&c.v2_frames));
        let m = self.membership.read().unwrap();
        r.push_num("backends", m.slots.len() as u64);
        r.push_str(
            "members",
            &m.slots
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(","),
        );
        for s in &m.slots {
            r.push_num(&format!("served_{}", s.name), s.served.load(Ordering::Relaxed));
            r.push_str(
                &format!("breaker_{}", s.name),
                s.breaker.lock().unwrap().state_name(),
            );
            r.push_num(
                &format!("probe_rtt_us_{}", s.name),
                s.probe_rtt_us.load(Ordering::Relaxed),
            );
            r.push_num(&format!("probe_ok_{}", s.name), s.probe_ok.load(Ordering::Relaxed));
            r.push_num(
                &format!("probe_fail_{}", s.name),
                s.probe_fail.load(Ordering::Relaxed),
            );
        }
        let slots: Vec<Arc<Slot>> = m.slots.clone();
        drop(m);
        r.push_str(
            "draining",
            if self.is_draining() { "true" } else { "false" },
        );
        // Per-tenant rollup: ask every live backend for its stats and
        // sum the QoS served counters. Pre-QoS shards answer without
        // the fields and simply drop out of the sum.
        let mut tenants: BTreeMap<String, u64> = BTreeMap::new();
        for s in &slots {
            if !s.breaker.lock().unwrap().is_closed() {
                continue;
            }
            if let Ok(reply) = s.transport().call("{\"op\":\"stats\"}\n", "route-stats") {
                for (t, n) in tenant_served_from_stats(&reply) {
                    *tenants.entry(t).or_insert(0) += n;
                }
            }
        }
        r.push_str(
            "tenants",
            &tenants
                .keys()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(","),
        );
        for (t, n) in &tenants {
            r.push_num(&format!("tenant_served_{t}"), *n);
        }
        r
    }

    /// Answers the wire `metrics` op: the merged exposition as a `text`
    /// field, mirroring the shard-side response shape.
    fn metrics_response(&self, id: &str) -> Response {
        let mut r = Response::new(id, 200);
        r.push_str("format", "prometheus-text");
        r.push_str("text", &self.metrics_text());
        r
    }

    /// Renders the router's own Prometheus exposition, then fans the
    /// `metrics` op out to every live backend and folds each shard's
    /// exposition in under a `shard="<name>"` label.
    pub fn metrics_text(&self) -> String {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        for (name, help, val) in [
            ("mcc_route_routed_total", "Compile requests routed.", load(&c.routed)),
            (
                "mcc_route_failovers_total",
                "Requests re-fired at a ring successor.",
                load(&c.failovers),
            ),
            ("mcc_route_hedges_total", "Hedges fired.", load(&c.hedges)),
            (
                "mcc_route_no_backend_total",
                "Requests with no live backend.",
                load(&c.no_backend),
            ),
            (
                "mcc_route_drain_rejects_total",
                "Requests rejected while draining.",
                load(&c.drain_rejects),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {val}\n"
            ));
        }
        let slots: Vec<Arc<Slot>> = self.membership.read().unwrap().slots.clone();
        out.push_str(
            "# HELP mcc_route_backend_up Breaker state per backend (1 = closed).\n# TYPE mcc_route_backend_up gauge\n",
        );
        for s in &slots {
            let up = s.breaker.lock().unwrap().is_closed();
            out.push_str(&format!(
                "mcc_route_backend_up{{backend=\"{}\"}} {}\n",
                sanitize_label(&s.name),
                u8::from(up),
            ));
        }
        out.push_str(
            "# HELP mcc_route_backend_served_total Requests served per backend.\n# TYPE mcc_route_backend_served_total counter\n",
        );
        for s in &slots {
            out.push_str(&format!(
                "mcc_route_backend_served_total{{backend=\"{}\"}} {}\n",
                sanitize_label(&s.name),
                s.served.load(Ordering::Relaxed),
            ));
        }
        for s in &slots {
            if !s.breaker.lock().unwrap().is_closed() {
                continue;
            }
            if let Ok(reply) = s.transport().call("{\"op\":\"metrics\"}\n", "route-metrics") {
                if let Some(text) = Response::field_str(&reply, "text") {
                    merge_with_label(&mut out, &text, "shard", &s.name);
                }
            }
        }
        out
    }
}

/// Pulls the per-tenant served counters out of one backend's `stats`
/// line. Peers predating the QoS fields lack them entirely: they
/// contribute nothing, and that absence is not an error — the same
/// back-compat rule as the four-field cache stats parse.
pub fn tenant_served_from_stats(line: &str) -> Vec<(String, u64)> {
    let Some(csv) = Response::field_str(line, "tenants") else {
        return Vec::new();
    };
    csv.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            (
                t.to_string(),
                Response::field_num(line, &format!("tenant_served_{t}")).unwrap_or(0),
            )
        })
        .collect()
}

impl RouteCounters {
    /// Bumps one counter.
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

impl LineHandler for Router {
    fn handle_wire(&self, line: &str, client: &str) -> String {
        match proto::unwrap_envelope(line) {
            Envelope::Bare => self.handle_line(line, client),
            Envelope::Corrupt(reason) => {
                self.counters.bump(&self.counters.corrupt_frames);
                // Bare 400: the envelope's identity fields can't be
                // trusted enough to echo them back.
                Response::error("", 400, &reason).to_line()
            }
            Envelope::Enveloped { cid, rid, body } => {
                let resp = self.handle_ident(&format!("{body}\n"), client, Some((&cid, rid)));
                proto::wrap_envelope(&cid, rid, &resp)
            }
        }
    }

    fn on_idle_reap(&self) {
        self.counters.bump(&self.counters.idle_reaped);
    }

    fn on_oversized(&self) {
        self.counters.bump(&self.counters.oversized_frames);
    }

    fn on_v2_connection(&self) {
        self.counters.bump(&self.counters.v2_connections);
    }

    fn on_v2_frame(&self) {
        self.counters.bump(&self.counters.v2_frames);
    }

    fn on_corrupt_frame(&self) {
        self.counters.bump(&self.counters.corrupt_frames);
    }

    fn idle_timeout(&self) -> Option<Duration> {
        self.cfg.idle_timeout
    }
}

/// The ring point for a compile request: fold of the content-addressed
/// cache key when the names resolve (so placement tracks cache
/// identity), else a hash of the raw fields (bad names still route
/// consistently — to a shard that will answer `400`).
pub fn point_for(machine: &str, lang: &str, src: &str) -> u64 {
    match mcc_cache::key_for_wire(machine, lang, src) {
        Some(k) => Ring::point_of(k.0),
        None => Ring::point_of(u128::from(mcc_harness::splitmix64(
            src.len() as u64 ^ (machine.len() as u64) << 32 ^ (lang.len() as u64) << 48,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_serve::{proto, ServeConfig, Server};

    fn fleet(n: usize, cfg: RouteConfig) -> (Vec<Arc<InProcBackend>>, Arc<Router>) {
        let shards: Vec<Arc<InProcBackend>> = (0..n)
            .map(|i| {
                Arc::new(InProcBackend::new(
                    &format!("b{i}"),
                    Arc::new(Server::start(ServeConfig::default())),
                ))
            })
            .collect();
        let backends: Vec<Arc<dyn Backend>> = shards
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn Backend>)
            .collect();
        (shards, Arc::new(Router::new(backends, cfg)))
    }

    fn compile_line(nonce: u64) -> String {
        proto::compile_line(
            &format!("r{nonce}"),
            "hm1",
            "yalll",
            // The nonce comment changes the cache key without changing
            // the program: distinct sources, distinct ring points.
            &format!("; n{nonce}\nreg a = R0\nconst a, 7\nexit a\n"),
        )
    }

    fn no_hedge() -> RouteConfig {
        RouteConfig {
            hedge_after: None,
            ..RouteConfig::default()
        }
    }

    #[test]
    fn routes_compiles_consistently_and_tags_the_backend() {
        let (_shards, router) = fleet(3, no_hedge());
        let mut tags = Vec::new();
        for nonce in 0..24 {
            let line = compile_line(nonce);
            let r1 = router.handle_line(&line, "t");
            assert_eq!(Response::field_num(&r1, "code"), Some(200), "{r1}");
            let tag = Response::field_str(&r1, "backend").expect("response is tagged");
            // Same request again: same shard, every time.
            let r2 = router.handle_line(&line, "t");
            assert_eq!(Response::field_str(&r2, "backend").as_deref(), Some(&*tag));
            tags.push(tag);
        }
        tags.sort();
        tags.dedup();
        assert!(tags.len() > 1, "24 distinct keys spread over >1 shard: {tags:?}");
    }

    #[test]
    fn transport_failure_fails_over_to_the_ring_successor() {
        let (shards, router) = fleet(2, no_hedge());
        // A key whose primary is shard 0.
        let nonce = (0..)
            .find(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                router.placement("hm1", "yalll", &src)[0] == 0
            })
            .unwrap();
        shards[0].kill();
        let resp = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert_eq!(
            Response::field_str(&resp, "backend").as_deref(),
            Some("b1"),
            "served by the ring successor"
        );
        let c = router.counters();
        assert!(c.failovers.load(Ordering::Relaxed) >= 1);
        assert_eq!(router.served_of("b1"), Some(1));
        assert_eq!(router.served_of("b0"), Some(0));
    }

    #[test]
    fn repeated_failures_open_the_breaker_and_skip_the_dead_shard() {
        let cfg = RouteConfig {
            breaker: BreakerConfig {
                threshold: 2,
                cooldown: 1_000_000,
            },
            ..no_hedge()
        };
        let (shards, router) = fleet(2, cfg);
        shards[0].kill();
        // Enough primaries-on-b0 to trip its breaker...
        let mut nonces = (0..).filter(|&n: &u64| {
            let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
            router.placement("hm1", "yalll", &src)[0] == 0
        });
        for _ in 0..2 {
            let r = router.handle_line(&compile_line(nonces.next().unwrap()), "t");
            assert_eq!(Response::field_num(&r, "code"), Some(200));
        }
        assert_eq!(router.breaker_state_of("b0"), Some("open"));
        let failovers_before = router.counters().failovers.load(Ordering::Relaxed);
        // ...after which b0 is skipped at dispatch: no more failovers,
        // requests go straight to b1.
        let r = router.handle_line(&compile_line(nonces.next().unwrap()), "t");
        assert_eq!(Response::field_str(&r, "backend").as_deref(), Some("b1"));
        assert_eq!(
            router.counters().failovers.load(Ordering::Relaxed),
            failovers_before,
            "an open breaker is a skip, not a failover"
        );
    }

    #[test]
    fn all_backends_dead_is_a_structured_503() {
        let (shards, router) = fleet(2, no_hedge());
        for s in &shards {
            s.kill();
        }
        let r = router.handle_line(&compile_line(1), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(503), "{r}");
        assert!(r.contains("all backends failed"));
        // Once the breakers are open it becomes "no live backend".
        for _ in 0..8 {
            let _ = router.handle_line(&compile_line(2), "t");
        }
        let r = router.handle_line(&compile_line(3), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(503));
        assert!(router.counters().no_backend.load(Ordering::Relaxed) >= 1);
    }

    /// A backend that answers correctly but slowly — the hedging target.
    struct SlowBackend {
        inner: InProcBackend,
        delay: Duration,
    }

    impl Backend for SlowBackend {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn call(&self, line: &str, client: &str) -> Result<String, String> {
            std::thread::sleep(self.delay);
            self.inner.call(line, client)
        }
    }

    #[test]
    fn slow_primary_is_hedged_and_the_successor_wins() {
        let cfg = RouteConfig {
            hedge_after: Some(Duration::from_millis(15)),
            ..RouteConfig::default()
        };
        let slow = Arc::new(SlowBackend {
            inner: InProcBackend::new("b0", Arc::new(Server::start(ServeConfig::default()))),
            delay: Duration::from_millis(300),
        });
        let fast = Arc::new(InProcBackend::new(
            "b1",
            Arc::new(Server::start(ServeConfig::default())),
        ));
        let router = Router::new(
            vec![Arc::clone(&slow) as Arc<dyn Backend>, fast as Arc<dyn Backend>],
            cfg,
        );
        let nonce = (0..)
            .find(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                router.placement("hm1", "yalll", &src)[0] == 0
            })
            .unwrap();
        let resp = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert_eq!(
            Response::field_str(&resp, "backend").as_deref(),
            Some("b1"),
            "the hedge at the successor beat the slow primary"
        );
        let c = router.counters();
        assert_eq!(c.hedges.load(Ordering::Relaxed), 1);
        assert_eq!(c.hedge_wins.load(Ordering::Relaxed), 1);
        assert_eq!(c.hedge_losses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fast_primary_wins_and_the_hedge_is_a_loss() {
        let cfg = RouteConfig {
            hedge_after: Some(Duration::from_millis(15)),
            ..RouteConfig::default()
        };
        // Primary answers in 60ms (after the hedge fires), hedge target
        // in 300ms: the hedge fires and loses.
        let prim = Arc::new(SlowBackend {
            inner: InProcBackend::new("b0", Arc::new(Server::start(ServeConfig::default()))),
            delay: Duration::from_millis(60),
        });
        let succ = Arc::new(SlowBackend {
            inner: InProcBackend::new("b1", Arc::new(Server::start(ServeConfig::default()))),
            delay: Duration::from_millis(300),
        });
        let router = Router::new(
            vec![
                Arc::clone(&prim) as Arc<dyn Backend>,
                succ as Arc<dyn Backend>,
            ],
            cfg,
        );
        let nonce = (0..)
            .find(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                router.placement("hm1", "yalll", &src)[0] == 0
            })
            .unwrap();
        let resp = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(
            Response::field_str(&resp, "backend").as_deref(),
            Some("b0"),
            "the primary won its own race"
        );
        let c = router.counters();
        assert_eq!(c.hedges.load(Ordering::Relaxed), 1);
        assert_eq!(c.hedge_wins.load(Ordering::Relaxed), 0);
        assert_eq!(c.hedge_losses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn hot_keys_rotate_across_two_shards() {
        let cfg = RouteConfig {
            hot_threshold: 4,
            ..no_hedge()
        };
        let (_shards, router) = fleet(2, cfg);
        let line = compile_line(99);
        for _ in 0..20 {
            let r = router.handle_line(&line, "t");
            assert_eq!(Response::field_num(&r, "code"), Some(200));
        }
        let c = router.counters();
        assert!(c.hot_routed.load(Ordering::Relaxed) >= 1, "the key went hot");
        let s0 = router.served_of("b0").unwrap();
        let s1 = router.served_of("b1").unwrap();
        assert!(
            s0 >= 2 && s1 >= 2,
            "a hot key is served by both its primary and the successor, got {s0}/{s1}"
        );
    }

    #[test]
    fn probes_reopen_a_revived_shard() {
        let cfg = RouteConfig {
            breaker: BreakerConfig {
                threshold: 1,
                cooldown: 2,
            },
            probe_interval: Duration::from_millis(2),
            ..no_hedge()
        };
        let (shards, router) = fleet(1, cfg);
        shards[0].kill();
        Router::start_probes(&router);
        // Probes fail, the breaker opens, requests are rejected fast.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while router.breaker_state_of("b0") != Some("open")
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(router.breaker_state_of("b0"), Some("open"));
        let r = router.handle_line(&compile_line(1), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(503));
        // The shard comes back; a probe closes the breaker without any
        // request traffic.
        shards[0].revive();
        while router.breaker_state_of("b0") != Some("closed")
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(router.breaker_state_of("b0"), Some("closed"));
        let r = router.handle_line(&compile_line(2), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(200), "{r}");
        router.stop_probes();
    }

    #[test]
    fn drain_propagates_to_every_backend_in_order() {
        let (shards, router) = fleet(2, no_hedge());
        Router::start_probes(&router);
        let warm = router.handle_line(&compile_line(5), "t");
        assert_eq!(Response::field_num(&warm, "code"), Some(200));
        let resp = router.handle_line("{\"op\":\"drain\"}\n", "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(200));
        assert!(router.is_draining());
        // Every backend saw the drain: their pongs report draining.
        for s in &shards {
            let pong = s.server().handle_line("{\"op\":\"ping\"}", "t").to_line();
            assert_eq!(
                Response::field_str(&pong, "draining").as_deref(),
                Some("true"),
                "backend {} drained: {pong}",
                s.name()
            );
        }
        // New compiles at the router are refused with a structured 503.
        let r = router.handle_line(&compile_line(6), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(503));
        assert!(router.counters().drain_rejects.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn ping_stats_and_garbage_are_answered_locally() {
        let (_shards, router) = fleet(2, no_hedge());
        let pong = router.handle_line("{\"op\":\"ping\",\"id\":\"p1\"}\n", "t");
        assert_eq!(Response::field_num(&pong, "code"), Some(200));
        assert_eq!(Response::field_str(&pong, "pong").as_deref(), Some("mcc-route"));
        assert_eq!(Response::field_num(&pong, "backends"), Some(2));
        assert_eq!(Response::field_num(&pong, "live"), Some(2));
        let bad = router.handle_line("not json\n", "t");
        assert_eq!(Response::field_num(&bad, "code"), Some(400));
        let stats = router.handle_line("{\"op\":\"stats\"}\n", "t");
        assert_eq!(Response::field_num(&stats, "bad_requests"), Some(1));
        assert!(Response::field_num(&stats, "served_b0").is_some());
        assert!(stats.contains("breaker_b1"));
        assert_eq!(Response::field_str(&stats, "members").as_deref(), Some("b0,b1"));
        assert!(Response::field_num(&stats, "probe_rtt_us_b0").is_some());
        assert!(Response::field_num(&stats, "hedge_losses").is_some());
        assert!(Response::field_num(&stats, "joins").is_some());
    }

    #[test]
    fn leave_shrinks_the_ring_and_join_reclaims_the_same_keys() {
        let (_shards, router) = fleet(3, no_hedge());
        // Record b2's keys before it leaves.
        let owned: Vec<u64> = (0..96)
            .filter(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                let names = router.backend_names();
                names[router.placement("hm1", "yalll", &src)[0]] == "b2"
            })
            .collect();
        assert!(!owned.is_empty(), "b2 owns some of 96 keys");
        router.leave_backend("b2").unwrap();
        assert_eq!(router.backend_names(), vec!["b0", "b1"]);
        // Its keys are served by survivors...
        for &n in &owned {
            let r = router.handle_line(&compile_line(n), "t");
            assert_eq!(Response::field_num(&r, "code"), Some(200));
            let tag = Response::field_str(&r, "backend").unwrap();
            assert_ne!(tag, "b2");
        }
        // ...and a rejoin under the same name reclaims exactly them.
        let back = Arc::new(InProcBackend::new(
            "b2",
            Arc::new(Server::start(ServeConfig::default())),
        ));
        router.join_backend(back).unwrap();
        assert_eq!(router.backend_names(), vec!["b0", "b1", "b2"]);
        for &n in &owned {
            let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
            let names = router.backend_names();
            assert_eq!(
                names[router.placement("hm1", "yalll", &src)[0]],
                "b2",
                "rejoined shard reclaims its old keys"
            );
        }
        let c = router.counters();
        assert_eq!(c.leaves.load(Ordering::Relaxed), 1);
        assert_eq!(c.joins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_with_an_existing_name_swaps_the_transport_in_place() {
        let (shards, router) = fleet(2, no_hedge());
        shards[0].kill();
        // Find a b0-owned key; with b0 dead it fails over.
        let nonce = (0..)
            .find(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                router.placement("hm1", "yalll", &src)[0] == 0
            })
            .unwrap();
        let r = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(Response::field_str(&r, "backend").as_deref(), Some("b1"));
        // "Restart" b0 as a fresh server joined under the old name.
        let reborn = Arc::new(InProcBackend::new(
            "b0",
            Arc::new(Server::start(ServeConfig::default())),
        ));
        router.join_backend(reborn).unwrap();
        assert_eq!(router.backend_names(), vec!["b0", "b1"], "no duplicate slot");
        let r = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(
            Response::field_str(&r, "backend").as_deref(),
            Some("b0"),
            "the rejoined transport serves its old keys again"
        );
    }

    #[test]
    fn the_last_backend_cannot_leave() {
        let (_shards, router) = fleet(1, no_hedge());
        let err = router.leave_backend("b0").unwrap_err();
        assert!(err.contains("last backend"), "{err}");
        let resp = router.handle_line("{\"op\":\"leave\",\"name\":\"b0\"}\n", "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(400));
        let resp = router.handle_line("{\"op\":\"leave\",\"name\":\"nope\"}\n", "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(400));
        assert!(resp.contains("not a member"));
    }

    #[test]
    fn wire_join_and_leave_drive_the_live_ring() {
        use mcc_serve::tcp::serve_lines;
        // A real TCP shard to join by address.
        let server = Arc::new(Server::start(ServeConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
            std::thread::spawn(move || serve_lines(server, listener, stop))
        };
        let (_shards, router) = fleet(2, no_hedge());
        let resp = router.handle_line(&proto::join_line("j1", "b2", &addr), "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(200), "{resp}");
        assert_eq!(Response::field_str(&resp, "joined").as_deref(), Some("b2"));
        assert_eq!(Response::field_num(&resp, "backends"), Some(3));
        // A key owned by the TCP member is served by it, over the wire.
        let nonce = (0..)
            .find(|&n| {
                let src = format!("; n{n}\nreg a = R0\nconst a, 7\nexit a\n");
                let names = router.backend_names();
                names[router.placement("hm1", "yalll", &src)[0]] == "b2"
            })
            .unwrap();
        let r = router.handle_line(&compile_line(nonce), "t");
        assert_eq!(Response::field_num(&r, "code"), Some(200), "{r}");
        assert_eq!(Response::field_str(&r, "backend").as_deref(), Some("b2"));
        // And a wire leave takes it back out.
        let resp = router.handle_line(&proto::leave_line("l1", "b2"), "t");
        assert_eq!(Response::field_num(&resp, "code"), Some(200));
        assert_eq!(Response::field_num(&resp, "backends"), Some(2));
        let r = router.handle_line(&compile_line(nonce), "t");
        assert_ne!(Response::field_str(&r, "backend").as_deref(), Some("b2"));
        stop.store(true, Ordering::SeqCst);
        accept.join().ok();
    }
}
