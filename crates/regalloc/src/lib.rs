//! # `mcc-regalloc` — register allocation for microprograms
//!
//! §2.1.3 of Sint's survey names the two complications of microlevel
//! register allocation: the register budget is small (16 on the VAX-11,
//! 256 on the CD 480), and the register set is *non-homogeneous* — where a
//! value lives determines which micro-operations can touch it. This crate
//! implements:
//!
//! * **class-constrained graph coloring** (the default): interference from
//!   liveness, per-node candidate sets from the union of admissible
//!   template classes, Chaitin-style simplify/spill,
//! * **linear scan** for comparison,
//! * **spilling** to the machine's local store (scratch file), overflowing
//!   into a reserved area of main memory — "temporarily storing variables
//!   in a reserved area of main memory will sometimes be unavoidable",
//! * a **spread** placement policy that avoids immediate register reuse.
//!   Reuse creates anti/output dependences between independent statements,
//!   which blocks compaction (the allocation/composition interdependence
//!   of §2.1.4); experiment E6's ablation measures the effect.
//!
//! The allocator rewrites the [`MirFunction`] in place: afterwards no
//! virtual registers remain and every operand satisfies some template's
//! class constraints.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mcc_machine::{MachineDesc, RegRef, Semantic};
use mcc_mir::liveness::Liveness;
use mcc_mir::operand::{Operand, VReg};
use mcc_mir::MirFunction;

mod constraints;
mod spill;

pub use constraints::allowed_registers;

/// Allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Chaitin-style graph coloring over class-constrained nodes.
    Coloring,
    /// Linear scan over live intervals.
    LinearScan,
}

/// Options controlling allocation.
#[derive(Debug, Clone)]
pub struct AllocOptions {
    /// The algorithm.
    pub strategy: Strategy,
    /// Restrict every register file to its first `budget` registers
    /// (experiment E6 sweeps this from 4 to 256).
    pub budget: Option<u16>,
    /// Prefer least-recently-used registers over dense reuse, reducing the
    /// false dependences that block compaction.
    pub spread: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            strategy: Strategy::Coloring,
            budget: None,
            spread: true,
        }
    }
}

/// Where a variable ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// A machine register.
    Reg(RegRef),
    /// A local-store (scratch file) slot.
    Scratch(RegRef),
    /// A word of main memory at this address (spill overflow area).
    Mem(u64),
}

/// Result of allocation.
#[derive(Debug, Clone)]
pub struct AllocReport {
    /// Final location of every *original* virtual register.
    pub locations: HashMap<VReg, Location>,
    /// How many virtual registers were spilled.
    pub spilled: usize,
    /// How many fill/spill moves were inserted.
    pub spill_moves: usize,
    /// Allocation rounds used (1 = no spilling needed).
    pub rounds: usize,
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// A virtual register admits no machine register at all (class
    /// constraints are contradictory).
    NoCandidates(VReg),
    /// Spilling did not converge.
    SpillLoop,
    /// The machine has no spill capacity left (no scratch file, no memory
    /// spill area) and the program does not fit the registers.
    OutOfRegisters(VReg),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NoCandidates(v) => write!(f, "{v} admits no register"),
            AllocError::SpillLoop => write!(f, "spilling failed to converge"),
            AllocError::OutOfRegisters(v) => write!(f, "no room to spill {v}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Base address of the in-memory spill overflow area.
pub const MEM_SPILL_BASE: u64 = 0xFF00;

fn all_vregs(f: &MirFunction) -> BTreeSet<VReg> {
    let mut vs = BTreeSet::new();
    for b in &f.blocks {
        for op in &b.ops {
            if let Some(Operand::Vreg(v)) = op.dst {
                vs.insert(v);
            }
            for s in &op.srcs {
                if let Operand::Vreg(v) = s {
                    vs.insert(*v);
                }
            }
        }
        if let Some(t) = &b.term {
            for u in t.uses() {
                if let Operand::Vreg(v) = u {
                    vs.insert(v);
                }
            }
        }
    }
    for o in &f.live_out {
        if let Operand::Vreg(v) = o {
            vs.insert(*v);
        }
    }
    vs
}

/// Interference data: vreg↔vreg edges plus vreg↔physical conflicts.
#[derive(Debug, Default)]
struct Interference {
    edges: BTreeMap<VReg, BTreeSet<VReg>>,
    phys: BTreeMap<VReg, BTreeSet<RegRef>>,
    /// Static use counts (spill priority: spill the least used).
    uses: BTreeMap<VReg, usize>,
}

impl Interference {
    fn add_edge(&mut self, a: VReg, b: VReg) {
        if a != b {
            self.edges.entry(a).or_default().insert(b);
            self.edges.entry(b).or_default().insert(a);
        }
    }

    fn add_phys(&mut self, v: VReg, r: RegRef) {
        self.phys.entry(v).or_default().insert(r);
    }

    fn degree(&self, v: VReg) -> usize {
        self.edges.get(&v).map_or(0, |s| s.len())
            + self.phys.get(&v).map_or(0, |s| s.len())
    }
}

fn build_interference(f: &MirFunction, live: &Liveness) -> Interference {
    let mut g = Interference::default();
    for v in all_vregs(f) {
        g.edges.entry(v).or_default();
        g.uses.entry(v).or_default();
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let (_, after) = live.block_points(f, bi as u32);
        for (oi, op) in b.ops.iter().enumerate() {
            for s in &op.srcs {
                if let Operand::Vreg(v) = s {
                    *g.uses.entry(*v).or_default() += 1;
                }
            }
            if let Some(d) = op.def() {
                if let Operand::Vreg(v) = d {
                    *g.uses.entry(v).or_default() += 1;
                }
                // The move-coalescing exception: `mov d, s` does not make
                // d interfere with s.
                let move_src = if op.sem == Semantic::Move {
                    op.srcs.first().copied()
                } else {
                    None
                };
                for l in &after[oi] {
                    if Some(*l) == move_src {
                        continue;
                    }
                    match (d, *l) {
                        (Operand::Vreg(a), Operand::Vreg(b)) => g.add_edge(a, b),
                        (Operand::Vreg(a), Operand::Reg(r)) => g.add_phys(a, r),
                        (Operand::Reg(r), Operand::Vreg(b)) => g.add_phys(b, r),
                        (Operand::Reg(_), Operand::Reg(_)) => {}
                    }
                }
            }
        }
    }
    g
}

/// Runs register allocation on `f` for machine `m`, rewriting it in place.
///
/// # Errors
///
/// See [`AllocError`]. On success the function contains no virtual
/// registers.
pub fn allocate(
    m: &MachineDesc,
    f: &mut MirFunction,
    opts: &AllocOptions,
) -> Result<AllocReport, AllocError> {
    let mut report = AllocReport {
        locations: HashMap::new(),
        spilled: 0,
        spill_moves: 0,
        rounds: 0,
    };
    let originals: BTreeSet<VReg> = all_vregs(f);
    let mut spiller = spill::Spiller::new(m);
    // Temporaries created by spill rewriting: spilling them again cannot
    // reduce register pressure (their live ranges are already minimal),
    // and choosing them makes the loop churn forever.
    let mut no_spill: BTreeSet<VReg> = BTreeSet::new();

    for _round in 0..64 {
        report.rounds += 1;
        let vregs = all_vregs(f);
        if vregs.is_empty() {
            finalize(f, &report.locations);
            return Ok(report);
        }
        let cand: BTreeMap<VReg, Vec<RegRef>> = vregs
            .iter()
            .map(|&v| {
                let c = constraints::allowed_registers(m, f, v, opts.budget);
                (v, c)
            })
            .collect();
        if let Some((&v, _)) = cand.iter().find(|(_, c)| c.is_empty()) {
            return Err(AllocError::NoCandidates(v));
        }

        let live = Liveness::compute(f);
        let graph = build_interference(f, &live);

        let assign = match opts.strategy {
            Strategy::Coloring => color(&graph, &cand, opts.spread),
            Strategy::LinearScan => linear_scan(f, &live, &graph, &cand, opts.spread),
        };

        match assign {
            Ok(map) => {
                for (v, r) in &map {
                    if originals.contains(v) {
                        report.locations.insert(*v, Location::Reg(*r));
                    }
                }
                rewrite(f, &map);
                finalize(f, &report.locations);
                return Ok(report);
            }
            Err(failed) => {
                // Pick the victim: the failed node itself when it is a
                // real variable; otherwise (a spill temporary) the
                // highest-degree spillable variable still in play.
                let victim = if no_spill.contains(&failed) {
                    cand.keys()
                        .copied()
                        .filter(|v| !no_spill.contains(v))
                        .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v.0)))
                        .ok_or(AllocError::OutOfRegisters(failed))?
                } else {
                    failed
                };
                let loc = spiller
                    .next_slot()
                    .ok_or(AllocError::OutOfRegisters(victim))?;
                if originals.contains(&victim) {
                    report.locations.insert(victim, loc_of(&loc));
                }
                report.spilled += 1;
                if std::env::var_os("MCC_ALLOC_DEBUG").is_some() {
                    eprintln!(
                        "round {}: failed {failed}, spilling {victim} to {loc:?}",
                        report.rounds
                    );
                }
                let before = f.vreg_count;
                report.spill_moves += spiller.rewrite(f, victim, &loc);
                for v in before..f.vreg_count {
                    no_spill.insert(VReg(v));
                }
            }
        }
    }
    Err(AllocError::SpillLoop)
}

fn loc_of(s: &spill::Slot) -> Location {
    match s {
        spill::Slot::Scratch(r) => Location::Scratch(*r),
        spill::Slot::Mem(a) => Location::Mem(*a),
    }
}

/// Chaitin-style coloring. Returns `Err(vreg)` naming a spill candidate
/// when coloring fails.
fn color(
    g: &Interference,
    cand: &BTreeMap<VReg, Vec<RegRef>>,
    spread: bool,
) -> Result<BTreeMap<VReg, RegRef>, VReg> {
    let mut stack = Vec::new();
    let mut removed: BTreeSet<VReg> = BTreeSet::new();
    let nodes: Vec<VReg> = cand.keys().copied().collect();

    // Simplify: repeatedly remove a node whose candidate count exceeds its
    // remaining degree (guaranteed colorable).
    loop {
        let mut progressed = false;
        for &v in &nodes {
            if removed.contains(&v) {
                continue;
            }
            let deg = g
                .edges
                .get(&v)
                .map_or(0, |s| s.iter().filter(|n| !removed.contains(n)).count())
                + g.phys.get(&v).map_or(0, |s| s.len());
            if cand[&v].len() > deg {
                stack.push(v);
                removed.insert(v);
                progressed = true;
            }
        }
        if nodes.iter().all(|v| removed.contains(v)) {
            break;
        }
        if !progressed {
            // Optimistically push the cheapest node; if it fails to color
            // below, it becomes the spill.
            let v = nodes
                .iter()
                .filter(|v| !removed.contains(v))
                .min_by_key(|&&v| {
                    let uses = g.uses.get(&v).copied().unwrap_or(0);
                    let deg = g.degree(v).max(1);
                    // Low use / high degree → spill first. Scale to avoid
                    // float ordering.
                    (uses * 1000 / deg, v.0)
                })
                .copied()
                .expect("nonempty");
            stack.push(v);
            removed.insert(v);
        }
    }

    // Select: pop and color.
    let mut colors: BTreeMap<VReg, RegRef> = BTreeMap::new();
    let mut last_used: HashMap<RegRef, usize> = HashMap::new();
    let mut tick = 0usize;
    while let Some(v) = stack.pop() {
        let mut taken: BTreeSet<RegRef> = g.phys.get(&v).cloned().unwrap_or_default();
        if let Some(ns) = g.edges.get(&v) {
            for n in ns {
                if let Some(&c) = colors.get(n) {
                    taken.insert(c);
                }
            }
        }
        let free: Vec<RegRef> = cand[&v]
            .iter()
            .copied()
            .filter(|r| !taken.contains(r))
            .collect();
        let pick = if spread {
            // Least-recently-assigned candidate: avoids serial reuse.
            free.iter()
                .copied()
                .min_by_key(|r| (last_used.get(r).copied().unwrap_or(0), r.file.0, r.index))
        } else {
            free.first().copied()
        };
        match pick {
            Some(r) => {
                tick += 1;
                last_used.insert(r, tick);
                colors.insert(v, r);
            }
            None => return Err(v),
        }
    }
    Ok(colors)
}

/// Linear-scan allocation over linearised live intervals.
fn linear_scan(
    f: &MirFunction,
    live: &Liveness,
    g: &Interference,
    cand: &BTreeMap<VReg, Vec<RegRef>>,
    spread: bool,
) -> Result<BTreeMap<VReg, RegRef>, VReg> {
    // Linear positions: block order, op order; block boundaries count.
    let mut pos = 0usize;
    let mut intervals: BTreeMap<VReg, (usize, usize)> = BTreeMap::new();
    let touch = |v: VReg, p: usize, iv: &mut BTreeMap<VReg, (usize, usize)>| {
        let e = iv.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        let start = pos;
        for op in &b.ops {
            pos += 1;
            if let Some(Operand::Vreg(v)) = op.dst {
                touch(v, pos, &mut intervals);
            }
            for s in &op.srcs {
                if let Operand::Vreg(v) = s {
                    touch(*v, pos, &mut intervals);
                }
            }
        }
        pos += 1; // terminator position
        if let Some(t) = &b.term {
            for u in t.uses() {
                if let Operand::Vreg(v) = u {
                    touch(v, pos, &mut intervals);
                }
            }
        }
        // Live-through extension.
        for o in &live.sets().live_in[bi] {
            if let Operand::Vreg(v) = o {
                touch(*v, start, &mut intervals);
            }
        }
        for o in &live.sets().live_out[bi] {
            if let Operand::Vreg(v) = o {
                touch(*v, pos, &mut intervals);
            }
        }
    }

    let mut order: Vec<VReg> = intervals.keys().copied().collect();
    order.sort_by_key(|v| intervals[v].0);

    let mut active: Vec<(usize, VReg, RegRef)> = Vec::new(); // (end, vreg, reg)
    let mut colors: BTreeMap<VReg, RegRef> = BTreeMap::new();
    let mut last_used: HashMap<RegRef, usize> = HashMap::new();
    let mut tick = 0usize;
    for v in order {
        let (start, end) = intervals[&v];
        active.retain(|&(e, _, _)| e >= start);
        let mut taken: BTreeSet<RegRef> = active.iter().map(|&(_, _, r)| r).collect();
        if let Some(ps) = g.phys.get(&v) {
            taken.extend(ps.iter().copied());
        }
        let free: Vec<RegRef> = cand[&v]
            .iter()
            .copied()
            .filter(|r| !taken.contains(r))
            .collect();
        let pick = if spread {
            free.iter()
                .copied()
                .min_by_key(|r| (last_used.get(r).copied().unwrap_or(0), r.file.0, r.index))
        } else {
            free.first().copied()
        };
        match pick {
            Some(r) => {
                tick += 1;
                last_used.insert(r, tick);
                colors.insert(v, r);
                active.push((end, v, r));
            }
            None => {
                // Spill the active interval ending last (Poletto-style),
                // or this one if it ends last.
                let victim = active
                    .iter()
                    .filter(|(_, av, _)| cand[&v].iter().any(|c| colors.get(av) == Some(c)))
                    .max_by_key(|&&(e, _, _)| e)
                    .map(|&(_, av, _)| av);
                return Err(match victim {
                    Some(av) if intervals[&av].1 > end => av,
                    _ => v,
                });
            }
        }
    }
    Ok(colors)
}

/// Substitutes assigned registers for vregs everywhere.
fn rewrite(f: &mut MirFunction, map: &BTreeMap<VReg, RegRef>) {
    let fix = |o: &mut Operand| {
        if let Operand::Vreg(v) = o {
            if let Some(&r) = map.get(v) {
                *o = Operand::Reg(r);
            }
        }
    };
    for b in &mut f.blocks {
        for op in &mut b.ops {
            if let Some(d) = &mut op.dst {
                fix(d);
            }
            for s in &mut op.srcs {
                fix(s);
            }
        }
        if let Some(mcc_mir::Term::Dispatch { src, .. }) = &mut b.term {
            fix(src);
        }
    }
    for o in &mut f.live_out {
        fix(o);
    }
}

/// Replaces any remaining vreg entries in `live_out` (spilled variables —
/// their value is observable in the spill slot instead).
fn finalize(f: &mut MirFunction, locations: &HashMap<VReg, Location>) {
    f.live_out.retain(|o| match o {
        Operand::Vreg(v) => !matches!(
            locations.get(v),
            Some(Location::Scratch(_)) | Some(Location::Mem(_))
        ),
        Operand::Reg(_) => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::AluOp;
    use mcc_mir::{FuncBuilder, Term};

    #[test]
    fn simple_allocation_assigns_distinct_regs() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        let z = b.vreg();
        b.ldi(x, 1);
        b.ldi(y, 2);
        b.alu(AluOp::Add, z, x, y);
        b.mark_live_out(z);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let rep = allocate(&m, &mut f, &AllocOptions::default()).unwrap();
        assert!(!f.has_virtual_regs());
        assert_eq!(rep.spilled, 0);
        let rx = rep.locations[&x];
        let ry = rep.locations[&y];
        assert_ne!(rx, ry, "x and y are simultaneously live");
    }

    #[test]
    fn dead_values_share_registers() {
        // x dead after its use; y may reuse x's register (greedy mode).
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        let o1 = b.vreg();
        let o2 = b.vreg();
        b.ldi(x, 1);
        b.alu_imm(AluOp::Add, o1, x, 1);
        b.ldi(y, 2);
        b.alu_imm(AluOp::Add, o2, y, 1);
        b.mark_live_out(o1);
        b.mark_live_out(o2);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let opts = AllocOptions {
            spread: false,
            ..Default::default()
        };
        let rep = allocate(&m, &mut f, &opts).unwrap();
        assert_eq!(rep.locations[&x], rep.locations[&y], "greedy reuses");
    }

    #[test]
    fn spread_avoids_immediate_reuse() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        let o1 = b.vreg();
        let o2 = b.vreg();
        b.ldi(x, 1);
        b.alu_imm(AluOp::Add, o1, x, 1);
        b.ldi(y, 2);
        b.alu_imm(AluOp::Add, o2, y, 1);
        b.mark_live_out(o1);
        b.mark_live_out(o2);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let rep = allocate(&m, &mut f, &AllocOptions::default()).unwrap();
        assert_ne!(
            rep.locations[&x], rep.locations[&y],
            "spread picks a fresh register"
        );
    }

    #[test]
    fn budget_forces_spills() {
        // Nine simultaneously-live values under a budget of 4.
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let vs: Vec<_> = (0..9).map(|_| b.vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.ldi(v, i as u64);
        }
        // Sum them all so they are live together.
        let acc = b.vreg();
        b.ldi(acc, 0);
        for &v in &vs {
            b.alu(AluOp::Add, acc, acc, v);
        }
        b.mark_live_out(acc);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let opts = AllocOptions {
            budget: Some(4),
            ..Default::default()
        };
        let rep = allocate(&m, &mut f, &opts).unwrap();
        assert!(rep.spilled > 0, "must spill under a 4-register budget");
        assert!(!f.has_virtual_regs());
        assert!(rep.spill_moves > 0);
        // Spilled variables report scratch/memory locations.
        assert!(rep
            .locations
            .values()
            .any(|l| matches!(l, Location::Scratch(_) | Location::Mem(_))));
    }

    #[test]
    fn no_spills_with_ample_registers() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let vs: Vec<_> = (0..9).map(|_| b.vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.ldi(v, i as u64);
        }
        let acc = b.vreg();
        b.ldi(acc, 0);
        for &v in &vs {
            b.alu(AluOp::Add, acc, acc, v);
        }
        b.mark_live_out(acc);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let rep = allocate(&m, &mut f, &AllocOptions::default()).unwrap();
        assert_eq!(rep.spilled, 0);
    }

    #[test]
    fn linear_scan_also_works() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        b.ldi(x, 1);
        b.ldi(y, 2);
        b.alu(AluOp::Add, x, x, y);
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let opts = AllocOptions {
            strategy: Strategy::LinearScan,
            ..Default::default()
        };
        allocate(&m, &mut f, &opts).unwrap();
        assert!(!f.has_virtual_regs());
    }

    #[test]
    fn precolored_registers_are_respected() {
        // A vreg live across a write to R3 must not get R3.
        let m = hm1();
        let rfile = m.find_file("R").unwrap();
        let r3 = mcc_machine::RegRef::new(rfile, 3);
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 1);
        b.ldi(Operand::Reg(r3), 99);
        b.alu(AluOp::Add, x, x, Operand::Reg(r3));
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let rep = allocate(&m, &mut f, &AllocOptions::default()).unwrap();
        assert_ne!(rep.locations[&x], Location::Reg(r3));
    }

    #[test]
    fn special_registers_never_allocated() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let vs: Vec<_> = (0..14).map(|_| b.vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.ldi(v, i as u64);
            b.mark_live_out(v);
        }
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let rep = allocate(&m, &mut f, &AllocOptions::default()).unwrap();
        for loc in rep.locations.values() {
            if let Location::Reg(r) = loc {
                assert_ne!(Some(*r), m.special.mar);
                assert_ne!(Some(*r), m.special.mbr);
                assert_ne!(Some(*r), m.special.flags);
            }
        }
    }
}
