//! Per-vreg candidate sets from template class constraints.
//!
//! "Allocating a variable to a certain register at a certain program point
//! also determines which subset of microoperations can be applied to that
//! variable at that point" (§2.1.3). The allocator therefore intersects,
//! over every occurrence of a virtual register, the union of register
//! classes any realising template admits at that operand position.

use std::collections::BTreeSet;

use mcc_machine::{MachineDesc, RegRef, SrcSpec};
use mcc_mir::operand::{Operand, VReg};
use mcc_mir::{MirFunction, MirOp};

/// Registers never handed out by the allocator: the special registers
/// (MAR/MBR/ACC/flags — they carry implicit template semantics) and the
/// scratch file (reserved for spill slots).
fn reserved(m: &MachineDesc, r: RegRef) -> bool {
    Some(r) == m.special.mar
        || Some(r) == m.special.mbr
        || Some(r) == m.special.acc
        || Some(r) == m.special.flags
        || Some(r.file) == m.scratch_file
        || m.special.flags.map(|f| f.file) == Some(r.file)
}

/// Union of class members admissible for the operand at `pos` of `op`
/// across all shape-compatible templates.
fn position_union(m: &MachineDesc, op: &MirOp, dst: bool, src_idx: usize) -> BTreeSet<RegRef> {
    let mut set = BTreeSet::new();
    for tid in m.templates_for(op.sem) {
        let t = m.template(tid);
        // Shape compatibility mirrors `select::try_bind`.
        if t.dst.is_some() != op.dst.is_some() {
            continue;
        }
        if t.reg_src_count() != op.srcs.len() {
            continue;
        }
        if t.has_imm() != op.imm.is_some() {
            continue;
        }
        if dst {
            if let Some(c) = t.dst {
                set.extend(m.class(c).members());
            }
        } else {
            let classes: Vec<_> = t
                .srcs
                .iter()
                .filter_map(|s| match s {
                    SrcSpec::Class(c) => Some(*c),
                    SrcSpec::Imm { .. } => None,
                })
                .collect();
            if let Some(c) = classes.get(src_idx) {
                set.extend(m.class(*c).members());
            }
        }
    }
    set
}

/// The default candidate pool for unconstrained vregs (e.g. appearing only
/// in `live_out` or dispatch indices): every non-reserved register of every
/// file that some template can read *and* write.
fn default_pool(m: &MachineDesc, budget: Option<u16>) -> Vec<RegRef> {
    let mut readable: BTreeSet<RegRef> = BTreeSet::new();
    let mut writable: BTreeSet<RegRef> = BTreeSet::new();
    for t in &m.templates {
        if let Some(c) = t.dst {
            writable.extend(m.class(c).members());
        }
        for s in &t.srcs {
            if let SrcSpec::Class(c) = s {
                readable.extend(m.class(*c).members());
            }
        }
    }
    readable
        .intersection(&writable)
        .copied()
        .filter(|&r| !reserved(m, r))
        .filter(|&r| budget.is_none_or(|b| r.index < b))
        .collect()
}

/// Computes the admissible registers for `v` in `f` on machine `m`,
/// optionally limited to the first `budget` registers of each file.
///
/// The result is ordered (file, index) so allocation is deterministic.
pub fn allowed_registers(
    m: &MachineDesc,
    f: &MirFunction,
    v: VReg,
    budget: Option<u16>,
) -> Vec<RegRef> {
    let mut acc: Option<BTreeSet<RegRef>> = None;
    let mut constrain = |set: BTreeSet<RegRef>| {
        acc = Some(match acc.take() {
            None => set,
            Some(prev) => prev.intersection(&set).copied().collect(),
        });
    };

    for b in &f.blocks {
        for op in &b.ops {
            if op.dst == Some(Operand::Vreg(v)) {
                constrain(position_union(m, op, true, 0));
            }
            for (i, s) in op.srcs.iter().enumerate() {
                if *s == Operand::Vreg(v) {
                    constrain(position_union(m, op, false, i));
                }
            }
        }
        if let Some(mcc_mir::Term::Dispatch { src, .. }) = &b.term {
            if *src == Operand::Vreg(v) {
                // Dispatch index class union.
                let mut set = BTreeSet::new();
                for tid in m.templates_for(mcc_machine::Semantic::Dispatch) {
                    let t = m.template(tid);
                    for s in &t.srcs {
                        if let SrcSpec::Class(c) = s {
                            set.extend(m.class(*c).members());
                        }
                    }
                }
                constrain(set);
            }
        }
    }

    match acc {
        Some(set) => set
            .into_iter()
            .filter(|&r| !reserved(m, r))
            .filter(|&r| budget.is_none_or(|b| r.index < b))
            .collect(),
        None => default_pool(m, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{hm1, wm64};
    use mcc_machine::AluOp;
    use mcc_mir::{FuncBuilder, Term};

    #[test]
    fn alu_operand_constrains_to_alu_classes() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        b.alu(AluOp::Add, y, x, x);
        b.mark_live_out(y);
        b.terminate(Term::Halt);
        let f = b.finish();
        let cand = allowed_registers(&m, &f, x, None);
        // alu_left ∩ alu_right = R0..R15 + ACC, minus reserved ACC → 16.
        assert_eq!(cand.len(), 16);
        let rfile = m.find_file("R").unwrap();
        assert!(cand.iter().all(|r| r.file == rfile));
    }

    #[test]
    fn budget_truncates_pool() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 3);
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        let f = b.finish();
        let all = allowed_registers(&m, &f, x, None);
        let four = allowed_registers(&m, &f, x, Some(4));
        assert!(four.len() < all.len());
        assert!(four.iter().all(|r| r.index < 4));
    }

    #[test]
    fn reserved_registers_excluded() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 3);
        b.mark_live_out(x);
        b.terminate(Term::Halt);
        let f = b.finish();
        let cand = allowed_registers(&m, &f, x, None);
        assert!(!cand.contains(&m.special.mar.unwrap()));
        assert!(!cand.contains(&m.special.mbr.unwrap()));
        // The LS scratch file is reserved for spills even though `mov`
        // could address it.
        let ls = m.find_file("LS").unwrap();
        assert!(cand.iter().all(|r| r.file != ls));
    }

    #[test]
    fn alu1_narrow_class_on_wm64_does_not_block() {
        // On WM-64, `add` is realised by both ALUs; the union is all 256.
        let m = wm64();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        b.alu(AluOp::Add, y, x, x);
        b.mark_live_out(y);
        b.terminate(Term::Halt);
        let f = b.finish();
        let cand = allowed_registers(&m, &f, x, None);
        assert_eq!(cand.len(), 256);
    }
}
