//! Spill-code generation.
//!
//! Spill slots come from the machine's scratch file (local store), taken
//! from the *top* of the file downward (frontends that address the local
//! store explicitly, like S\*, use it from the bottom). When the local
//! store is exhausted the spiller falls back to a reserved area of main
//! memory — §2.1.3: "temporarily storing variables in a reserved area of
//! main memory will sometimes be unavoidable, but should be done in such a
//! way that the number of fetches and stores is minimized".

use mcc_machine::{MachineDesc, RegRef, Semantic};
use mcc_mir::operand::{Operand, VReg};
use mcc_mir::{MirFunction, MirOp};

/// One spill location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A local-store register.
    Scratch(RegRef),
    /// A main-memory word at this address.
    Mem(u64),
}

/// Hands out spill slots and rewrites spilled vregs.
pub struct Spiller {
    scratch: Vec<RegRef>,         // remaining scratch slots (top-down)
    mem_next: Option<(u64, u64)>, // (next address, limit)
    has_memory: bool,
    mar: Option<RegRef>,
    mbr: Option<RegRef>,
}

impl Spiller {
    /// Prepares a spiller for machine `m`.
    pub fn new(m: &MachineDesc) -> Self {
        let scratch = match m.scratch_file {
            Some(fid) => {
                let n = m.file(fid).count;
                (0..n).map(|i| RegRef::new(fid, i)).collect()
            }
            None => Vec::new(),
        };
        let has_memory = m.templates_for(Semantic::MemRead).next().is_some()
            && m.special.mar.is_some()
            && m.special.mbr.is_some();
        // The memory spill area sits just below the top of what a single
        // `ldi` can address: 64 words.
        let ldi_bits = m
            .templates_for(Semantic::LoadImm)
            .filter_map(|t| m.template(t).imm_bits())
            .max()
            .unwrap_or(0)
            .min(16);
        let mem_next = if has_memory && ldi_bits >= 7 {
            let top = 1u64 << ldi_bits;
            Some((top - 64, top))
        } else {
            None
        };
        Spiller {
            scratch,
            mem_next,
            has_memory,
            mar: m.special.mar,
            mbr: m.special.mbr,
        }
    }

    /// Hands out the next free slot.
    pub fn next_slot(&mut self) -> Option<Slot> {
        if let Some(r) = self.scratch.pop() {
            return Some(Slot::Scratch(r));
        }
        if !self.has_memory {
            return None;
        }
        let (next, limit) = self.mem_next.as_mut()?;
        if next >= limit {
            return None;
        }
        let a = *next;
        *next += 1;
        Some(Slot::Mem(a))
    }

    fn fill_ops(&self, slot: &Slot, tmp: Operand) -> Vec<MirOp> {
        match slot {
            Slot::Scratch(r) => vec![MirOp::mov(tmp, Operand::Reg(*r))],
            Slot::Mem(addr) => {
                let mar = Operand::Reg(self.mar.expect("memory machine"));
                let mbr = Operand::Reg(self.mbr.expect("memory machine"));
                vec![
                    MirOp::ldi(mar, *addr),
                    MirOp::new(Semantic::MemRead),
                    MirOp::mov(tmp, mbr),
                ]
            }
        }
    }

    fn store_ops(&self, slot: &Slot, tmp: Operand) -> Vec<MirOp> {
        match slot {
            Slot::Scratch(r) => vec![MirOp::mov(Operand::Reg(*r), tmp)],
            Slot::Mem(addr) => {
                let mar = Operand::Reg(self.mar.expect("memory machine"));
                let mbr = Operand::Reg(self.mbr.expect("memory machine"));
                vec![
                    MirOp::ldi(mar, *addr),
                    MirOp::mov(mbr, tmp),
                    MirOp::new(Semantic::MemWrite),
                ]
            }
        }
    }

    /// Whether `op` sets up MAR/MBR for a following memory operation —
    /// memory fills must not be wedged into such a setup group.
    fn writes_special(&self, op: &MirOp) -> bool {
        matches!(op.dst, Some(Operand::Reg(r))
            if Some(r) == self.mar || Some(r) == self.mbr)
    }

    /// Rewrites every occurrence of `v` to go through `slot`, inserting
    /// fill/store code. Returns the number of operations inserted.
    pub fn rewrite(&mut self, f: &mut MirFunction, v: VReg, slot: &Slot) -> usize {
        let mut inserted = 0usize;
        for bi in 0..f.blocks.len() {
            let old = std::mem::take(&mut f.blocks[bi].ops);
            let mut new: Vec<MirOp> = Vec::with_capacity(old.len());
            for mut op in old {
                let uses_v = op.srcs.contains(&Operand::Vreg(v));
                let defs_v = op.dst == Some(Operand::Vreg(v));
                if !uses_v && !defs_v {
                    new.push(op);
                    continue;
                }
                let tmp = Operand::Vreg(f.new_vreg());
                if uses_v {
                    // Insert fills before any MAR/MBR setup group the op
                    // belongs to (a memory fill clobbers MAR and MBR).
                    let mut at = new.len();
                    while at > 0 && self.writes_special(&new[at - 1]) {
                        at -= 1;
                    }
                    let fill = self.fill_ops(slot, tmp);
                    inserted += fill.len();
                    for (k, fo) in fill.into_iter().enumerate() {
                        new.insert(at + k, fo);
                    }
                    for s in &mut op.srcs {
                        if *s == Operand::Vreg(v) {
                            *s = tmp;
                        }
                    }
                }
                if defs_v {
                    op.dst = Some(tmp);
                }
                new.push(op);
                if defs_v {
                    let st = self.store_ops(slot, tmp);
                    inserted += st.len();
                    new.extend(st);
                }
            }
            f.blocks[bi].ops = new;
        }
        // The spilled value is henceforth observable in its slot, not in a
        // register: drop it from live_out so liveness stops pinning it.
        f.live_out.retain(|o| *o != Operand::Vreg(v));
        // Dispatch terminators may use the spilled vreg.
        for bi in 0..f.blocks.len() {
            let needs = matches!(
                &f.blocks[bi].term,
                Some(mcc_mir::Term::Dispatch { src, .. }) if *src == Operand::Vreg(v)
            );
            if needs {
                let tmp = Operand::Vreg(f.new_vreg());
                let fill = self.fill_ops(slot, tmp);
                inserted += fill.len();
                f.blocks[bi].ops.extend(fill);
                if let Some(mcc_mir::Term::Dispatch { src, .. }) = &mut f.blocks[bi].term {
                    *src = tmp;
                }
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{hm1, wm64};

    #[test]
    fn scratch_slots_come_from_the_top() {
        let m = hm1();
        let mut s = Spiller::new(&m);
        let ls = m.find_file("LS").unwrap();
        assert_eq!(s.next_slot(), Some(Slot::Scratch(RegRef::new(ls, 31))));
        assert_eq!(s.next_slot(), Some(Slot::Scratch(RegRef::new(ls, 30))));
    }

    #[test]
    fn memory_overflow_after_scratch() {
        let m = hm1();
        let mut s = Spiller::new(&m);
        for _ in 0..32 {
            assert!(matches!(s.next_slot(), Some(Slot::Scratch(_))));
        }
        match s.next_slot() {
            Some(Slot::Mem(a)) => assert_eq!(a, (1 << 16) - 64),
            other => panic!("expected memory slot, got {other:?}"),
        }
    }

    #[test]
    fn wm64_has_memory_spill_only() {
        // WM-64 declares no scratch file.
        let m = wm64();
        let mut s = Spiller::new(&m);
        assert!(matches!(s.next_slot(), Some(Slot::Mem(_))));
    }

    #[test]
    fn rewrite_inserts_fill_and_store() {
        use mcc_machine::AluOp;
        use mcc_mir::{FuncBuilder, Term};
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let v = b.vreg();
        b.ldi(v, 1);
        b.alu_imm(AluOp::Add, v, v, 2);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let mut s = Spiller::new(&m);
        let slot = s.next_slot().unwrap();
        let n = s.rewrite(&mut f, v, &slot);
        // ldi defines v → 1 store; add uses+defines → 1 fill + 1 store.
        assert_eq!(n, 3);
        assert_eq!(f.blocks[0].ops.len(), 5);
        // v itself no longer appears.
        assert!(!f.blocks[0].ops.iter().any(|op| {
            op.dst == Some(Operand::Vreg(v)) || op.srcs.contains(&Operand::Vreg(v))
        }));
    }

    #[test]
    fn memory_fill_respects_mar_setup_group() {
        use mcc_mir::{FuncBuilder, Term};
        let m = hm1();
        let mar = Operand::Reg(m.special.mar.unwrap());
        let mut b = FuncBuilder::new("t");
        let v = b.vreg();
        b.ldi(v, 1);
        // A hand-built MAR setup followed by an op using v.
        b.mov(mar, v); // uses v! fill must go before this mov
        b.push(MirOp::new(Semantic::MemRead));
        b.terminate(Term::Halt);
        let mut f = b.finish();
        let mut s = Spiller::new(&m);
        // Force a memory slot.
        for _ in 0..32 {
            s.next_slot();
        }
        let slot = s.next_slot().unwrap();
        assert!(matches!(slot, Slot::Mem(_)));
        s.rewrite(&mut f, v, &slot);
        // The MemRead of the fill must come before the `mov MAR, tmp`,
        // never between `mov MAR, _` and the original MemRead.
        let ops = &f.blocks[0].ops;
        let positions: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.sem == Semantic::MemRead)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 2);
        // Between the two MemReads there must be a write to MAR (the
        // original setup) — i.e. the fill group completed first.
        let between = &ops[positions[0] + 1..positions[1]];
        assert!(
            between.iter().any(|o| o.dst == Some(mar)),
            "fill group and setup group interleaved: {ops:#?}"
        );
    }
}
