//! # `mcc-compact` — microinstruction composition
//!
//! The survey's §2.1.4 calls microinstruction composition — packing a
//! sequential stream of micro-operations into as few horizontal
//! microinstructions as dependences and resources allow — the most
//! studied problem of microcode compilation, and its §3 argues it was
//! *over*-studied relative to register allocation. This crate implements
//! the algorithm family the survey cites:
//!
//! | Algorithm | Survey reference | Idea |
//! |---|---|---|
//! | [`Algorithm::Linear`] | Ramamoorthy & Tsuchiya \[18\] | first-fit in program order |
//! | [`Algorithm::CriticalPath`] | Tsuchiya & Gonzalez \[22\] | list scheduling, longest-path priority |
//! | [`Algorithm::LevelPack`] | Dasgupta & Tartar \[3\] | maximal-parallelism level partitioning |
//! | [`Algorithm::Tokoro`] | Tokoro et al. \[21\] | list scheduling under the *fine* phase-occupancy conflict model |
//! | [`Algorithm::BranchBound`] | the "minimal sequence" baseline | exact search with pruning |
//!
//! All algorithms share one conflict oracle
//! ([`MachineDesc::conflicts`](mcc_machine::MachineDesc::conflicts)) and one
//! dependence DAG ([`mcc_mir::DepGraph`]); they differ only in *order* and
//! *placement policy*, which is exactly what experiment E2 measures.

use mcc_machine::{BoundOp, ConflictModel, MachineDesc, MicroInstr};
use mcc_mir::dep::DepGraph;
use mcc_mir::select::SelectedOp;

mod bb;

/// The compaction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First-come-first-served first-fit (SIMPL's approach).
    Linear,
    /// List scheduling with critical-path priority.
    CriticalPath,
    /// Dasgupta–Tartar level partitioning: ops of ASAP level *k* may not
    /// share an instruction with ops of level *k+1*.
    LevelPack,
    /// Tokoro-style: critical-path list scheduling, but conflicts are
    /// judged per phase ([`ConflictModel::Fine`]) regardless of the model
    /// passed in.
    Tokoro,
    /// Exact branch-and-bound (falls back to critical-path above
    /// [`BB_MAX_OPS`] operations).
    BranchBound,
    /// One operation per microinstruction in program order — no packing at
    /// all. This is the reference semantics the differential fuzzer
    /// compares every other algorithm against (and the floor of the
    /// degradation chain); it is structurally incapable of packing
    /// conflicts or reordering hazards.
    Sequential,
}

impl Algorithm {
    /// All *compacting* algorithms, for sweeps. [`Algorithm::Sequential`]
    /// is deliberately excluded: it is the uncompacted baseline, not a
    /// competitor, and including it would skew the E2 comparisons.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Linear,
        Algorithm::CriticalPath,
        Algorithm::LevelPack,
        Algorithm::Tokoro,
        Algorithm::BranchBound,
    ];

    /// Short display name (used in experiment tables).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Linear => "linear",
            Algorithm::CriticalPath => "critpath",
            Algorithm::LevelPack => "levelpack",
            Algorithm::Tokoro => "tokoro",
            Algorithm::BranchBound => "optimal",
            Algorithm::Sequential => "sequential",
        }
    }
}

/// Block size limit for the exact search.
pub const BB_MAX_OPS: usize = 14;

/// Default node budget for the exact search: deterministic (a node count,
/// not a timeout), so the same input degrades the same way everywhere.
pub const BB_DEFAULT_BUDGET: u64 = 2_000_000;

/// Floor for pressure-scaled budgets: enough nodes to solve small blocks
/// exactly, tiny enough to bound worst-case latency under load.
pub const BB_MIN_BUDGET: u64 = 1_000;

/// Scales an exact-search node budget for a load-shedding pressure tier:
/// tier 0 is the base budget, and each higher tier divides it by 8 —
/// enforcing the survey's observation that compaction effort is the
/// right first thing to trade for latency, since every stage of the
/// degradation chain still emits correct code. Never drops below
/// [`BB_MIN_BUDGET`], and saturates at tier 4.
pub fn budget_for_pressure(base: u64, tier: u8) -> u64 {
    if tier == 0 {
        return base;
    }
    (base >> (3 * u32::from(tier.min(4)))).max(BB_MIN_BUDGET)
}

/// Result of compacting one basic block.
#[derive(Debug, Clone)]
pub struct Compaction {
    /// The packed microinstructions.
    pub instrs: Vec<MicroInstr>,
    /// For each input op, the index of the instruction it landed in.
    pub mi_of: Vec<usize>,
}

impl Compaction {
    /// Number of microinstructions produced.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the block compacted to nothing.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Whether `op` can join microinstruction `mi` without conflicts.
pub(crate) fn fits(m: &MachineDesc, mi: &MicroInstr, op: &BoundOp, model: ConflictModel) -> bool {
    mi.ops.iter().all(|o| !m.conflicts(o, op, model))
}

/// Picks the first candidate of `op` that fits `mi`.
fn pick_candidate<'a>(
    m: &MachineDesc,
    mi: &MicroInstr,
    op: &'a SelectedOp,
    model: ConflictModel,
) -> Option<&'a BoundOp> {
    op.candidates.iter().find(|c| fits(m, mi, c, model))
}

/// Earliest legal instruction index for op `j` given already-placed preds.
fn earliest(g: &DepGraph, mi_of: &[Option<usize>], j: usize) -> Option<usize> {
    let mut e = 0usize;
    for &(i, kind) in g.preds(j) {
        match mi_of[i] {
            Some(s) => e = e.max(s + kind.min_distance()),
            None => return None, // predecessor unscheduled
        }
    }
    Some(e)
}

/// First-fit placement of op `j` from index `from` upward.
fn place_first_fit(
    m: &MachineDesc,
    instrs: &mut Vec<MicroInstr>,
    op: &SelectedOp,
    from: usize,
    model: ConflictModel,
) -> usize {
    let mut t = from;
    loop {
        if t >= instrs.len() {
            instrs.resize_with(t + 1, MicroInstr::new);
        }
        if let Some(c) = pick_candidate(m, &instrs[t], op, model) {
            let c = c.clone();
            instrs[t].ops.push(c);
            return t;
        }
        t += 1;
    }
}

fn linear(m: &MachineDesc, ops: &[SelectedOp], g: &DepGraph, model: ConflictModel) -> Compaction {
    let mut instrs: Vec<MicroInstr> = Vec::new();
    let mut placed: Vec<Option<usize>> = vec![None; ops.len()];
    for j in 0..ops.len() {
        let e = earliest(g, &placed, j).expect("program order schedules preds first");
        let t = place_first_fit(m, &mut instrs, &ops[j], e, model);
        placed[j] = Some(t);
    }
    finish(m, instrs, placed, g, model)
}

fn list_schedule(
    m: &MachineDesc,
    ops: &[SelectedOp],
    g: &DepGraph,
    model: ConflictModel,
) -> Compaction {
    let prio = g.critical_path();
    let n = ops.len();
    let mut placed: Vec<Option<usize>> = vec![None; n];
    let mut instrs: Vec<MicroInstr> = Vec::new();
    let mut done = 0usize;
    let mut t = 0usize;
    while done < n {
        if t >= instrs.len() {
            instrs.resize_with(t + 1, MicroInstr::new);
        }
        // Ready ops whose earliest slot is ≤ t, by priority then order.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&j| placed[j].is_none())
            .filter(|&j| earliest(g, &placed, j).is_some_and(|e| e <= t))
            .collect();
        ready.sort_by_key(|&j| (std::cmp::Reverse(prio[j]), j));
        let mut progressed = false;
        for j in ready {
            // Re-check: an op placed this cycle may create a same-cycle
            // hazard only through conflicts, which `fits` sees; dependence
            // distances are fixed before the cycle starts.
            if let Some(c) = pick_candidate(m, &instrs[t], &ops[j], model) {
                let c = c.clone();
                instrs[t].ops.push(c);
                placed[j] = Some(t);
                done += 1;
                progressed = true;
            }
        }
        let _ = progressed;
        t += 1;
    }
    finish(m, instrs, placed, g, model)
}

fn level_pack(
    m: &MachineDesc,
    ops: &[SelectedOp],
    g: &DepGraph,
    model: ConflictModel,
) -> Compaction {
    let levels = g.asap_levels();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let n = ops.len();
    let mut placed: Vec<Option<usize>> = vec![None; n];
    let mut instrs: Vec<MicroInstr> = Vec::new();
    let mut level_start = 0usize;
    for l in 0..=max_level {
        let mut level_end = level_start;
        for j in 0..n {
            if levels[j] != l {
                continue;
            }
            // Anti-dependences within a level still constrain placement.
            let e = earliest(g, &placed, j).unwrap_or(level_start).max(level_start);
            let t = place_first_fit(m, &mut instrs, &ops[j], e, model);
            placed[j] = Some(t);
            level_end = level_end.max(t + 1);
        }
        // The next level starts strictly after this one's instructions.
        level_start = level_end.max(level_start);
    }
    finish(m, instrs, placed, g, model)
}

pub(crate) fn finish(
    m: &MachineDesc,
    mut instrs: Vec<MicroInstr>,
    placed: Vec<Option<usize>>,
    g: &DepGraph,
    model: ConflictModel,
) -> Compaction {
    // Drop empty trailing/interior instructions, remapping indices.
    let mut remap = vec![usize::MAX; instrs.len()];
    let mut out: Vec<MicroInstr> = Vec::new();
    for (i, mi) in instrs.drain(..).enumerate() {
        if !mi.is_empty() {
            remap[i] = out.len();
            out.push(mi);
        }
    }
    let mi_of: Vec<usize> = placed
        .into_iter()
        .map(|p| remap[p.expect("all ops placed")])
        .collect();
    debug_assert!(g.schedule_respects(&mi_of), "dependence violated");
    debug_assert!(
        out.iter().all(|mi| m.validate_instr(mi, model).is_ok()),
        "conflicting pack emitted"
    );
    Compaction { instrs: out, mi_of }
}

/// Compacts one basic block of selected operations.
///
/// The `model` chooses the conflict oracle; [`Algorithm::Tokoro`] always
/// uses [`ConflictModel::Fine`] (that *is* the algorithm's contribution).
pub fn compact(
    m: &MachineDesc,
    ops: &[SelectedOp],
    algo: Algorithm,
    model: ConflictModel,
) -> Compaction {
    if ops.is_empty() {
        return Compaction {
            instrs: Vec::new(),
            mi_of: Vec::new(),
        };
    }
    let g = DepGraph::build(ops);
    match algo {
        Algorithm::Linear => linear(m, ops, &g, model),
        Algorithm::CriticalPath => list_schedule(m, ops, &g, model),
        Algorithm::LevelPack => level_pack(m, ops, &g, model),
        Algorithm::Tokoro => list_schedule(m, ops, &g, ConflictModel::Fine),
        Algorithm::BranchBound => {
            if ops.len() <= BB_MAX_OPS {
                bb::branch_and_bound(m, ops, &g, model)
            } else {
                list_schedule(m, ops, &g, model)
            }
        }
        Algorithm::Sequential => sequential(ops),
    }
}

/// The result of [`compact_degrading`]: the schedule, the algorithm that
/// finally produced it, and the fallback chain taken to get there.
#[derive(Debug, Clone)]
pub struct DegradedCompaction {
    /// The packed schedule.
    pub compaction: Compaction,
    /// Name of the algorithm that produced it (`"sequential"` at the
    /// bottom of the chain).
    pub algorithm_used: &'static str,
    /// One entry per degradation step; empty when the requested algorithm
    /// succeeded outright.
    pub events: Vec<String>,
}

/// Last-resort schedule: one operation per microinstruction, in program
/// order. Structurally incapable of packing conflicts or reordering
/// hazards, so it needs no validation to be safe.
fn sequential(ops: &[SelectedOp]) -> Compaction {
    Compaction {
        instrs: ops
            .iter()
            .map(|o| MicroInstr::single(o.candidates[0].clone()))
            .collect(),
        mi_of: (0..ops.len()).collect(),
    }
}

/// Full validation of a finished schedule (release-mode checked — unlike
/// the `debug_assert`s in [`finish`], this is what the degradation chain
/// keys off).
fn check(
    m: &MachineDesc,
    g: &DepGraph,
    c: &Compaction,
    model: ConflictModel,
) -> Result<(), String> {
    if c.mi_of.len() != g.len() {
        return Err(format!(
            "{} of {} ops scheduled",
            c.mi_of.len(),
            g.len()
        ));
    }
    if !g.schedule_respects(&c.mi_of) {
        return Err("dependence order violated".into());
    }
    for (i, mi) in c.instrs.iter().enumerate() {
        if let Err(e) = m.validate_instr(mi, model) {
            return Err(format!("instruction {i}: {e}"));
        }
    }
    Ok(())
}

/// Compacts a block with graceful degradation instead of failure.
///
/// The chain is: the requested algorithm (the exact search is capped by
/// the deterministic `bb_budget` node budget and the [`BB_MAX_OPS`] size
/// limit) → critical-path list scheduling → first-come-first-served →
/// strictly sequential. Every attempt is validated against the dependence
/// DAG and the machine's conflict oracle; an invalid schedule drops to the
/// next stage and records why, so the pipeline always emits *correct*
/// code, merely less compact under duress.
pub fn compact_degrading(
    m: &MachineDesc,
    ops: &[SelectedOp],
    algo: Algorithm,
    model: ConflictModel,
    bb_budget: u64,
) -> DegradedCompaction {
    if ops.is_empty() {
        return DegradedCompaction {
            compaction: Compaction {
                instrs: Vec::new(),
                mi_of: Vec::new(),
            },
            algorithm_used: algo.name(),
            events: Vec::new(),
        };
    }
    let g = DepGraph::build(ops);
    let used_model = if algo == Algorithm::Tokoro {
        ConflictModel::Fine
    } else {
        model
    };
    let mut events: Vec<String> = Vec::new();

    // Stage 1: the requested algorithm.
    let attempt = match algo {
        Algorithm::BranchBound if ops.len() > BB_MAX_OPS => {
            events.push(format!(
                "optimal: {} ops exceed the {BB_MAX_OPS}-op exact-search limit; \
                 degrading to list scheduling",
                ops.len()
            ));
            None
        }
        Algorithm::BranchBound => {
            let (c, status) = bb::branch_and_bound_budgeted(m, ops, &g, model, bb_budget);
            if status.exhausted {
                events.push(format!(
                    "optimal: node budget {bb_budget} exhausted; \
                     keeping best schedule found so far"
                ));
            }
            Some(c)
        }
        Algorithm::Linear => Some(linear(m, ops, &g, model)),
        Algorithm::CriticalPath => Some(list_schedule(m, ops, &g, model)),
        Algorithm::LevelPack => Some(level_pack(m, ops, &g, model)),
        Algorithm::Tokoro => Some(list_schedule(m, ops, &g, ConflictModel::Fine)),
        Algorithm::Sequential => Some(sequential(ops)),
    };
    if let Some(c) = attempt {
        match check(m, &g, &c, used_model) {
            Ok(()) => {
                return DegradedCompaction {
                    compaction: c,
                    algorithm_used: algo.name(),
                    events,
                }
            }
            Err(e) => events.push(format!("{}: invalid schedule ({e}); degrading", algo.name())),
        }
    }

    // Stage 2/3: list scheduling, then first-come-first-served.
    for fallback in [Algorithm::CriticalPath, Algorithm::Linear] {
        if fallback == algo {
            continue; // already tried as the request itself
        }
        let c = match fallback {
            Algorithm::Linear => linear(m, ops, &g, model),
            _ => list_schedule(m, ops, &g, model),
        };
        match check(m, &g, &c, model) {
            Ok(()) => {
                return DegradedCompaction {
                    compaction: c,
                    algorithm_used: fallback.name(),
                    events,
                }
            }
            Err(e) => {
                events.push(format!("{}: invalid schedule ({e}); degrading", fallback.name()))
            }
        }
    }

    // Stage 4: strictly sequential — cannot fail.
    events.push("sequential: one operation per microinstruction".into());
    DegradedCompaction {
        compaction: sequential(ops),
        algorithm_used: "sequential",
        events,
    }
}

/// Packs a terminator (or other control op) after a compacted body: into
/// the body's last instruction when conflict-free and dependence-safe, or
/// into a fresh instruction otherwise. Returns the instruction index used.
///
/// Dependence safety: within one microinstruction all reads precede all
/// writes, so the control op may not read anything the last instruction
/// writes (a branch testing flags must not share a cycle with the op that
/// sets them).
pub fn pack_control(
    m: &MachineDesc,
    instrs: &mut Vec<MicroInstr>,
    op: BoundOp,
    model: ConflictModel,
) -> usize {
    if let Some(last) = instrs.last() {
        let reads = m.read_set(&op);
        let raw_hazard = last
            .ops
            .iter()
            .any(|o| m.write_set(o).iter().any(|w| reads.contains(w)));
        let has_control = last
            .ops
            .iter()
            .any(|o| m.template(o.template).semantic.is_control());
        if !raw_hazard && !has_control && fits(m, last, &op, model) {
            let idx = instrs.len() - 1;
            instrs.last_mut().expect("nonempty").ops.push(op);
            return idx;
        }
    }
    instrs.push(MicroInstr::single(op));
    instrs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{bx2, hm1, vm1, wm64};
    use mcc_machine::{AluOp, CondKind, RegRef, Semantic};
    use mcc_mir::op::MirOp;
    use mcc_mir::operand::Operand;
    use mcc_mir::select::select_op;

    fn sel(m: &MachineDesc, mir: &[MirOp]) -> Vec<SelectedOp> {
        mir.iter().map(|o| select_op(m, o).unwrap()).collect()
    }

    fn r(m: &MachineDesc, i: u16) -> Operand {
        let f = m.find_file("R").or_else(|| m.find_file("G")).unwrap();
        Operand::Reg(RegRef::new(f, i))
    }

    /// An oversize block under the exact algorithm degrades to list
    /// scheduling and records why; the schedule stays valid.
    #[test]
    fn degrading_skips_oversize_exact_search() {
        let m = hm1();
        let mir: Vec<MirOp> = (0..BB_MAX_OPS as u16 + 6)
            .map(|i| MirOp::alu(AluOp::Add, r(&m, i % 8), r(&m, (i + 1) % 8), r(&m, (i + 2) % 8)))
            .collect();
        let ops = sel(&m, &mir);
        let d = compact_degrading(&m, &ops, Algorithm::BranchBound, ConflictModel::Fine, 1_000);
        assert_eq!(d.algorithm_used, "critpath");
        assert_eq!(d.events.len(), 1);
        assert!(d.events[0].contains("exceed"), "{}", d.events[0]);
        let g = DepGraph::build(&ops);
        assert!(check(&m, &g, &d.compaction, ConflictModel::Fine).is_ok());
    }

    /// Budget exhaustion keeps the incumbent (still valid, still reported
    /// as the exact algorithm's best effort) and records the event.
    #[test]
    fn degrading_reports_budget_exhaustion() {
        let m = hm1();
        let mir: Vec<MirOp> = (0..8u16)
            .map(|i| MirOp::alu(AluOp::Add, r(&m, i % 8), r(&m, (i + 1) % 8), r(&m, (i + 2) % 8)))
            .collect();
        let ops = sel(&m, &mir);
        let d = compact_degrading(&m, &ops, Algorithm::BranchBound, ConflictModel::Fine, 1);
        assert_eq!(d.algorithm_used, "optimal");
        assert!(d.events.iter().any(|e| e.contains("budget")), "{:?}", d.events);
        let g = DepGraph::build(&ops);
        assert!(check(&m, &g, &d.compaction, ConflictModel::Fine).is_ok());
    }

    /// Same seed in = same schedule out: the node budget is deterministic,
    /// not wall-clock based.
    #[test]
    fn degrading_is_deterministic() {
        let m = hm1();
        let mir: Vec<MirOp> = (0..10u16)
            .map(|i| MirOp::alu(AluOp::Add, r(&m, i % 8), r(&m, (i + 1) % 8), r(&m, (i + 2) % 8)))
            .collect();
        let ops = sel(&m, &mir);
        let a = compact_degrading(&m, &ops, Algorithm::BranchBound, ConflictModel::Fine, 5_000);
        let b = compact_degrading(&m, &ops, Algorithm::BranchBound, ConflictModel::Fine, 5_000);
        assert_eq!(a.compaction.mi_of, b.compaction.mi_of);
        assert_eq!(a.events, b.events);
    }

    /// The sequential floor of the chain is dependence- and conflict-safe
    /// by construction.
    #[test]
    fn sequential_floor_is_valid() {
        let m = hm1();
        let mir: Vec<MirOp> = (0..6u16)
            .map(|i| MirOp::alu(AluOp::Add, r(&m, i), r(&m, i), r(&m, i)))
            .collect();
        let ops = sel(&m, &mir);
        let c = sequential(&ops);
        let g = DepGraph::build(&ops);
        assert!(check(&m, &g, &c, ConflictModel::Fine).is_ok());
        assert_eq!(c.len(), ops.len());
    }

    /// `Algorithm::Sequential` through the public API: exactly one
    /// microinstruction per op, valid under the fine model, and the
    /// degradation entry point reports it as the requested algorithm.
    #[test]
    fn sequential_algorithm_is_first_class() {
        let m = hm1();
        let mir: Vec<MirOp> = (0..5u16)
            .map(|i| MirOp::alu(AluOp::Add, r(&m, i), r(&m, i + 1), r(&m, i + 2)))
            .collect();
        let ops = sel(&m, &mir);
        let c = compact(&m, &ops, Algorithm::Sequential, ConflictModel::Fine);
        assert_eq!(c.len(), ops.len());
        let g = DepGraph::build(&ops);
        assert!(check(&m, &g, &c, ConflictModel::Fine).is_ok());
        let d = compact_degrading(&m, &ops, Algorithm::Sequential, ConflictModel::Fine, 1_000);
        assert_eq!(d.algorithm_used, "sequential");
        assert!(d.events.is_empty());
        assert_eq!(d.compaction.mi_of, c.mi_of);
    }

    /// Four independent movs on HM-1: only one move bus, so four cycles —
    /// unless we also use the ALU pass-through... which writes flags, so
    /// two movs per cycle never happen on the bus. Expect 4 MIs via bus
    /// (mov candidates only).
    #[test]
    fn independent_movs_serialise_on_one_bus() {
        let m = hm1();
        let ops = sel(
            &m,
            &[
                MirOp::mov(r(&m, 0), r(&m, 1)),
                MirOp::mov(r(&m, 2), r(&m, 3)),
                MirOp::mov(r(&m, 4), r(&m, 5)),
                MirOp::mov(r(&m, 6), r(&m, 7)),
            ],
        );
        for algo in Algorithm::ALL {
            let c = compact(&m, &ops, algo, ConflictModel::Coarse);
            assert_eq!(c.len(), 4, "{}", algo.name());
        }
    }

    /// A mov and an ALU op are independent and use distinct units → 1 MI
    /// under the fine model, 2 under the coarse model (ALU write-back
    /// touches the move bus in phase 2).
    #[test]
    fn fine_model_packs_tighter_than_coarse() {
        let m = hm1();
        let ops = sel(
            &m,
            &[
                MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2)),
                MirOp::mov(r(&m, 4), r(&m, 5)),
            ],
        );
        let coarse = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        let fine = compact(&m, &ops, Algorithm::Tokoro, ConflictModel::Coarse);
        assert_eq!(coarse.len(), 2);
        assert_eq!(fine.len(), 1, "Tokoro sees the phase-disjoint bus use");
    }

    /// Two independent adds on WM-64 pack into one MI via the second ALU.
    #[test]
    fn unit_choice_on_wm64() {
        let m = wm64();
        // Use the `.1` twin by hand? No — selection returns both and the
        // compactor must discover the combination. Note both `add`
        // templates write flags except add.1; add+add.1 is the only pair.
        let ops = sel(
            &m,
            &[
                MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2)),
                MirOp::alu(AluOp::Xor, r(&m, 3), r(&m, 4), r(&m, 5)),
            ],
        );
        // xor/xor.1 candidate choice: one of them must land beside add.
        // But add writes flags and xor writes flags; xor.1 does not.
        let c = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        assert_eq!(c.len(), 2, "both flag-writers: output dep forces 2 MIs");

        // With explicitly independent ops (second op on ALU-1 semantics,
        // no flags): mov + add pack fine.
        let ops = sel(
            &m,
            &[
                MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2)),
                MirOp::mov(r(&m, 3), r(&m, 4)),
            ],
        );
        let c = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        assert_eq!(c.len(), 1);
    }

    /// Dependent chain cannot compact below its height anywhere.
    #[test]
    fn chains_respect_height_bound() {
        for m in [hm1(), vm1(), bx2(), wm64()] {
            let ops = sel(
                &m,
                &[
                    MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2)),
                    MirOp::alu(AluOp::Add, r(&m, 3), r(&m, 0), r(&m, 2)),
                    MirOp::alu(AluOp::Add, r(&m, 4), r(&m, 3), r(&m, 2)),
                ],
            );
            for algo in Algorithm::ALL {
                let c = compact(&m, &ops, algo, ConflictModel::Coarse);
                assert_eq!(c.len(), 3, "{} on {}", algo.name(), m.name);
            }
        }
    }

    /// On VM-1 everything serialises: op count == MI count.
    #[test]
    fn vertical_machine_never_packs() {
        let m = vm1();
        let ops = sel(
            &m,
            &[
                MirOp::mov(r(&m, 0), r(&m, 1)),
                MirOp::mov(r(&m, 2), r(&m, 3)),
                MirOp::ldi(r(&m, 4), 7),
            ],
        );
        for algo in Algorithm::ALL {
            let c = compact(&m, &ops, algo, ConflictModel::Coarse);
            assert_eq!(c.len(), 3, "{}", algo.name());
        }
    }

    /// Branch-and-bound is never worse than any heuristic.
    #[test]
    fn optimal_dominates_heuristics() {
        let m = hm1();
        // A mix with reordering opportunities: two chains interleaved.
        let ops = sel(
            &m,
            &[
                MirOp::mov(r(&m, 0), r(&m, 1)),
                MirOp::mov(r(&m, 2), r(&m, 0)),
                MirOp::alu(AluOp::Add, r(&m, 3), r(&m, 4), r(&m, 5)),
                MirOp::alu(AluOp::Or, r(&m, 6), r(&m, 3), r(&m, 5)),
                MirOp::mov(r(&m, 7), r(&m, 8)),
                MirOp::shift(mcc_machine::ShiftOp::Shl, r(&m, 9), r(&m, 9), 1),
            ],
        );
        let best = compact(&m, &ops, Algorithm::BranchBound, ConflictModel::Coarse).len();
        for algo in [Algorithm::Linear, Algorithm::CriticalPath, Algorithm::LevelPack] {
            let c = compact(&m, &ops, algo, ConflictModel::Coarse);
            assert!(
                best <= c.len(),
                "optimal {} vs {} {}",
                best,
                algo.name(),
                c.len()
            );
        }
    }

    #[test]
    fn pack_control_merges_when_safe() {
        let m = hm1();
        // Body: one mov. A jmp has no reads: packs into the same MI.
        let ops = sel(&m, &[MirOp::mov(r(&m, 0), r(&m, 1))]);
        let mut c = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        let jmp = BoundOp::new(m.find_template("jmp").unwrap()).with_target(3);
        let idx = pack_control(&m, &mut c.instrs, jmp, ConflictModel::Coarse);
        assert_eq!(idx, 0);
        assert_eq!(c.instrs.len(), 1);
        assert_eq!(c.instrs[0].len(), 2);
    }

    #[test]
    fn pack_control_respects_flag_raw() {
        let m = hm1();
        // Body: add (writes flags). A branch reading flags must wait.
        let ops = sel(&m, &[MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2))]);
        let mut c = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        let br = BoundOp::new(m.find_template("br").unwrap())
            .with_cond(CondKind::Zero)
            .with_target(3);
        let idx = pack_control(&m, &mut c.instrs, br, ConflictModel::Coarse);
        assert_eq!(idx, 1, "branch lands in a fresh MI");
        assert_eq!(c.instrs.len(), 2);
    }

    #[test]
    fn pack_control_never_doubles_control() {
        let m = hm1();
        let mut instrs = vec![MicroInstr::single(
            BoundOp::new(m.find_template("jmp").unwrap()).with_target(1),
        )];
        let halt = BoundOp::new(m.find_template("halt").unwrap());
        let idx = pack_control(&m, &mut instrs, halt, ConflictModel::Coarse);
        assert_eq!(idx, 1);
    }

    #[test]
    fn empty_block_compacts_to_nothing() {
        let m = hm1();
        let c = compact(&m, &[], Algorithm::Linear, ConflictModel::Coarse);
        assert!(c.is_empty());
    }

    /// Memory expansion compacts sensibly: mov MAR / read / mov from MBR is
    /// a 3-high chain.
    #[test]
    fn memory_chain_height() {
        let m = hm1();
        let ops = sel(
            &m,
            &[
                MirOp::mov(Operand::Reg(m.special.mar.unwrap()), r(&m, 0)),
                MirOp::new(Semantic::MemRead),
                MirOp::mov(r(&m, 1), Operand::Reg(m.special.mbr.unwrap())),
            ],
        );
        let c = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn pressure_budget_scales_monotonically_and_floors() {
        assert_eq!(budget_for_pressure(BB_DEFAULT_BUDGET, 0), BB_DEFAULT_BUDGET);
        let mut prev = BB_DEFAULT_BUDGET;
        for tier in 1..=6u8 {
            let b = budget_for_pressure(BB_DEFAULT_BUDGET, tier);
            assert!(b <= prev, "tier {tier} must not raise the budget");
            assert!(b >= BB_MIN_BUDGET);
            prev = b;
        }
        // Deep tiers saturate at the floor rather than reaching zero.
        assert_eq!(budget_for_pressure(BB_DEFAULT_BUDGET, 6), BB_MIN_BUDGET);
        assert_eq!(budget_for_pressure(0, 3), BB_MIN_BUDGET);
    }
}
