//! Exact branch-and-bound microinstruction composition.
//!
//! Enumerates placements of ops (in topological = program order, which is
//! a topological order of the dependence DAG) into microinstructions,
//! pruning with the dependence height bound and the best solution so far.
//! Exponential in the worst case — used only for blocks up to
//! [`BB_MAX_OPS`](crate::BB_MAX_OPS) ops, and as the "minimal sequence"
//! yardstick of experiment E2.

use mcc_machine::{ConflictModel, MachineDesc, MicroInstr};
use mcc_mir::dep::DepGraph;
use mcc_mir::select::SelectedOp;

use crate::{fits, Compaction};

struct Search<'a> {
    m: &'a MachineDesc,
    ops: &'a [SelectedOp],
    g: &'a DepGraph,
    model: ConflictModel,
    /// Remaining dependence height below each op (critical path).
    below: Vec<usize>,
    best_len: usize,
    best: Option<(Vec<MicroInstr>, Vec<usize>)>,
    /// Node budget so pathological blocks cannot hang the compiler.
    budget: u64,
}

impl<'a> Search<'a> {
    fn run(&mut self, j: usize, instrs: &mut Vec<MicroInstr>, placed: &mut Vec<usize>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        if j == self.ops.len() {
            if instrs.len() < self.best_len {
                self.best_len = instrs.len();
                self.best = Some((instrs.clone(), placed.clone()));
            }
            return;
        }
        // Earliest slot from scheduled predecessors; prune when even the
        // earliest placement cannot beat the incumbent.
        let mut e = 0usize;
        for &(i, kind) in self.g.preds(j) {
            e = e.max(placed[i] + kind.min_distance());
        }
        if e + self.below[j] + 1 >= self.best_len {
            return;
        }
        // Ops are tried in *program* order, which need not be schedule
        // order: op j may belong in a slot later than the current frontier
        // (leaving a gap a later op fills). The horizon is therefore
        // bounded only by what can still improve on the incumbent — never
        // by the current schedule length.
        let horizon = self.best_len - self.below[j] - 1;
        let orig_len = instrs.len();
        for t in e..horizon {
            if t >= instrs.len() {
                instrs.resize_with(t + 1, MicroInstr::new);
            }
            for cand in &self.ops[j].candidates {
                if fits(self.m, &instrs[t], cand, self.model) {
                    instrs[t].ops.push(cand.clone());
                    placed.push(t);
                    self.run(j + 1, instrs, placed);
                    placed.pop();
                    instrs[t].ops.pop();
                    // Trying further candidates in the same slot only
                    // matters when candidates differ in conflicts; keep
                    // exploring all of them.
                }
            }
            // Drop any trailing empty slots this iteration created.
            while instrs.len() > orig_len && instrs.last().is_some_and(|mi| mi.is_empty()) {
                instrs.pop();
            }
        }
    }
}

/// How a bounded search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbStatus {
    /// The node budget ran out before the search space was exhausted; the
    /// returned schedule is the best found, not a proven optimum.
    pub exhausted: bool,
}

/// Finds a minimum-length schedule within an explicit node budget,
/// reporting whether the budget ran out.
pub fn branch_and_bound_budgeted(
    m: &MachineDesc,
    ops: &[SelectedOp],
    g: &DepGraph,
    model: ConflictModel,
    budget: u64,
) -> (Compaction, BbStatus) {
    // Start from the critical-path heuristic as the incumbent.
    let seed = crate::compact(m, ops, crate::Algorithm::CriticalPath, model);
    let mut search = Search {
        m,
        ops,
        g,
        model,
        below: g.critical_path(),
        best_len: seed.len(),
        best: None,
        budget,
    };
    let mut instrs = Vec::new();
    let mut placed = Vec::new();
    search.run(0, &mut instrs, &mut placed);
    let status = BbStatus {
        exhausted: search.budget == 0,
    };
    let c = match search.best {
        Some((instrs, mi_of)) => {
            // The search may leave interior empty slots (gaps a later op
            // was expected to fill); `finish` compresses them, which is
            // always legal because no dependence needs a distance > 1.
            crate::finish(m, instrs, mi_of.into_iter().map(Some).collect(), g, model)
        }
        None => seed, // heuristic was already optimal (or budget ran out)
    };
    (c, status)
}

/// Finds a minimum-length schedule (within the default node budget).
pub fn branch_and_bound(
    m: &MachineDesc,
    ops: &[SelectedOp],
    g: &DepGraph,
    model: ConflictModel,
) -> Compaction {
    branch_and_bound_budgeted(m, ops, g, model, crate::BB_DEFAULT_BUDGET).0
}

#[cfg(test)]
mod tests {
    use crate::{compact, Algorithm};
    use mcc_machine::machines::hm1;
    use mcc_machine::{ConflictModel, RegRef};
    use mcc_mir::op::MirOp;
    use mcc_mir::operand::Operand;
    use mcc_mir::select::select_op;
    use mcc_machine::AluOp;

    #[test]
    fn bb_matches_height_on_simple_dag() {
        let m = hm1();
        let r = |i| Operand::Reg(RegRef::new(m.find_file("R").unwrap(), i));
        // Diamond: a; b dep a; c dep a; d dep b,c — height 3, and b,c
        // share the ALU, so optimum is 4 on one ALU... but c can be a mov.
        let mir = [
            MirOp::alu(AluOp::Add, r(0), r(1), r(2)),
            MirOp::alu(AluOp::Or, r(3), r(0), r(2)),
            MirOp::mov(r(4), r(0)),
            MirOp::alu(AluOp::And, r(5), r(3), r(4)),
        ];
        let ops: Vec<_> = mir.iter().map(|o| select_op(&m, o).unwrap()).collect();
        let c = compact(&m, &ops, Algorithm::BranchBound, ConflictModel::Fine);
        assert_eq!(c.len(), 3, "add | or+mov | and");
    }

    #[test]
    fn bb_equals_heuristic_when_no_slack() {
        let m = hm1();
        let r = |i| Operand::Reg(RegRef::new(m.find_file("R").unwrap(), i));
        let mir = [
            MirOp::mov(r(0), r(1)),
            MirOp::mov(r(2), r(0)),
            MirOp::mov(r(3), r(2)),
        ];
        let ops: Vec<_> = mir.iter().map(|o| select_op(&m, o).unwrap()).collect();
        let bb = compact(&m, &ops, Algorithm::BranchBound, ConflictModel::Coarse);
        let cp = compact(&m, &ops, Algorithm::CriticalPath, ConflictModel::Coarse);
        assert_eq!(bb.len(), cp.len());
        assert_eq!(bb.len(), 3);
    }
}
