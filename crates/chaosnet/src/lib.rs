//! Deterministic TCP fault-injection proxy for the mcc wire path.
//!
//! The proxy sits between a line-protocol client and its upstream (client↔router
//! or router↔shard) and injects network faults on a schedule that is a **pure
//! function of the seed**: the n-th request frame through the proxy either
//! passes clean or suffers exactly one fault, decided by `fault_for(seed, plan, n)`
//! with no dependence on wall-clock time, thread interleaving, or OS buffering.
//!
//! The fault menu covers every failure class the wire hardening must survive:
//! resets before/during/after the request write, torn and corrupted reply
//! frames, latency spikes, full stalls, slow-loris trickle delivery, duplicated
//! delivery, and black-holes (reply read and discarded). Faults apply per
//! *request frame*, not per connection, so a pooled connection that carries
//! many frames sees the same schedule a reconnect-per-frame client would.
//!
//! The proxy speaks both wire dialects. It sniffs the first client byte: the
//! protocol-v2 magic selects a length-prefixed binary relay (one unit = any
//! bait newlines plus one whole frame, found via `proto2::frame_len`), anything
//! else selects the newline relay. The same seeded schedule drives both, so
//! every fault kind lands on binary frames too — `ResetMidFrame` tears the
//! length prefix, `CorruptByte`/`CorruptMulti` may hit the varints or the
//! checksum, and `Truncate` cuts a compressed payload short.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mcc_harness::splitmix64;
use mcc_serve::proto::MAX_FRAME_BYTES;
use mcc_serve::proto2;
use mcc_serve::tcp::{read_frame_into, write_frame, FrameRead};

/// Every fault kind the proxy can inject. The scheduler guarantees each kind
/// appears exactly once per cycle of `KIND_COUNT` faulted frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close both directions before forwarding any request bytes upstream.
    ResetPreWrite,
    /// Forward roughly half the request frame, then close. Upstream sees a torn frame.
    ResetMidFrame,
    /// Forward the whole request, read the upstream reply (the server has
    /// executed), then close without relaying. The retry-after-execute case.
    ResetPostWrite,
    /// Relay only the first half of the reply, then close: a truncated frame.
    Truncate,
    /// Flip one byte of the reply at a seeded position before relaying.
    CorruptByte,
    /// Flip several bytes of the reply at seeded positions before relaying.
    CorruptMulti,
    /// Delay the reply by `plan.delay` before relaying it intact.
    Delay,
    /// Hold the reply for `plan.stall` (longer than any sane read deadline),
    /// then deliver it late on the same connection.
    Stall,
    /// Relay the reply one byte at a time with a pause between bytes.
    Trickle,
    /// Forward the request twice; relay both replies. Duplicate delivery.
    Duplicate,
    /// Read the reply, hold for `plan.hold`, then close without relaying.
    BlackHole,
}

/// Number of distinct fault kinds; one full cycle injects each exactly once.
pub const KIND_COUNT: u64 = 11;

const KINDS: [Fault; KIND_COUNT as usize] = [
    Fault::ResetPreWrite,
    Fault::ResetMidFrame,
    Fault::ResetPostWrite,
    Fault::Truncate,
    Fault::CorruptByte,
    Fault::CorruptMulti,
    Fault::Delay,
    Fault::Stall,
    Fault::Trickle,
    Fault::Duplicate,
    Fault::BlackHole,
];

impl Fault {
    /// Stable lowercase name used in schedules, stats, and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::ResetPreWrite => "reset-pre-write",
            Fault::ResetMidFrame => "reset-mid-frame",
            Fault::ResetPostWrite => "reset-post-write",
            Fault::Truncate => "truncate",
            Fault::CorruptByte => "corrupt-byte",
            Fault::CorruptMulti => "corrupt-multi",
            Fault::Delay => "delay",
            Fault::Stall => "stall",
            Fault::Trickle => "trickle",
            Fault::Duplicate => "duplicate",
            Fault::BlackHole => "black-hole",
        }
    }

    fn index(&self) -> usize {
        KINDS.iter().position(|k| k == self).unwrap()
    }
}

/// Tunable shape of the fault schedule. `warm` leading frames always pass
/// clean (so connection setup and version negotiation happen on a quiet wire),
/// then every `stride`-th frame is faulted.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Number of leading frames that are never faulted.
    pub warm: u64,
    /// After the warm window, frame n is faulted iff (n - warm) % stride == 0.
    pub stride: u64,
    /// Added latency for `Fault::Delay`.
    pub delay: Duration,
    /// Hold time for `Fault::Stall` — pick it longer than the client read deadline.
    pub stall: Duration,
    /// Hold time for `Fault::BlackHole` before the connection is dropped.
    pub hold: Duration,
    /// Pause between bytes for `Fault::Trickle`.
    pub trickle_pause: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            warm: 8,
            stride: 3,
            delay: Duration::from_millis(40),
            stall: Duration::from_millis(600),
            hold: Duration::from_millis(600),
            trickle_pause: Duration::from_millis(2),
        }
    }
}

/// Seeded permutation of the fault kinds for one cycle. Fisher–Yates driven by
/// splitmix64 so the order varies with the seed and cycle index but is fully
/// reproducible.
fn kind_permutation(seed: u64, cycle: u64) -> [Fault; KIND_COUNT as usize] {
    let mut kinds = KINDS;
    let mut s = splitmix64(seed ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = kinds.len();
    for i in (1..n).rev() {
        s = splitmix64(s);
        let j = (s % (i as u64 + 1)) as usize;
        kinds.swap(i, j);
    }
    kinds
}

/// The fault (if any) injected on the n-th request frame (0-based) through a
/// proxy with this seed and plan. Pure function: same (seed, plan, n) → same
/// answer on every run, machine, and thread.
pub fn fault_for(seed: u64, plan: &FaultPlan, n: u64) -> Option<Fault> {
    if n < plan.warm {
        return None;
    }
    let k = n - plan.warm;
    if plan.stride == 0 || !k.is_multiple_of(plan.stride) {
        return None;
    }
    let slot = k / plan.stride;
    let cycle = slot / KIND_COUNT;
    let perm = kind_permutation(seed, cycle);
    Some(perm[(slot % KIND_COUNT) as usize])
}

/// Render the first full fault cycle of the schedule as stable text — printed
/// by benches so stdout is a pure function of the seed.
pub fn schedule_text(name: &str, seed: u64, plan: &FaultPlan) -> String {
    let mut out = format!(
        "chaos schedule {name}: seed={seed} warm={} stride={} cycle={}\n",
        plan.warm, plan.stride, KIND_COUNT
    );
    let perm = kind_permutation(seed, 0);
    for (i, kind) in perm.iter().enumerate() {
        let frame = plan.warm + (i as u64) * plan.stride;
        out.push_str(&format!("chaos schedule {name}:   frame {frame} -> {}\n", kind.name()));
    }
    out
}

type Schedule = Box<dyn Fn(u64) -> Option<Fault> + Send + Sync>;

struct Shared {
    upstream: String,
    plan: FaultPlan,
    schedule: Schedule,
    seed: u64,
    frames: AtomicU64,
    injected: [AtomicU64; KIND_COUNT as usize],
    stop: AtomicBool,
}

/// A running chaos proxy. Accepts connections on a local listener and relays
/// newline-delimited frames to `upstream`, injecting scheduled faults.
pub struct ChaosProxy {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

const ACCEPT_TICK: Duration = Duration::from_millis(25);

impl ChaosProxy {
    /// Start with the standard seeded schedule.
    pub fn start(listener: TcpListener, upstream: &str, seed: u64, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        let p = plan;
        Self::start_with(listener, upstream, Box::new(move |n| fault_for(seed, &p, n)), seed, plan)
    }

    /// Start with an arbitrary schedule closure — used by tests that need one
    /// specific fault on one specific frame.
    pub fn start_with(
        listener: TcpListener,
        upstream: &str,
        schedule: Schedule,
        seed: u64,
        plan: FaultPlan,
    ) -> std::io::Result<ChaosProxy> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            upstream: upstream.to_string(),
            plan,
            schedule,
            seed,
            frames: AtomicU64::new(0),
            injected: Default::default(),
            stop: AtomicBool::new(false),
        });
        let sh = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !sh.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let csh = Arc::clone(&sh);
                        conns.push(thread::spawn(move || relay_connection(stream, csh)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_TICK);
                    }
                    Err(_) => thread::sleep(ACCEPT_TICK),
                }
                conns.retain(|h| !h.is_finished());
            }
            for h in conns {
                let _ = h.join();
            }
        });
        Ok(ChaosProxy { addr, shared, accept: Some(accept) })
    }

    /// Address clients should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Total request frames seen so far.
    pub fn frames(&self) -> u64 {
        self.shared.frames.load(Ordering::Relaxed)
    }

    /// Injection counts per fault kind, as (name, count) pairs.
    pub fn injected(&self) -> Vec<(&'static str, u64)> {
        KINDS
            .iter()
            .map(|k| (k.name(), self.shared.injected[k.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Seed this proxy was started with.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// Stop accepting and wait for the accept loop (in-flight relays are joined).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Which framing discipline a relayed connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    /// Newline-delimited text frames (bare JSON or `@mcc1` envelopes).
    V1,
    /// Protocol-v2 length-prefixed binary frames.
    V2,
}

/// One upstream connection plus the byte accumulator that survives across
/// reply reads — a single `fill_buf` may deliver bytes of the *next* reply
/// (e.g. both replies to a duplicated request), and those must not be lost.
struct Up {
    w: TcpStream,
    r: BufReader<TcpStream>,
    acc: Vec<u8>,
}

/// Relay one downstream connection. The first client byte picks the wire
/// dialect; each request unit read from the client is assigned the next global
/// frame number, the schedule decides its fault, and the relay performs the
/// fault's exact semantics. A connection-fatal fault (reset/truncate/
/// black-hole) ends this relay; the client reconnects and later frames
/// continue the global schedule.
fn relay_connection(client: TcpStream, sh: Arc<Shared>) {
    let _ = client.set_nodelay(true);
    let _ = client.set_read_timeout(Some(Duration::from_millis(250)));
    let mut client_w = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut client_r = BufReader::new(client);

    // Sniff the first byte without consuming it: the v2 magic never starts a
    // JSON or `@mcc1` line, so one byte decides the dialect for good.
    let wire = loop {
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        match client_r.fill_buf() {
            Ok([]) => return,
            Ok(chunk) => {
                break if chunk[0] == proto2::MAGIC[0] { Wire::V2 } else { Wire::V1 };
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    };

    // Partial request bytes survive the short stop-flag polling timeout.
    let mut partial = Vec::new();
    let mut up: Option<Up> = None;

    loop {
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        let unit: Vec<u8> = match wire {
            Wire::V1 => match read_frame_into(&mut client_r, &mut partial, MAX_FRAME_BYTES) {
                Ok(FrameRead::Frame(f)) => f.into_bytes(),
                Ok(FrameRead::TimedOut) => continue,
                Ok(FrameRead::Eof) | Ok(FrameRead::Oversized) | Err(_) => return,
            },
            Wire::V2 => match read_unit_v2(&mut client_r, &mut partial, &sh.stop) {
                Some(u) => u,
                None => return,
            },
        };
        let n = sh.frames.fetch_add(1, Ordering::Relaxed);
        let fault = (sh.schedule)(n);
        if let Some(kind) = fault {
            sh.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        }

        // (Re)establish the upstream connection for this frame if needed.
        if up.is_none() {
            match TcpStream::connect(&sh.upstream) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let r = match s.try_clone() {
                        Ok(c) => BufReader::new(c),
                        Err(_) => return,
                    };
                    up = Some(Up { w: s, r, acc: Vec::new() });
                }
                Err(_) => return,
            }
        }
        let u = up.as_mut().unwrap();

        let verdict = relay_unit(&unit, fault, &sh.plan, u, &mut client_w, sh.seed, n, wire);
        match verdict {
            RelayOutcome::Continue => {}
            RelayOutcome::CloseBoth => {
                if let Some(u) = up.take() {
                    let _ = u.w.shutdown(Shutdown::Both);
                }
                return;
            }
        }
    }
}

/// Read one v2 request unit from the client: any leading bait newlines (the
/// handshake probe a v2 client sends to smoke out v1 peers) plus one whole
/// length-prefixed frame. The newlines stay glued to their frame so the
/// upstream sees byte-for-byte what the client wrote.
fn read_unit_v2(
    r: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    stop: &AtomicBool,
) -> Option<Vec<u8>> {
    loop {
        let nl = acc.iter().take_while(|b| **b == b'\n').count();
        if acc.len() > nl {
            match proto2::frame_len(&acc[nl..]) {
                Ok(Some(total)) if acc.len() >= nl + total => {
                    return Some(acc.drain(..nl + total).collect());
                }
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        if stop.load(Ordering::Relaxed) {
            return None;
        }
        match r.fill_buf() {
            Ok([]) => return None,
            Ok(chunk) => {
                let take = chunk.len();
                acc.extend_from_slice(chunk);
                r.consume(take);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return None,
        }
    }
}

enum RelayOutcome {
    /// Keep both connections; next frame reuses the upstream.
    Continue,
    /// Tear down the client connection (and upstream) now. The client's
    /// reconnect gets a fresh upstream connection from a fresh relay.
    CloseBoth,
}

/// Read one reply unit from upstream with a generous deadline — the proxy
/// itself must never black-hole by accident. On the v1 wire a unit is one
/// newline-terminated line; on the v2 wire it is one length-prefixed frame
/// (with a bare-line fallback so a v1-only upstream's downgrade answer still
/// relays to the probing client).
fn read_reply(wire: Wire, u: &mut Up) -> Option<Vec<u8>> {
    let deadline = Duration::from_secs(30);
    let _ = u.r.get_ref().set_read_timeout(Some(Duration::from_millis(100)));
    let start = std::time::Instant::now();
    if wire == Wire::V1 {
        let mut partial = Vec::new();
        loop {
            match read_frame_into(&mut u.r, &mut partial, MAX_FRAME_BYTES) {
                Ok(FrameRead::Frame(f)) => return Some(f.into_bytes()),
                Ok(FrameRead::TimedOut) => {
                    if start.elapsed() > deadline {
                        return None;
                    }
                }
                Ok(FrameRead::Eof) | Ok(FrameRead::Oversized) | Err(_) => return None,
            }
        }
    }
    // v2: accumulate into the connection's persistent buffer and drain exactly
    // one frame, so bytes of a second in-flight reply are kept for the next call.
    loop {
        if !u.acc.is_empty() {
            if u.acc[0] == proto2::MAGIC[0] {
                match proto2::frame_len(&u.acc) {
                    Ok(Some(total)) if u.acc.len() >= total => {
                        return Some(u.acc.drain(..total).collect());
                    }
                    Ok(_) => {}
                    Err(_) => return None,
                }
            } else if let Some(i) = u.acc.iter().position(|b| *b == b'\n') {
                // A v1-only upstream answered the binary hello with a bare line.
                return Some(u.acc.drain(..=i).collect());
            } else if u.acc.len() > MAX_FRAME_BYTES {
                return None;
            }
        }
        if start.elapsed() > deadline {
            return None;
        }
        match u.r.fill_buf() {
            Ok([]) => return None,
            Ok(chunk) => {
                let take = chunk.len();
                u.acc.extend_from_slice(chunk);
                u.r.consume(take);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn relay_unit(
    unit: &[u8],
    fault: Option<Fault>,
    plan: &FaultPlan,
    u: &mut Up,
    cw: &mut TcpStream,
    seed: u64,
    n: u64,
    wire: Wire,
) -> RelayOutcome {
    match fault {
        None => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    if write_frame(cw, &reply).is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::ResetPreWrite) => RelayOutcome::CloseBoth,
        Some(Fault::ResetMidFrame) => {
            // Half the unit, then a hard close: on the v2 wire the cut can
            // land inside the header — a torn length prefix.
            let half = unit.len() / 2;
            let _ = u.w.write_all(&unit[..half]);
            let _ = u.w.flush();
            let _ = u.w.shutdown(Shutdown::Both);
            RelayOutcome::CloseBoth
        }
        Some(Fault::ResetPostWrite) => {
            // Server executes; the reply dies with the connection.
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            let _ = read_reply(wire, u);
            RelayOutcome::CloseBoth
        }
        Some(Fault::Truncate) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            if let Some(reply) = read_reply(wire, u) {
                let half = reply.len() / 2;
                let _ = cw.write_all(&reply[..half]);
                let _ = cw.flush();
            }
            RelayOutcome::CloseBoth
        }
        Some(Fault::CorruptByte) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    let corrupted = corrupt(&reply, seed, n, 1, wire == Wire::V1);
                    if cw.write_all(&corrupted).is_err() || cw.flush().is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::CorruptMulti) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    let corrupted = corrupt(&reply, seed, n, 4, wire == Wire::V1);
                    if cw.write_all(&corrupted).is_err() || cw.flush().is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Delay) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    thread::sleep(plan.delay);
                    if write_frame(cw, &reply).is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Stall) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    // Longer than the client's read deadline: the client gives
                    // up and retries elsewhere; the late reply lands on a
                    // connection the client already abandoned.
                    thread::sleep(plan.stall);
                    let _ = write_frame(cw, &reply);
                    RelayOutcome::CloseBoth
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Trickle) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(wire, u) {
                Some(reply) => {
                    for b in &reply {
                        if cw.write_all(std::slice::from_ref(b)).is_err() {
                            return RelayOutcome::CloseBoth;
                        }
                        let _ = cw.flush();
                        thread::sleep(plan.trickle_pause);
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Duplicate) => {
            // Forward the request twice; relay both replies. With dedup on the
            // server the second execution must be a replay, and the client must
            // cope with a stale duplicate frame arriving after the real one.
            if write_frame(&mut u.w, unit).is_err() || write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            for _ in 0..2 {
                match read_reply(wire, u) {
                    Some(reply) => {
                        if write_frame(cw, &reply).is_err() {
                            return RelayOutcome::CloseBoth;
                        }
                    }
                    None => return RelayOutcome::CloseBoth,
                }
            }
            RelayOutcome::Continue
        }
        Some(Fault::BlackHole) => {
            if write_frame(&mut u.w, unit).is_err() {
                return RelayOutcome::CloseBoth;
            }
            let _ = read_reply(wire, u);
            thread::sleep(plan.hold);
            RelayOutcome::CloseBoth
        }
    }
}

/// Flip `count` bytes of the frame at seeded positions. With
/// `preserve_newline` (the v1 wire) the trailing newline is never touched and
/// no byte is flipped *to* a newline — framing survives, content is damaged.
/// On the v2 wire any byte is fair game: a flip in the varint lengths, the
/// magic, or the checksum is exactly the corruption the binary decoder must
/// refuse.
fn corrupt(frame: &[u8], seed: u64, n: u64, count: usize, preserve_newline: bool) -> Vec<u8> {
    let mut bytes = frame.to_vec();
    let body_len = if preserve_newline && bytes.ends_with(b"\n") {
        bytes.len() - 1
    } else {
        bytes.len()
    };
    if body_len == 0 {
        return bytes;
    }
    let mut s = splitmix64(seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
    for _ in 0..count {
        s = splitmix64(s);
        let pos = (s % body_len as u64) as usize;
        let mut x = ((s >> 32) & 0xff) as u8;
        // xor must change the byte and (on v1) must not yield '\n'
        while x == 0 || (preserve_newline && bytes[pos] ^ x == b'\n') {
            x = x.wrapping_add(1);
        }
        bytes[pos] ^= x;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_and_covers_every_kind_each_cycle() {
        let plan = FaultPlan::default();
        for seed in [1u64, 42, 0xdead_beef] {
            // Pure: two evaluations agree.
            for n in 0..200 {
                assert_eq!(fault_for(seed, &plan, n), fault_for(seed, &plan, n));
            }
            // Warm window is clean.
            for n in 0..plan.warm {
                assert_eq!(fault_for(seed, &plan, n), None);
            }
            // One full cycle covers all kinds exactly once.
            let mut seen = Vec::new();
            let mut n = plan.warm;
            while seen.len() < KIND_COUNT as usize {
                if let Some(f) = fault_for(seed, &plan, n) {
                    seen.push(f);
                }
                n += 1;
            }
            for k in KINDS {
                assert_eq!(seen.iter().filter(|f| **f == k).count(), 1, "kind {k:?} seed {seed}");
            }
        }
    }

    #[test]
    fn schedule_text_is_stable_per_seed() {
        let plan = FaultPlan::default();
        let a = schedule_text("front", 7, &plan);
        let b = schedule_text("front", 7, &plan);
        assert_eq!(a, b);
        assert_ne!(a, schedule_text("front", 8, &plan));
        assert_eq!(a.lines().count(), 1 + KIND_COUNT as usize);
    }

    #[test]
    fn corrupt_changes_content_but_not_framing() {
        let frame = "{\"id\":\"x\",\"code\":200}\n";
        for n in 0..50u64 {
            let out = corrupt(frame.as_bytes(), 99, n, 1, true);
            assert_eq!(out.len(), frame.len());
            assert_eq!(out.last(), Some(&b'\n'));
            assert_eq!(out.iter().filter(|b| **b == b'\n').count(), 1);
            assert_ne!(&out[..], frame.as_bytes());
        }
    }

    #[test]
    fn corrupt_on_the_binary_wire_may_hit_any_byte_but_always_changes_one() {
        let mut frame = Vec::new();
        proto2::encode_frame(&mut frame, proto2::FrameType::Response, "cid", 7, "{\"code\":200}", None);
        for n in 0..50u64 {
            let out = corrupt(&frame, 99, n, 1, false);
            assert_eq!(out.len(), frame.len());
            assert_ne!(out, frame);
        }
    }

    /// A minimal v2 upstream: acks hellos, echoes request bodies, counts
    /// requests. No dedup — relay-level duplication is visible as two hits.
    fn spawn_v2_echo() -> (String, Arc<AtomicU64>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let requests = Arc::new(AtomicU64::new(0));
        let rq = Arc::clone(&requests);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(s) = stream else { break };
                let rq = Arc::clone(&rq);
                thread::spawn(move || {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut w = s.try_clone().unwrap();
                    let mut r = BufReader::new(s);
                    let mut acc: Vec<u8> = Vec::new();
                    let mut out = Vec::new();
                    loop {
                        let nl = acc.iter().take_while(|b| **b == b'\n').count();
                        acc.drain(..nl);
                        if !acc.is_empty() {
                            match proto2::frame_len(&acc) {
                                Ok(Some(total)) if acc.len() >= total => {
                                    let fb: Vec<u8> = acc.drain(..total).collect();
                                    let Ok((f, _)) = proto2::decode_frame(&fb) else { return };
                                    out.clear();
                                    match f.ftype {
                                        proto2::FrameType::Hello => {
                                            let want = proto2::parse_hello(&f.body)
                                                .unwrap_or_else(proto2::Caps::off);
                                            let granted = proto2::negotiate(&want);
                                            proto2::encode_frame(
                                                &mut out,
                                                proto2::FrameType::HelloAck,
                                                "",
                                                0,
                                                &proto2::hello_body(&granted),
                                                None,
                                            );
                                        }
                                        proto2::FrameType::Request => {
                                            rq.fetch_add(1, Ordering::Relaxed);
                                            proto2::encode_frame(
                                                &mut out,
                                                proto2::FrameType::Response,
                                                &f.cid,
                                                f.rid,
                                                &f.body,
                                                None,
                                            );
                                        }
                                        _ => return,
                                    }
                                    if write_frame(&mut w, &out).is_err() {
                                        return;
                                    }
                                    continue;
                                }
                                Ok(_) => {}
                                Err(_) => return,
                            }
                        }
                        match r.fill_buf() {
                            Ok([]) => return,
                            Ok(chunk) => {
                                let take = chunk.len();
                                acc.extend_from_slice(chunk);
                                r.consume(take);
                            }
                            Err(_) => return,
                        }
                    }
                });
            }
        });
        (addr, requests)
    }

    fn v2_connect(addr: &str) -> proto2::Client {
        let s = TcpStream::connect(addr).unwrap();
        match proto2::Client::handshake(
            s,
            Some(Duration::from_secs(5)),
            &proto2::Caps { compress: true, window: 4 },
        )
        .unwrap()
        {
            proto2::Handshake::V2(c) => c,
            proto2::Handshake::V1Peer => panic!("upstream should speak v2"),
        }
    }

    #[test]
    fn v2_clean_relay_preserves_binary_frames_end_to_end() {
        let (up_addr, reqs) = spawn_v2_echo();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let plan = FaultPlan { warm: 100, ..FaultPlan::default() };
        let mut proxy = ChaosProxy::start(listener, &up_addr, 5, plan).unwrap();
        let mut c = v2_connect(proxy.addr());
        let body = c.call("t", 1, "{\"op\":\"ping\"}").unwrap();
        assert_eq!(body, "{\"op\":\"ping\"}\n");
        // Hello and request each took one schedule slot.
        assert_eq!(proxy.frames(), 2);
        assert_eq!(reqs.load(Ordering::Relaxed), 1);
        proxy.stop();
    }

    #[test]
    fn v2_corrupt_reply_is_refused_by_the_client() {
        let (up_addr, _reqs) = spawn_v2_echo();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        // Frame 0 is the hello, frame 1 the first request (clean), frame 2
        // the second request — its reply gets one flipped byte.
        let mut proxy = ChaosProxy::start_with(
            listener,
            &up_addr,
            Box::new(|n| (n == 2).then_some(Fault::CorruptByte)),
            7,
            FaultPlan::default(),
        )
        .unwrap();
        let mut c = v2_connect(proxy.addr());
        assert_eq!(c.call("t", 1, "{\"op\":\"ping\"}").unwrap(), "{\"op\":\"ping\"}\n");
        let err = c.call("t", 2, "{\"op\":\"ping\"}").unwrap_err();
        assert!(!err.is_empty(), "corrupted binary reply must surface an error");
        proxy.stop();
    }

    #[test]
    fn v2_duplicate_forwards_twice_and_the_stale_reply_is_skipped() {
        let (up_addr, reqs) = spawn_v2_echo();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut proxy = ChaosProxy::start_with(
            listener,
            &up_addr,
            Box::new(|n| (n == 1).then_some(Fault::Duplicate)),
            7,
            FaultPlan::default(),
        )
        .unwrap();
        let mut c = v2_connect(proxy.addr());
        // The duplicated request reaches the (dedup-free) echo twice; the
        // client reads its reply once and must skip the stale duplicate when
        // the next call comes around.
        assert_eq!(c.call("t", 1, "{\"op\":\"a\"}").unwrap(), "{\"op\":\"a\"}\n");
        assert_eq!(c.call("t", 2, "{\"op\":\"b\"}").unwrap(), "{\"op\":\"b\"}\n");
        assert_eq!(reqs.load(Ordering::Relaxed), 3, "request 1 relayed twice, request 2 once");
        proxy.stop();
    }

    #[test]
    fn clean_relay_passes_frames_through() {
        use std::io::BufRead;
        // Echo upstream: replies with the line it received, uppercased op field intact.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        thread::spawn(move || {
            if let Ok((s, _)) = upstream.accept() {
                let mut r = BufReader::new(s.try_clone().unwrap());
                let mut w = s;
                let mut line = String::new();
                while r.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    let _ = write_frame(&mut w, line.as_bytes());
                    line.clear();
                }
            }
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let plan = FaultPlan { warm: 100, ..FaultPlan::default() };
        let mut proxy = ChaosProxy::start(listener, &up_addr, 5, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut c, b"{\"op\":\"ping\"}\n").unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        assert_eq!(reply, "{\"op\":\"ping\"}\n");
        assert_eq!(proxy.frames(), 1);
        proxy.stop();
    }
}
