//! Deterministic TCP fault-injection proxy for the mcc wire path.
//!
//! The proxy sits between a line-protocol client and its upstream (client↔router
//! or router↔shard) and injects network faults on a schedule that is a **pure
//! function of the seed**: the n-th request frame through the proxy either
//! passes clean or suffers exactly one fault, decided by `fault_for(seed, plan, n)`
//! with no dependence on wall-clock time, thread interleaving, or OS buffering.
//!
//! The fault menu covers every failure class the wire hardening must survive:
//! resets before/during/after the request write, torn and corrupted reply
//! frames, latency spikes, full stalls, slow-loris trickle delivery, duplicated
//! delivery, and black-holes (reply read and discarded). Faults apply per
//! *request frame*, not per connection, so a pooled connection that carries
//! many frames sees the same schedule a reconnect-per-frame client would.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mcc_harness::splitmix64;
use mcc_serve::proto::MAX_FRAME_BYTES;
use mcc_serve::tcp::{read_frame_into, write_frame, FrameRead};

/// Every fault kind the proxy can inject. The scheduler guarantees each kind
/// appears exactly once per cycle of `KIND_COUNT` faulted frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close both directions before forwarding any request bytes upstream.
    ResetPreWrite,
    /// Forward roughly half the request frame, then close. Upstream sees a torn frame.
    ResetMidFrame,
    /// Forward the whole request, read the upstream reply (the server has
    /// executed), then close without relaying. The retry-after-execute case.
    ResetPostWrite,
    /// Relay only the first half of the reply, then close: a truncated frame.
    Truncate,
    /// Flip one byte of the reply at a seeded position before relaying.
    CorruptByte,
    /// Flip several bytes of the reply at seeded positions before relaying.
    CorruptMulti,
    /// Delay the reply by `plan.delay` before relaying it intact.
    Delay,
    /// Hold the reply for `plan.stall` (longer than any sane read deadline),
    /// then deliver it late on the same connection.
    Stall,
    /// Relay the reply one byte at a time with a pause between bytes.
    Trickle,
    /// Forward the request twice; relay both replies. Duplicate delivery.
    Duplicate,
    /// Read the reply, hold for `plan.hold`, then close without relaying.
    BlackHole,
}

/// Number of distinct fault kinds; one full cycle injects each exactly once.
pub const KIND_COUNT: u64 = 11;

const KINDS: [Fault; KIND_COUNT as usize] = [
    Fault::ResetPreWrite,
    Fault::ResetMidFrame,
    Fault::ResetPostWrite,
    Fault::Truncate,
    Fault::CorruptByte,
    Fault::CorruptMulti,
    Fault::Delay,
    Fault::Stall,
    Fault::Trickle,
    Fault::Duplicate,
    Fault::BlackHole,
];

impl Fault {
    /// Stable lowercase name used in schedules, stats, and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::ResetPreWrite => "reset-pre-write",
            Fault::ResetMidFrame => "reset-mid-frame",
            Fault::ResetPostWrite => "reset-post-write",
            Fault::Truncate => "truncate",
            Fault::CorruptByte => "corrupt-byte",
            Fault::CorruptMulti => "corrupt-multi",
            Fault::Delay => "delay",
            Fault::Stall => "stall",
            Fault::Trickle => "trickle",
            Fault::Duplicate => "duplicate",
            Fault::BlackHole => "black-hole",
        }
    }

    fn index(&self) -> usize {
        KINDS.iter().position(|k| k == self).unwrap()
    }
}

/// Tunable shape of the fault schedule. `warm` leading frames always pass
/// clean (so connection setup and version negotiation happen on a quiet wire),
/// then every `stride`-th frame is faulted.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Number of leading frames that are never faulted.
    pub warm: u64,
    /// After the warm window, frame n is faulted iff (n - warm) % stride == 0.
    pub stride: u64,
    /// Added latency for `Fault::Delay`.
    pub delay: Duration,
    /// Hold time for `Fault::Stall` — pick it longer than the client read deadline.
    pub stall: Duration,
    /// Hold time for `Fault::BlackHole` before the connection is dropped.
    pub hold: Duration,
    /// Pause between bytes for `Fault::Trickle`.
    pub trickle_pause: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            warm: 8,
            stride: 3,
            delay: Duration::from_millis(40),
            stall: Duration::from_millis(600),
            hold: Duration::from_millis(600),
            trickle_pause: Duration::from_millis(2),
        }
    }
}

/// Seeded permutation of the fault kinds for one cycle. Fisher–Yates driven by
/// splitmix64 so the order varies with the seed and cycle index but is fully
/// reproducible.
fn kind_permutation(seed: u64, cycle: u64) -> [Fault; KIND_COUNT as usize] {
    let mut kinds = KINDS;
    let mut s = splitmix64(seed ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = kinds.len();
    for i in (1..n).rev() {
        s = splitmix64(s);
        let j = (s % (i as u64 + 1)) as usize;
        kinds.swap(i, j);
    }
    kinds
}

/// The fault (if any) injected on the n-th request frame (0-based) through a
/// proxy with this seed and plan. Pure function: same (seed, plan, n) → same
/// answer on every run, machine, and thread.
pub fn fault_for(seed: u64, plan: &FaultPlan, n: u64) -> Option<Fault> {
    if n < plan.warm {
        return None;
    }
    let k = n - plan.warm;
    if plan.stride == 0 || !k.is_multiple_of(plan.stride) {
        return None;
    }
    let slot = k / plan.stride;
    let cycle = slot / KIND_COUNT;
    let perm = kind_permutation(seed, cycle);
    Some(perm[(slot % KIND_COUNT) as usize])
}

/// Render the first full fault cycle of the schedule as stable text — printed
/// by benches so stdout is a pure function of the seed.
pub fn schedule_text(name: &str, seed: u64, plan: &FaultPlan) -> String {
    let mut out = format!(
        "chaos schedule {name}: seed={seed} warm={} stride={} cycle={}\n",
        plan.warm, plan.stride, KIND_COUNT
    );
    let perm = kind_permutation(seed, 0);
    for (i, kind) in perm.iter().enumerate() {
        let frame = plan.warm + (i as u64) * plan.stride;
        out.push_str(&format!("chaos schedule {name}:   frame {frame} -> {}\n", kind.name()));
    }
    out
}

type Schedule = Box<dyn Fn(u64) -> Option<Fault> + Send + Sync>;

struct Shared {
    upstream: String,
    plan: FaultPlan,
    schedule: Schedule,
    seed: u64,
    frames: AtomicU64,
    injected: [AtomicU64; KIND_COUNT as usize],
    stop: AtomicBool,
}

/// A running chaos proxy. Accepts connections on a local listener and relays
/// newline-delimited frames to `upstream`, injecting scheduled faults.
pub struct ChaosProxy {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

const ACCEPT_TICK: Duration = Duration::from_millis(25);

impl ChaosProxy {
    /// Start with the standard seeded schedule.
    pub fn start(listener: TcpListener, upstream: &str, seed: u64, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        let p = plan;
        Self::start_with(listener, upstream, Box::new(move |n| fault_for(seed, &p, n)), seed, plan)
    }

    /// Start with an arbitrary schedule closure — used by tests that need one
    /// specific fault on one specific frame.
    pub fn start_with(
        listener: TcpListener,
        upstream: &str,
        schedule: Schedule,
        seed: u64,
        plan: FaultPlan,
    ) -> std::io::Result<ChaosProxy> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            upstream: upstream.to_string(),
            plan,
            schedule,
            seed,
            frames: AtomicU64::new(0),
            injected: Default::default(),
            stop: AtomicBool::new(false),
        });
        let sh = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !sh.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let csh = Arc::clone(&sh);
                        conns.push(thread::spawn(move || relay_connection(stream, csh)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_TICK);
                    }
                    Err(_) => thread::sleep(ACCEPT_TICK),
                }
                conns.retain(|h| !h.is_finished());
            }
            for h in conns {
                let _ = h.join();
            }
        });
        Ok(ChaosProxy { addr, shared, accept: Some(accept) })
    }

    /// Address clients should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Total request frames seen so far.
    pub fn frames(&self) -> u64 {
        self.shared.frames.load(Ordering::Relaxed)
    }

    /// Injection counts per fault kind, as (name, count) pairs.
    pub fn injected(&self) -> Vec<(&'static str, u64)> {
        KINDS
            .iter()
            .map(|k| (k.name(), self.shared.injected[k.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Seed this proxy was started with.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// Stop accepting and wait for the accept loop (in-flight relays are joined).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Relay one downstream connection. Each request frame read from the client is
/// assigned the next global frame number, the schedule decides its fault, and
/// the relay performs the fault's exact semantics. A connection-fatal fault
/// (reset/truncate/black-hole) ends this relay; the client reconnects and later
/// frames continue the global schedule.
fn relay_connection(client: TcpStream, sh: Arc<Shared>) {
    let _ = client.set_nodelay(true);
    let _ = client.set_read_timeout(Some(Duration::from_millis(250)));
    let mut client_w = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut client_r = BufReader::new(client);
    // Partial request bytes survive the short stop-flag polling timeout.
    let mut partial = Vec::new();

    let mut up: Option<(TcpStream, BufReader<TcpStream>)> = None;

    loop {
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        let frame = match read_frame_into(&mut client_r, &mut partial, MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::TimedOut) => continue,
            Ok(FrameRead::Eof) | Ok(FrameRead::Oversized) | Err(_) => return,
        };
        let n = sh.frames.fetch_add(1, Ordering::Relaxed);
        let fault = (sh.schedule)(n);
        if let Some(kind) = fault {
            sh.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        }

        // (Re)establish the upstream connection for this frame if needed.
        if up.is_none() {
            match TcpStream::connect(&sh.upstream) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let r = match s.try_clone() {
                        Ok(c) => BufReader::new(c),
                        Err(_) => return,
                    };
                    up = Some((s, r));
                }
                Err(_) => return,
            }
        }
        let (uw, ur) = up.as_mut().unwrap();

        let verdict = relay_frame(&frame, fault, &sh.plan, uw, ur, &mut client_w, sh.seed, n);
        match verdict {
            RelayOutcome::Continue => {}
            RelayOutcome::CloseBoth => {
                if let Some((s, _)) = up.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                return;
            }
        }
    }
}

enum RelayOutcome {
    /// Keep both connections; next frame reuses the upstream.
    Continue,
    /// Tear down the client connection (and upstream) now. The client's
    /// reconnect gets a fresh upstream connection from a fresh relay.
    CloseBoth,
}

/// Read one reply frame from upstream with a generous deadline — the proxy
/// itself must never black-hole by accident.
fn read_reply(ur: &mut BufReader<TcpStream>) -> Option<String> {
    let deadline = Duration::from_secs(30);
    let _ = ur.get_ref().set_read_timeout(Some(Duration::from_millis(100)));
    let start = std::time::Instant::now();
    let mut partial = Vec::new();
    loop {
        match read_frame_into(ur, &mut partial, MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(f)) => return Some(f),
            Ok(FrameRead::TimedOut) => {
                if start.elapsed() > deadline {
                    return None;
                }
            }
            Ok(FrameRead::Eof) | Ok(FrameRead::Oversized) | Err(_) => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn relay_frame(
    frame: &str,
    fault: Option<Fault>,
    plan: &FaultPlan,
    uw: &mut TcpStream,
    ur: &mut BufReader<TcpStream>,
    cw: &mut TcpStream,
    seed: u64,
    n: u64,
) -> RelayOutcome {
    match fault {
        None => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    if write_frame(cw, reply.as_bytes()).is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::ResetPreWrite) => RelayOutcome::CloseBoth,
        Some(Fault::ResetMidFrame) => {
            let bytes = frame.as_bytes();
            let half = bytes.len() / 2;
            let _ = uw.write_all(&bytes[..half]);
            let _ = uw.flush();
            let _ = uw.shutdown(Shutdown::Both);
            RelayOutcome::CloseBoth
        }
        Some(Fault::ResetPostWrite) => {
            // Server executes; the reply dies with the connection.
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            let _ = read_reply(ur);
            RelayOutcome::CloseBoth
        }
        Some(Fault::Truncate) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            if let Some(reply) = read_reply(ur) {
                let bytes = reply.as_bytes();
                let half = bytes.len() / 2;
                let _ = cw.write_all(&bytes[..half]);
                let _ = cw.flush();
            }
            RelayOutcome::CloseBoth
        }
        Some(Fault::CorruptByte) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    let corrupted = corrupt(&reply, seed, n, 1);
                    if cw.write_all(&corrupted).is_err() || cw.flush().is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::CorruptMulti) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    let corrupted = corrupt(&reply, seed, n, 4);
                    if cw.write_all(&corrupted).is_err() || cw.flush().is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Delay) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    thread::sleep(plan.delay);
                    if write_frame(cw, reply.as_bytes()).is_err() {
                        return RelayOutcome::CloseBoth;
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Stall) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    // Longer than the client's read deadline: the client gives
                    // up and retries elsewhere; the late reply lands on a
                    // connection the client already abandoned.
                    thread::sleep(plan.stall);
                    let _ = write_frame(cw, reply.as_bytes());
                    RelayOutcome::CloseBoth
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Trickle) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            match read_reply(ur) {
                Some(reply) => {
                    for b in reply.as_bytes() {
                        if cw.write_all(std::slice::from_ref(b)).is_err() {
                            return RelayOutcome::CloseBoth;
                        }
                        let _ = cw.flush();
                        thread::sleep(plan.trickle_pause);
                    }
                    RelayOutcome::Continue
                }
                None => RelayOutcome::CloseBoth,
            }
        }
        Some(Fault::Duplicate) => {
            // Forward the request twice; relay both replies. With dedup on the
            // server the second execution must be a replay, and the client must
            // cope with a stale duplicate frame arriving after the real one.
            if write_frame(uw, frame.as_bytes()).is_err() || write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            for _ in 0..2 {
                match read_reply(ur) {
                    Some(reply) => {
                        if write_frame(cw, reply.as_bytes()).is_err() {
                            return RelayOutcome::CloseBoth;
                        }
                    }
                    None => return RelayOutcome::CloseBoth,
                }
            }
            RelayOutcome::Continue
        }
        Some(Fault::BlackHole) => {
            if write_frame(uw, frame.as_bytes()).is_err() {
                return RelayOutcome::CloseBoth;
            }
            let _ = read_reply(ur);
            thread::sleep(plan.hold);
            RelayOutcome::CloseBoth
        }
    }
}

/// Flip `count` bytes of the frame at seeded positions, never touching the
/// trailing newline (framing survives; content is damaged) and never flipping
/// a byte *to* a newline (which would split the frame instead of corrupting it).
fn corrupt(frame: &str, seed: u64, n: u64, count: usize) -> Vec<u8> {
    let mut bytes = frame.as_bytes().to_vec();
    let body_len = if bytes.ends_with(b"\n") { bytes.len() - 1 } else { bytes.len() };
    if body_len == 0 {
        return bytes;
    }
    let mut s = splitmix64(seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
    for _ in 0..count {
        s = splitmix64(s);
        let pos = (s % body_len as u64) as usize;
        let mut x = ((s >> 32) & 0xff) as u8;
        // xor must change the byte and must not yield '\n'
        while x == 0 || bytes[pos] ^ x == b'\n' {
            x = x.wrapping_add(1);
        }
        bytes[pos] ^= x;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_and_covers_every_kind_each_cycle() {
        let plan = FaultPlan::default();
        for seed in [1u64, 42, 0xdead_beef] {
            // Pure: two evaluations agree.
            for n in 0..200 {
                assert_eq!(fault_for(seed, &plan, n), fault_for(seed, &plan, n));
            }
            // Warm window is clean.
            for n in 0..plan.warm {
                assert_eq!(fault_for(seed, &plan, n), None);
            }
            // One full cycle covers all kinds exactly once.
            let mut seen = Vec::new();
            let mut n = plan.warm;
            while seen.len() < KIND_COUNT as usize {
                if let Some(f) = fault_for(seed, &plan, n) {
                    seen.push(f);
                }
                n += 1;
            }
            for k in KINDS {
                assert_eq!(seen.iter().filter(|f| **f == k).count(), 1, "kind {k:?} seed {seed}");
            }
        }
    }

    #[test]
    fn schedule_text_is_stable_per_seed() {
        let plan = FaultPlan::default();
        let a = schedule_text("front", 7, &plan);
        let b = schedule_text("front", 7, &plan);
        assert_eq!(a, b);
        assert_ne!(a, schedule_text("front", 8, &plan));
        assert_eq!(a.lines().count(), 1 + KIND_COUNT as usize);
    }

    #[test]
    fn corrupt_changes_content_but_not_framing() {
        let frame = "{\"id\":\"x\",\"code\":200}\n";
        for n in 0..50u64 {
            let out = corrupt(frame, 99, n, 1);
            assert_eq!(out.len(), frame.len());
            assert_eq!(out.last(), Some(&b'\n'));
            assert_eq!(out.iter().filter(|b| **b == b'\n').count(), 1);
            assert_ne!(&out[..], frame.as_bytes());
        }
    }

    #[test]
    fn clean_relay_passes_frames_through() {
        use std::io::BufRead;
        // Echo upstream: replies with the line it received, uppercased op field intact.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        thread::spawn(move || {
            if let Ok((s, _)) = upstream.accept() {
                let mut r = BufReader::new(s.try_clone().unwrap());
                let mut w = s;
                let mut line = String::new();
                while r.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    let _ = write_frame(&mut w, line.as_bytes());
                    line.clear();
                }
            }
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let plan = FaultPlan { warm: 100, ..FaultPlan::default() };
        let mut proxy = ChaosProxy::start(listener, &up_addr, 5, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut c, b"{\"op\":\"ping\"}\n").unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        assert_eq!(reply, "{\"op\":\"ping\"}\n");
        assert_eq!(proxy.frames(), 1);
        proxy.stop();
    }
}
