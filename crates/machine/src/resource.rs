//! Hardware resources (functional units, buses, ports) and their
//! per-phase occupancy.
//!
//! Sint's §2.1.4 names *resource dependence* — "statements S1 and S2 cannot
//! be executed in parallel if their resource usage may lead to conflicts" —
//! as one of the two dependences a compacting compiler must honour. Tokoro
//! et al. refined this with a model in which each micro-operation occupies
//! resources only during certain *phases* of the microcycle; two operations
//! sharing a resource can still be packed together when their occupancies
//! are phase-disjoint.

use serde::{Deserialize, Serialize};

use crate::ids::ResourceId;

/// The broad kind of a hardware resource, used for reporting only (the
/// conflict model treats all resources uniformly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// An arithmetic/logic unit.
    Alu,
    /// A barrel or serial shifter.
    Shifter,
    /// The main memory interface.
    Memory,
    /// The microinstruction sequencer.
    Sequencer,
    /// A data bus.
    Bus,
    /// A register file read/write port.
    Port,
    /// Anything else.
    Other,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResourceKind::Alu => "alu",
            ResourceKind::Shifter => "shifter",
            ResourceKind::Memory => "memory",
            ResourceKind::Sequencer => "sequencer",
            ResourceKind::Bus => "bus",
            ResourceKind::Port => "port",
            ResourceKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// One hardware resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    /// Resource name, e.g. `"alu0"` or `"main_bus"`.
    pub name: String,
    /// Kind, for diagnostics.
    pub kind: ResourceKind,
}

impl Resource {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: ResourceKind) -> Self {
        Resource {
            name: name.into(),
            kind,
        }
    }
}

/// Occupancy of one resource over a half-open phase interval
/// `[from_phase, to_phase)` of the microcycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceUse {
    /// Which resource.
    pub resource: ResourceId,
    /// First phase occupied.
    pub from_phase: u8,
    /// One past the last phase occupied.
    pub to_phase: u8,
}

impl ResourceUse {
    /// Occupancy of `resource` during `[from, to)`.
    pub fn phases(resource: ResourceId, from: u8, to: u8) -> Self {
        debug_assert!(from < to, "empty occupancy interval");
        ResourceUse {
            resource,
            from_phase: from,
            to_phase: to,
        }
    }

    /// Occupancy of `resource` for the whole microcycle of a machine with
    /// `phases` phases.
    pub fn whole(resource: ResourceId, phases: u8) -> Self {
        Self::phases(resource, 0, phases)
    }

    /// Whether two uses conflict under the *fine* (phase-aware) model:
    /// same resource and overlapping phase intervals.
    pub fn overlaps(&self, other: &ResourceUse) -> bool {
        self.resource == other.resource
            && self.from_phase < other.to_phase
            && other.from_phase < self.to_phase
    }

    /// Whether two uses conflict under the *coarse* model: same resource,
    /// regardless of phases.
    pub fn same_resource(&self, other: &ResourceUse) -> bool {
        self.resource == other.resource
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_half_open() {
        let r = ResourceId(0);
        let a = ResourceUse::phases(r, 0, 2);
        let b = ResourceUse::phases(r, 2, 3);
        let c = ResourceUse::phases(r, 1, 3);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(a.same_resource(&b));
    }

    #[test]
    fn different_resources_never_overlap() {
        let a = ResourceUse::phases(ResourceId(0), 0, 3);
        let b = ResourceUse::phases(ResourceId(1), 0, 3);
        assert!(!a.overlaps(&b));
        assert!(!a.same_resource(&b));
    }

    #[test]
    fn whole_covers_all_phases() {
        let u = ResourceUse::whole(ResourceId(2), 3);
        assert_eq!((u.from_phase, u.to_phase), (0, 3));
    }
}
