//! The machine-independent meaning of micro-operations.
//!
//! Every micro-operation template of every machine carries a [`Semantic`]
//! describing its architectural effect; the simulator executes semantics,
//! and the instruction selector matches the abstract operations of the IR
//! against them. Semantics are deliberately at the level of the primitives
//! shared by SIMPL, EMPL and YALLL in the survey: ALU operations, shifts,
//! moves, memory access, and sequencing.

use serde::{Deserialize, Serialize};

/// Binary and unary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// `dst = a + b`
    Add,
    /// `dst = a + b + carry`
    Adc,
    /// `dst = a - b`
    Sub,
    /// `dst = a - b - borrow`
    Sbb,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = !(a & b)`
    Nand,
    /// `dst = !(a | b)`
    Nor,
    /// `dst = !a` (unary)
    Not,
    /// `dst = -a` (two's complement, unary)
    Neg,
    /// `dst = a + 1` (unary)
    Inc,
    /// `dst = a - 1` (unary)
    Dec,
    /// `dst = a` (pass-through; how moves ride the ALU on many machines)
    Pass,
}

impl AluOp {
    /// Whether the operation takes a single source operand.
    pub fn is_unary(self) -> bool {
        matches!(self, AluOp::Not | AluOp::Neg | AluOp::Inc | AluOp::Dec | AluOp::Pass)
    }

    /// Applies the operation to `width`-bit operands, returning
    /// `(result, carry_out, overflow)`.
    pub fn apply(self, a: u64, b: u64, carry_in: bool, width: u16) -> (u64, bool, bool) {
        let mask = width_mask(width);
        let (a, b) = (a & mask, b & mask);
        let sign = 1u64 << (width - 1);
        match self {
            AluOp::Add | AluOp::Adc => {
                let c = if self == AluOp::Adc && carry_in { 1 } else { 0 };
                let full = (a as u128) + (b as u128) + c as u128;
                let r = (full as u64) & mask;
                let carry = full > mask as u128;
                let ovf = ((a ^ r) & (b ^ r) & sign) != 0;
                (r, carry, ovf)
            }
            AluOp::Sub | AluOp::Sbb => {
                let c = if self == AluOp::Sbb && carry_in { 1 } else { 0 };
                let full = (a as i128) - (b as i128) - c as i128;
                let r = (full as u64) & mask;
                let borrow = full < 0;
                let ovf = ((a ^ b) & (a ^ r) & sign) != 0;
                (r, borrow, ovf)
            }
            AluOp::And => (a & b, false, false),
            AluOp::Or => (a | b, false, false),
            AluOp::Xor => (a ^ b, false, false),
            AluOp::Nand => (!(a & b) & mask, false, false),
            AluOp::Nor => (!(a | b) & mask, false, false),
            AluOp::Not => (!a & mask, false, false),
            AluOp::Neg => {
                let r = a.wrapping_neg() & mask;
                (r, a != 0, a == sign)
            }
            AluOp::Inc => {
                let r = a.wrapping_add(1) & mask;
                (r, a == mask, a == mask >> 1)
            }
            AluOp::Dec => {
                let r = a.wrapping_sub(1) & mask;
                (r, a == 0, a == sign)
            }
            AluOp::Pass => (a, false, false),
        }
    }
}

/// Shift and rotate operations. All take a source and a shift amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftOp {
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (sign-propagating).
    Sar,
    /// Rotate left.
    Rol,
    /// Rotate right.
    Ror,
}

impl ShiftOp {
    /// Applies the shift to a `width`-bit value, returning
    /// `(result, uf)` where `uf` is the last bit shifted out (the `UF`
    /// condition of the SIMPL multiplication example in the paper).
    pub fn apply(self, a: u64, amount: u32, width: u16) -> (u64, bool) {
        let mask = width_mask(width);
        let a = a & mask;
        let w = width as u32;
        let n = amount % w.max(1);
        if n == 0 {
            // A zero shift moves nothing out.
            return (a, false);
        }
        match self {
            ShiftOp::Shl => {
                let uf = (a >> (w - n)) & 1 != 0;
                ((a << n) & mask, uf)
            }
            ShiftOp::Shr => {
                let uf = (a >> (n - 1)) & 1 != 0;
                (a >> n, uf)
            }
            ShiftOp::Sar => {
                let uf = (a >> (n - 1)) & 1 != 0;
                let sign = (a >> (w - 1)) & 1;
                let mut r = a >> n;
                if sign != 0 {
                    r |= mask & !(mask >> n);
                }
                (r & mask, uf)
            }
            ShiftOp::Rol => {
                let r = ((a << n) | (a >> (w - n))) & mask;
                let uf = r & 1 != 0; // last bit rotated around
                (r, uf)
            }
            ShiftOp::Ror => {
                let r = ((a >> n) | (a << (w - n))) & mask;
                let uf = (r >> (w - 1)) & 1 != 0;
                (r, uf)
            }
        }
    }
}

/// Testable machine conditions, used by conditional branch
/// micro-operations. Each machine lists which of these its sequencer can
/// test; the encoding of a condition is its position in that list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CondKind {
    /// Always true (turns a conditional branch into a jump).
    True,
    /// Result was zero.
    Zero,
    /// Result was nonzero.
    NotZero,
    /// Result was negative (sign bit set).
    Neg,
    /// Result was non-negative.
    NotNeg,
    /// Carry/borrow out.
    Carry,
    /// No carry.
    NotCarry,
    /// Two's-complement overflow.
    Overflow,
    /// The `UF` bit: last bit shifted out of the shifter (paper §2.2.1).
    Uf,
    /// `UF` clear.
    NotUf,
}

impl CondKind {
    /// Evaluates the condition against a flags word as packed by
    /// the simulator's flag bits `(z, n, c, v, uf)`.
    pub fn eval(self, z: bool, n: bool, c: bool, v: bool, uf: bool) -> bool {
        match self {
            CondKind::True => true,
            CondKind::Zero => z,
            CondKind::NotZero => !z,
            CondKind::Neg => n,
            CondKind::NotNeg => !n,
            CondKind::Carry => c,
            CondKind::NotCarry => !c,
            CondKind::Overflow => v,
            CondKind::Uf => uf,
            CondKind::NotUf => !uf,
        }
    }

    /// The logically negated condition.
    pub fn negate(self) -> CondKind {
        match self {
            CondKind::True => CondKind::True, // no "false" condition exists
            CondKind::Zero => CondKind::NotZero,
            CondKind::NotZero => CondKind::Zero,
            CondKind::Neg => CondKind::NotNeg,
            CondKind::NotNeg => CondKind::Neg,
            CondKind::Carry => CondKind::NotCarry,
            CondKind::NotCarry => CondKind::Carry,
            CondKind::Overflow => CondKind::Overflow,
            CondKind::Uf => CondKind::NotUf,
            CondKind::NotUf => CondKind::Uf,
        }
    }
}

/// The architectural meaning of a micro-operation template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Semantic {
    /// ALU operation; binary ops use `src0`, `src1` (or `src0`, `imm`);
    /// unary ops use `src0`.
    Alu(AluOp),
    /// Shift of `src0` by an immediate amount.
    Shift(ShiftOp),
    /// Register-to-register move over a bus (not through the ALU).
    Move,
    /// Load an immediate constant into the destination.
    LoadImm,
    /// `dst = MEM[src0]`; may trigger a page-fault microtrap.
    MemRead,
    /// `MEM[src0] = src1`; may trigger a page-fault microtrap.
    MemWrite,
    /// Unconditional micro-jump to `target`.
    Jump,
    /// Conditional micro-branch: if `cond` holds, go to `target`.
    Branch,
    /// Multiway dispatch: `µPC = target + (src0 & imm)` (the case/mbranch
    /// facility; the mask comes from the immediate field).
    Dispatch,
    /// Micro-subroutine call to `target` (pushes the return address).
    Call,
    /// Micro-subroutine return (pops the return address).
    Return,
    /// Poll for pending interrupts; if one is pending the machine services
    /// it before the next microinstruction (§2.1.5 of the paper).
    Poll,
    /// Stop the microengine.
    Halt,
    /// No operation (occupies nothing).
    Nop,
}

impl Semantic {
    /// Whether the semantic affects microprogram sequencing.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Semantic::Jump
                | Semantic::Branch
                | Semantic::Dispatch
                | Semantic::Call
                | Semantic::Return
                | Semantic::Halt
        )
    }

    /// Whether the semantic may trigger a microtrap (page fault).
    pub fn may_trap(self) -> bool {
        matches!(self, Semantic::MemRead | Semantic::MemWrite)
    }
}

/// Masks a value to `width` bits.
pub fn width_mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_carry_and_overflow() {
        let (r, c, v) = AluOp::Add.apply(0xFFFF, 1, false, 16);
        assert_eq!(r, 0);
        assert!(c);
        assert!(!v);
        let (r, c, v) = AluOp::Add.apply(0x7FFF, 1, false, 16);
        assert_eq!(r, 0x8000);
        assert!(!c);
        assert!(v, "0x7FFF + 1 overflows signed 16-bit");
    }

    #[test]
    fn sub_borrow() {
        let (r, b, _) = AluOp::Sub.apply(0, 1, false, 16);
        assert_eq!(r, 0xFFFF);
        assert!(b);
        let (r, b, _) = AluOp::Sub.apply(5, 3, false, 16);
        assert_eq!(r, 2);
        assert!(!b);
    }

    #[test]
    fn adc_and_sbb_use_carry_in() {
        let (r, _, _) = AluOp::Adc.apply(1, 1, true, 16);
        assert_eq!(r, 3);
        let (r, _, _) = AluOp::Sbb.apply(5, 2, true, 16);
        assert_eq!(r, 2);
    }

    #[test]
    fn unary_ops() {
        assert!(AluOp::Not.is_unary());
        assert!(!AluOp::Add.is_unary());
        assert_eq!(AluOp::Not.apply(0x00FF, 0, false, 16).0, 0xFF00);
        assert_eq!(AluOp::Neg.apply(1, 0, false, 16).0, 0xFFFF);
        assert_eq!(AluOp::Inc.apply(0xFFFF, 0, false, 16).0, 0);
        assert_eq!(AluOp::Dec.apply(0, 0, false, 16).0, 0xFFFF);
        assert_eq!(AluOp::Pass.apply(42, 99, false, 16).0, 42);
    }

    #[test]
    fn logic_ops() {
        assert_eq!(AluOp::And.apply(0b1100, 0b1010, false, 4).0, 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010, false, 4).0, 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010, false, 4).0, 0b0110);
        assert_eq!(AluOp::Nand.apply(0b1100, 0b1010, false, 4).0, 0b0111);
        assert_eq!(AluOp::Nor.apply(0b1100, 0b1010, false, 4).0, 0b0001);
    }

    #[test]
    fn shifts_and_uf_bit() {
        // SIMPL's multiply tests UF = last bit shifted out.
        let (r, uf) = ShiftOp::Shr.apply(0b101, 1, 16);
        assert_eq!(r, 0b10);
        assert!(uf, "bit 0 was 1 and was shifted out");
        let (r, uf) = ShiftOp::Shr.apply(0b100, 1, 16);
        assert_eq!(r, 0b10);
        assert!(!uf);
        let (r, uf) = ShiftOp::Shl.apply(0x8000, 1, 16);
        assert_eq!(r, 0);
        assert!(uf);
    }

    #[test]
    fn sar_propagates_sign() {
        let (r, _) = ShiftOp::Sar.apply(0x8000, 3, 16);
        assert_eq!(r, 0xF000);
        let (r, _) = ShiftOp::Sar.apply(0x4000, 3, 16);
        assert_eq!(r, 0x0800);
    }

    #[test]
    fn rotates_wrap() {
        let (r, _) = ShiftOp::Rol.apply(0x8001, 1, 16);
        assert_eq!(r, 0x0003);
        let (r, _) = ShiftOp::Ror.apply(0x8001, 1, 16);
        assert_eq!(r, 0xC000);
    }

    #[test]
    fn zero_shift_is_identity() {
        for op in [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar, ShiftOp::Rol, ShiftOp::Ror] {
            let (r, uf) = op.apply(0xABCD, 0, 16);
            assert_eq!(r, 0xABCD);
            assert!(!uf);
        }
    }

    #[test]
    fn cond_eval_and_negate() {
        assert!(CondKind::Zero.eval(true, false, false, false, false));
        assert!(!CondKind::Zero.eval(false, false, false, false, false));
        assert!(CondKind::Uf.eval(false, false, false, false, true));
        assert!(CondKind::True.eval(false, false, false, false, false));
        for c in [
            CondKind::Zero,
            CondKind::NotZero,
            CondKind::Neg,
            CondKind::NotNeg,
            CondKind::Carry,
            CondKind::NotCarry,
            CondKind::Uf,
            CondKind::NotUf,
        ] {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation never agree.
            assert_ne!(
                c.eval(true, false, true, false, true),
                c.negate().eval(true, false, true, false, true)
            );
        }
    }

    #[test]
    fn semantic_classification() {
        assert!(Semantic::Jump.is_control());
        assert!(Semantic::Halt.is_control());
        assert!(!Semantic::Alu(AluOp::Add).is_control());
        assert!(Semantic::MemRead.may_trap());
        assert!(Semantic::MemWrite.may_trap());
        assert!(!Semantic::Move.may_trap());
    }

    #[test]
    fn width_mask_edges() {
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(16), 0xFFFF);
        assert_eq!(width_mask(64), u64::MAX);
    }
}
