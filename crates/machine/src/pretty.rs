//! Human-readable rendering of bound operations and microprograms.

use crate::machine::MachineDesc;
use crate::op::{BoundOp, MicroInstr, MicroProgram};

/// Renders a register as `FILE<index>` (or a special-role name).
pub fn reg_name(m: &MachineDesc, r: crate::regs::RegRef) -> String {
    if Some(r) == m.special.acc {
        return "ACC".into();
    }
    if Some(r) == m.special.mar {
        return "MAR".into();
    }
    if Some(r) == m.special.mbr {
        return "MBR".into();
    }
    format!("{}{}", m.file(r.file).name, r.index)
}

/// Renders one bound operation, assembler style.
pub fn format_op(m: &MachineDesc, op: &BoundOp) -> String {
    let t = m.template(op.template);
    let mut parts: Vec<String> = Vec::new();
    if let Some(d) = op.dst {
        parts.push(reg_name(m, d));
    }
    for &s in &op.srcs {
        parts.push(reg_name(m, s));
    }
    if let Some(i) = op.imm {
        parts.push(format!("#{i}"));
    }
    if let Some(c) = op.cond {
        parts.push(format!("{c:?}").to_lowercase());
    }
    if let Some(tgt) = op.target {
        parts.push(format!("@{tgt}"));
    }
    if parts.is_empty() {
        t.name.clone()
    } else {
        format!("{} {}", t.name, parts.join(", "))
    }
}

/// Renders one microinstruction: its packed operations joined by `∥`.
pub fn format_instr(m: &MachineDesc, mi: &MicroInstr) -> String {
    if mi.is_empty() {
        return "nop".into();
    }
    mi.ops
        .iter()
        .map(|o| format_op(m, o))
        .collect::<Vec<_>>()
        .join("  ∥  ")
}

/// Renders a whole program with addresses and block markers. Branch
/// targets are control-store addresses (the program is flattened first).
pub fn format_program(m: &MachineDesc, p: &MicroProgram) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let addrs = p.block_addresses();
    let flat = p.flatten();
    let mut next_block = 0usize;
    for (a, mi) in flat.iter().enumerate() {
        while next_block < addrs.len() && addrs[next_block] == a as u32 {
            // Only mark blocks that are not empty (empty blocks share an
            // address with their successor).
            if next_block >= p.blocks.len() || !p.blocks[next_block].instrs.is_empty() {
                let _ = writeln!(out, "b{next_block}:");
            }
            next_block += 1;
        }
        let _ = writeln!(out, "  {a:4}  {}", format_instr(m, mi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::hm1;
    use crate::op::MicroBlock;
    use crate::regs::RegRef;
    use crate::semantic::CondKind;

    #[test]
    fn format_samples() {
        let m = hm1();
        let r = m.find_file("R").unwrap();
        let add = BoundOp::new(m.find_template("add").unwrap())
            .with_dst(RegRef::new(r, 1))
            .with_src(RegRef::new(r, 2))
            .with_src(RegRef::new(r, 3));
        assert_eq!(format_op(&m, &add), "add R1, R2, R3");
        let br = BoundOp::new(m.find_template("br").unwrap())
            .with_cond(CondKind::Zero)
            .with_target(7);
        assert_eq!(format_op(&m, &br), "br zero, @7");
        let mov = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(m.special.mar.unwrap())
            .with_src(RegRef::new(r, 0));
        assert_eq!(format_op(&m, &mov), "mov MAR, R0");
        let mi = MicroInstr::of(vec![add, br]);
        assert!(format_instr(&m, &mi).contains("∥"));
        assert_eq!(format_instr(&m, &MicroInstr::new()), "nop");
    }

    #[test]
    fn program_listing_has_addresses() {
        let m = hm1();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("halt").unwrap()),
            )],
        });
        let s = format_program(&m, &p);
        assert!(s.contains("b0:"));
        assert!(s.contains("halt"));
    }
}
