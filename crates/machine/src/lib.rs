//! # `mcc-machine` — the microarchitecture substrate
//!
//! This crate models *horizontal microprogrammable machines* in the sense of
//! Sint's 1980 survey of high level microprogramming languages: a machine is
//! a fixed **control word format** (a set of bit fields), a set of
//! **register files** (deliberately non-homogeneous: different operations
//! accept different register classes), a set of **functional units and
//! buses** (resources occupied during specific phases of the microcycle),
//! and a set of **micro-operation templates** describing which field
//! settings, operand classes and resource occupancies realise each abstract
//! operation.
//!
//! The conflict model combines DeWitt's control-word model (two
//! micro-operations conflict when they drive the same control field) with
//! Tokoro's resource-occupancy model (two micro-operations conflict when
//! their unit/bus occupancies overlap in time). Both a coarse, whole-cycle
//! variant and a fine, per-phase variant are provided — the difference is
//! the subject of experiment E2.
//!
//! Four reference machines are included (see [`machines`]):
//!
//! * [`machines::hm1`] — **HM-1 "Horizon"**, a clean horizontal machine
//!   (stands in for the Tucker–Flynn processor / HP300 of the paper),
//! * [`machines::vm1`] — **VM-1 "Vertica"**, a vertical machine (one
//!   micro-operation per microinstruction, Burroughs B1700 class),
//! * [`machines::bx2`] — **BX-2 "Baroque"**, an irregular shared-bus machine
//!   (stands in for the VAX-11 microarchitecture),
//! * [`machines::wm64`] — **WM-64 "Wide"**, a very wide machine with 256
//!   microregisters and two ALUs (Control Data 480 class).
//!
//! Machines can also be described textually in **MDL**, a small machine
//! description language in the spirit of MPGL's machine specification
//! (see [`mdl`]).
//!
//! ```
//! use mcc_machine::machines::hm1;
//!
//! let m = hm1();
//! assert!(m.validate().is_ok());
//! assert!(m.control_word_bits() > 32, "HM-1 is horizontal: a wide word");
//! ```

pub mod encode;
pub mod field;
pub mod ids;
pub mod machine;
pub mod machines;
pub mod mdl;
pub mod op;
pub mod pretty;
pub mod regs;
pub mod resource;
pub mod semantic;
pub mod template;

pub use encode::{
    decode_checked, decode_instr, ecc_of, ecc_syndrome, encode_instr, encode_program,
    encode_program_ecc, DecodeError, EncodeError,
};
pub use field::{ControlField, ControlWordFormat};
pub use ids::{ClassId, CondId, FieldId, FileId, ResourceId, TemplateId};
pub use machine::{ConflictModel, MachineDesc, MachineError};
pub use op::{BoundOp, MicroInstr, MicroProgram};
pub use pretty::{format_instr, format_op, format_program};
pub use regs::{RegClass, RegRef, RegisterFile};
pub use resource::{Resource, ResourceKind, ResourceUse};
pub use semantic::{AluOp, CondKind, Semantic, ShiftOp};
pub use template::{FieldSetting, FieldValueSrc, MicroOpTemplate, SrcSpec};
