//! **MDL** — a textual Machine Description Language.
//!
//! The survey's §2.2.5 singles out one unique feature of MPGL: "a complete
//! machine specification is part of the program and the compiler uses this
//! specification to generate code". MDL provides the same capability for
//! this toolkit: a machine description can be written as text, parsed into
//! a [`MachineDesc`], and fed to the whole pipeline. [`to_mdl`] serialises
//! any machine back to text, and parsing is its inverse.
//!
//! # Format (line oriented; `#` starts a comment)
//!
//! ```text
//! machine TINY width 16 phases 3
//! file R count 16 width 16 macro
//! file S count 3 width 16
//! special acc = S 0
//! special mar = S 1
//! special mbr = S 2
//! scratch R
//! class gp = R[0..16]
//! resource alu kind alu
//! field alu_op width 5
//! cond zero
//! template add semantic alu.add
//!   dst gp
//!   src gp
//!   src gp
//!   flags
//!   set alu_op = const 1
//!   occupy alu 0..3
//! end
//! ```

use crate::machine::MachineDesc;
use crate::regs::{RegClass, RegRef, RegisterFile};
use crate::resource::{Resource, ResourceKind, ResourceUse};
use crate::semantic::{AluOp, CondKind, Semantic, ShiftOp};
use crate::template::{FieldValueSrc, MicroOpTemplate, SrcSpec};

/// A parse error, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdlError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for MdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mdl:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for MdlError {}

fn err(line: usize, message: impl Into<String>) -> MdlError {
    MdlError {
        line,
        message: message.into(),
    }
}

fn semantic_name(s: Semantic) -> String {
    match s {
        Semantic::Alu(op) => format!("alu.{}", alu_name(op)),
        Semantic::Shift(op) => format!("shift.{}", shift_name(op)),
        Semantic::Move => "move".into(),
        Semantic::LoadImm => "loadimm".into(),
        Semantic::MemRead => "memread".into(),
        Semantic::MemWrite => "memwrite".into(),
        Semantic::Jump => "jump".into(),
        Semantic::Branch => "branch".into(),
        Semantic::Dispatch => "dispatch".into(),
        Semantic::Call => "call".into(),
        Semantic::Return => "return".into(),
        Semantic::Poll => "poll".into(),
        Semantic::Halt => "halt".into(),
        Semantic::Nop => "nop".into(),
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Adc => "adc",
        AluOp::Sub => "sub",
        AluOp::Sbb => "sbb",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Nand => "nand",
        AluOp::Nor => "nor",
        AluOp::Not => "not",
        AluOp::Neg => "neg",
        AluOp::Inc => "inc",
        AluOp::Dec => "dec",
        AluOp::Pass => "pass",
    }
}

fn shift_name(op: ShiftOp) -> &'static str {
    match op {
        ShiftOp::Shl => "shl",
        ShiftOp::Shr => "shr",
        ShiftOp::Sar => "sar",
        ShiftOp::Rol => "rol",
        ShiftOp::Ror => "ror",
    }
}

fn parse_semantic(s: &str, line: usize) -> Result<Semantic, MdlError> {
    if let Some(op) = s.strip_prefix("alu.") {
        let op = match op {
            "add" => AluOp::Add,
            "adc" => AluOp::Adc,
            "sub" => AluOp::Sub,
            "sbb" => AluOp::Sbb,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "nand" => AluOp::Nand,
            "nor" => AluOp::Nor,
            "not" => AluOp::Not,
            "neg" => AluOp::Neg,
            "inc" => AluOp::Inc,
            "dec" => AluOp::Dec,
            "pass" => AluOp::Pass,
            _ => return Err(err(line, format!("unknown alu op `{op}`"))),
        };
        return Ok(Semantic::Alu(op));
    }
    if let Some(op) = s.strip_prefix("shift.") {
        let op = match op {
            "shl" => ShiftOp::Shl,
            "shr" => ShiftOp::Shr,
            "sar" => ShiftOp::Sar,
            "rol" => ShiftOp::Rol,
            "ror" => ShiftOp::Ror,
            _ => return Err(err(line, format!("unknown shift op `{op}`"))),
        };
        return Ok(Semantic::Shift(op));
    }
    Ok(match s {
        "move" => Semantic::Move,
        "loadimm" => Semantic::LoadImm,
        "memread" => Semantic::MemRead,
        "memwrite" => Semantic::MemWrite,
        "jump" => Semantic::Jump,
        "branch" => Semantic::Branch,
        "dispatch" => Semantic::Dispatch,
        "call" => Semantic::Call,
        "return" => Semantic::Return,
        "poll" => Semantic::Poll,
        "halt" => Semantic::Halt,
        "nop" => Semantic::Nop,
        _ => return Err(err(line, format!("unknown semantic `{s}`"))),
    })
}

fn cond_name(c: CondKind) -> &'static str {
    match c {
        CondKind::True => "true",
        CondKind::Zero => "zero",
        CondKind::NotZero => "notzero",
        CondKind::Neg => "neg",
        CondKind::NotNeg => "notneg",
        CondKind::Carry => "carry",
        CondKind::NotCarry => "notcarry",
        CondKind::Overflow => "overflow",
        CondKind::Uf => "uf",
        CondKind::NotUf => "notuf",
    }
}

fn parse_cond(s: &str, line: usize) -> Result<CondKind, MdlError> {
    Ok(match s {
        "true" => CondKind::True,
        "zero" => CondKind::Zero,
        "notzero" => CondKind::NotZero,
        "neg" => CondKind::Neg,
        "notneg" => CondKind::NotNeg,
        "carry" => CondKind::Carry,
        "notcarry" => CondKind::NotCarry,
        "overflow" => CondKind::Overflow,
        "uf" => CondKind::Uf,
        "notuf" => CondKind::NotUf,
        _ => return Err(err(line, format!("unknown condition `{s}`"))),
    })
}

fn kind_name(k: ResourceKind) -> &'static str {
    match k {
        ResourceKind::Alu => "alu",
        ResourceKind::Shifter => "shifter",
        ResourceKind::Memory => "memory",
        ResourceKind::Sequencer => "sequencer",
        ResourceKind::Bus => "bus",
        ResourceKind::Port => "port",
        ResourceKind::Other => "other",
    }
}

fn parse_kind(s: &str, line: usize) -> Result<ResourceKind, MdlError> {
    Ok(match s {
        "alu" => ResourceKind::Alu,
        "shifter" => ResourceKind::Shifter,
        "memory" => ResourceKind::Memory,
        "sequencer" => ResourceKind::Sequencer,
        "bus" => ResourceKind::Bus,
        "port" => ResourceKind::Port,
        "other" => ResourceKind::Other,
        _ => return Err(err(line, format!("unknown resource kind `{s}`"))),
    })
}

/// Serialises a machine description to MDL text. `parse(to_mdl(m))`
/// reproduces `m` up to field offsets (which are recomputed).
pub fn to_mdl(m: &MachineDesc) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "machine {} width {} phases {}",
        m.name, m.word_bits, m.phases
    );
    for f in &m.files {
        let _ = writeln!(
            out,
            "file {} count {} width {}{}",
            f.name,
            f.count,
            f.width,
            if f.macro_visible { " macro" } else { "" }
        );
    }
    let fname = |r: RegRef| m.file(r.file).name.clone();
    if let Some(r) = m.special.acc {
        let _ = writeln!(out, "special acc = {} {}", fname(r), r.index);
    }
    if let Some(r) = m.special.mar {
        let _ = writeln!(out, "special mar = {} {}", fname(r), r.index);
    }
    if let Some(r) = m.special.mbr {
        let _ = writeln!(out, "special mbr = {} {}", fname(r), r.index);
    }
    if let Some(r) = m.special.flags {
        let _ = writeln!(out, "special flags = {} {}", fname(r), r.index);
    }
    if let Some(f) = m.scratch_file {
        let _ = writeln!(out, "scratch {}", m.file(f).name);
    }
    let _ = writeln!(
        out,
        "service interrupt {} trap {}",
        m.interrupt_service_cycles, m.trap_service_cycles
    );
    for c in &m.classes {
        let ranges: Vec<String> = c
            .ranges
            .iter()
            .map(|&(f, lo, n)| format!("{}[{}..{}]", m.file(f).name, lo, lo + n))
            .collect();
        let _ = writeln!(out, "class {} = {}", c.name, ranges.join(", "));
    }
    for r in &m.resources {
        let _ = writeln!(out, "resource {} kind {}", r.name, kind_name(r.kind));
    }
    for (_, f) in m.control.iter() {
        let _ = writeln!(out, "field {} width {}", f.name, f.width);
    }
    for &c in &m.conditions {
        let _ = writeln!(out, "cond {}", cond_name(c));
    }
    for t in &m.templates {
        let _ = writeln!(out, "template {} semantic {}", t.name, semantic_name(t.semantic));
        if let Some(d) = t.dst {
            let _ = writeln!(out, "  dst {}", m.class(d).name);
        }
        for s in &t.srcs {
            match s {
                SrcSpec::Class(c) => {
                    let _ = writeln!(out, "  src {}", m.class(*c).name);
                }
                SrcSpec::Imm { bits } => {
                    let _ = writeln!(out, "  imm {bits}");
                }
            }
        }
        for &r in &t.implicit_reads {
            let _ = writeln!(out, "  reads {} {}", fname(r), r.index);
        }
        for &r in &t.implicit_writes {
            let _ = writeln!(out, "  writes {} {}", fname(r), r.index);
        }
        if t.writes_flags {
            let _ = writeln!(out, "  flags");
        }
        if t.takes_cond {
            let _ = writeln!(out, "  cond");
        }
        if t.takes_target {
            let _ = writeln!(out, "  target");
        }
        for fs in &t.fields {
            let field = m.control.get(fs.field).expect("field");
            let v = match fs.value {
                FieldValueSrc::Const(v) => format!("const {v}"),
                FieldValueSrc::Dst => "dst".into(),
                FieldValueSrc::Src(n) => format!("src {n}"),
                FieldValueSrc::Imm => "imm".into(),
                FieldValueSrc::Target => "target".into(),
                FieldValueSrc::Cond => "cond".into(),
            };
            let _ = writeln!(out, "  set {} = {}", field.name, v);
        }
        for u in &t.occupancy {
            let res = &m.resources[u.resource.index()];
            let _ = writeln!(out, "  occupy {} {}..{}", res.name, u.from_phase, u.to_phase);
        }
        let _ = writeln!(out, "end");
    }
    out
}

/// Parses MDL text into a machine description.
///
/// # Errors
///
/// Returns the first [`MdlError`] encountered, with its line number.
pub fn parse(text: &str) -> Result<MachineDesc, MdlError> {
    let mut m: Option<MachineDesc> = None;
    let mut current: Option<MicroOpTemplate> = None;

    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let head = toks[0];

        if head == "machine" {
            if toks.len() != 6 || toks[2] != "width" || toks[4] != "phases" {
                return Err(err(ln, "expected `machine NAME width W phases P`"));
            }
            let w: u16 = toks[3].parse().map_err(|_| err(ln, "bad width"))?;
            let p: u8 = toks[5].parse().map_err(|_| err(ln, "bad phase count"))?;
            m = Some(MachineDesc::new(toks[1], w, p));
            continue;
        }
        let mach = m.as_mut().ok_or_else(|| err(ln, "missing `machine` header"))?;

        if let Some(t) = current.as_mut() {
            // Inside a template body.
            match head {
                "end" => {
                    let t = current.take().expect("template");
                    mach.templates.push(t);
                }
                "dst" => {
                    let c = mach
                        .find_class(toks.get(1).copied().unwrap_or(""))
                        .ok_or_else(|| err(ln, "unknown class"))?;
                    t.dst = Some(c);
                }
                "src" => {
                    let c = mach
                        .find_class(toks.get(1).copied().unwrap_or(""))
                        .ok_or_else(|| err(ln, "unknown class"))?;
                    t.srcs.push(SrcSpec::Class(c));
                }
                "imm" => {
                    let bits: u16 = toks
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(ln, "bad imm width"))?;
                    t.srcs.push(SrcSpec::Imm { bits });
                }
                "reads" | "writes" => {
                    let file = mach
                        .find_file(toks.get(1).copied().unwrap_or(""))
                        .ok_or_else(|| err(ln, "unknown file"))?;
                    let idx: u16 = toks
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(ln, "bad register index"))?;
                    let r = RegRef::new(file, idx);
                    if head == "reads" {
                        t.implicit_reads.push(r);
                    } else {
                        t.implicit_writes.push(r);
                    }
                }
                "flags" => t.writes_flags = true,
                "cond" => t.takes_cond = true,
                "target" => t.takes_target = true,
                "set" => {
                    if toks.len() < 4 || toks[2] != "=" {
                        return Err(err(ln, "expected `set FIELD = VALUE`"));
                    }
                    let field = mach
                        .control
                        .find(toks[1])
                        .ok_or_else(|| err(ln, format!("unknown field `{}`", toks[1])))?;
                    let value = match toks[3] {
                        "const" => {
                            let v: u64 = toks
                                .get(4)
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(ln, "bad constant"))?;
                            FieldValueSrc::Const(v)
                        }
                        "dst" => FieldValueSrc::Dst,
                        "src" => {
                            let n: u8 = toks
                                .get(4)
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(ln, "bad source index"))?;
                            FieldValueSrc::Src(n)
                        }
                        "imm" => FieldValueSrc::Imm,
                        "target" => FieldValueSrc::Target,
                        "cond" => FieldValueSrc::Cond,
                        other => return Err(err(ln, format!("unknown value source `{other}`"))),
                    };
                    t.fields.push(crate::template::FieldSetting::new(field, value));
                }
                "occupy" => {
                    let res = mach
                        .resources
                        .iter()
                        .position(|r| r.name == *toks.get(1).unwrap_or(&""))
                        .ok_or_else(|| err(ln, "unknown resource"))?;
                    let range = toks.get(2).copied().unwrap_or("");
                    let (a, b) = range
                        .split_once("..")
                        .ok_or_else(|| err(ln, "expected `FROM..TO`"))?;
                    let from: u8 = a.parse().map_err(|_| err(ln, "bad phase"))?;
                    let to: u8 = b.parse().map_err(|_| err(ln, "bad phase"))?;
                    t.occupancy.push(ResourceUse::phases(
                        crate::ids::ResourceId(res as u16),
                        from,
                        to,
                    ));
                }
                other => return Err(err(ln, format!("unknown template item `{other}`"))),
            }
            continue;
        }

        match head {
            "file" => {
                if toks.len() < 6 || toks[2] != "count" || toks[4] != "width" {
                    return Err(err(ln, "expected `file NAME count N width W [macro]`"));
                }
                let count: u16 = toks[3].parse().map_err(|_| err(ln, "bad count"))?;
                let width: u16 = toks[5].parse().map_err(|_| err(ln, "bad width"))?;
                let macro_visible = toks.get(6) == Some(&"macro");
                mach.add_file(RegisterFile::new(toks[1], count, width, macro_visible));
            }
            "special" => {
                if toks.len() != 5 || toks[2] != "=" {
                    return Err(err(ln, "expected `special ROLE = FILE INDEX`"));
                }
                let file = mach
                    .find_file(toks[3])
                    .ok_or_else(|| err(ln, "unknown file"))?;
                let idx: u16 = toks[4].parse().map_err(|_| err(ln, "bad index"))?;
                let r = RegRef::new(file, idx);
                match toks[1] {
                    "acc" => mach.special.acc = Some(r),
                    "mar" => mach.special.mar = Some(r),
                    "mbr" => mach.special.mbr = Some(r),
                    "flags" => mach.special.flags = Some(r),
                    other => return Err(err(ln, format!("unknown special role `{other}`"))),
                }
            }
            "scratch" => {
                let f = mach
                    .find_file(toks.get(1).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "unknown file"))?;
                mach.scratch_file = Some(f);
            }
            "service" => {
                if toks.len() != 5 || toks[1] != "interrupt" || toks[3] != "trap" {
                    return Err(err(ln, "expected `service interrupt N trap M`"));
                }
                mach.interrupt_service_cycles =
                    toks[2].parse().map_err(|_| err(ln, "bad cycles"))?;
                mach.trap_service_cycles = toks[4].parse().map_err(|_| err(ln, "bad cycles"))?;
            }
            "class" => {
                // class NAME = FILE[a..b], FILE[a..b] ...
                let rest = line
                    .split_once('=')
                    .ok_or_else(|| err(ln, "expected `class NAME = RANGES`"))?;
                let name = rest.0.trim().strip_prefix("class").unwrap_or("").trim();
                let mut ranges = Vec::new();
                for part in rest.1.split(',') {
                    let part = part.trim();
                    let (fname, idx) = part
                        .split_once('[')
                        .ok_or_else(|| err(ln, "expected `FILE[a..b]`"))?;
                    let idx = idx
                        .strip_suffix(']')
                        .ok_or_else(|| err(ln, "missing `]`"))?;
                    let (a, b) = idx
                        .split_once("..")
                        .ok_or_else(|| err(ln, "expected `a..b`"))?;
                    let file = mach
                        .find_file(fname.trim())
                        .ok_or_else(|| err(ln, format!("unknown file `{fname}`")))?;
                    let lo: u16 = a.parse().map_err(|_| err(ln, "bad range"))?;
                    let hi: u16 = b.parse().map_err(|_| err(ln, "bad range"))?;
                    if hi < lo {
                        return Err(err(ln, "empty range"));
                    }
                    ranges.push((file, lo, hi - lo));
                }
                mach.add_class(RegClass::from_ranges(name, ranges));
            }
            "resource" => {
                if toks.len() != 4 || toks[2] != "kind" {
                    return Err(err(ln, "expected `resource NAME kind KIND`"));
                }
                let kind = parse_kind(toks[3], ln)?;
                mach.add_resource(Resource::new(toks[1], kind));
            }
            "field" => {
                if toks.len() != 4 || toks[2] != "width" {
                    return Err(err(ln, "expected `field NAME width W`"));
                }
                let w: u16 = toks[3].parse().map_err(|_| err(ln, "bad width"))?;
                mach.control.push(toks[1], w);
            }
            "cond" => {
                let c = parse_cond(toks.get(1).copied().unwrap_or(""), ln)?;
                mach.add_condition(c);
            }
            "template" => {
                if toks.len() != 4 || toks[2] != "semantic" {
                    return Err(err(ln, "expected `template NAME semantic SEM`"));
                }
                let sem = parse_semantic(toks[3], ln)?;
                current = Some(MicroOpTemplate::new(toks[1], sem));
            }
            other => return Err(err(ln, format!("unknown directive `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(err(text.lines().count(), "unterminated template"));
    }
    m.ok_or_else(|| err(1, "empty description"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{bx2, hm1, vm1, wm64};

    #[test]
    fn roundtrip_all_reference_machines() {
        for mach in [hm1(), vm1(), bx2(), wm64()] {
            let text = to_mdl(&mach);
            let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", mach.name));
            back.validate().unwrap();
            assert_eq!(back.name, mach.name);
            assert_eq!(back.control, mach.control, "{}", mach.name);
            assert_eq!(back.files, mach.files, "{}", mach.name);
            assert_eq!(back.classes, mach.classes, "{}", mach.name);
            assert_eq!(back.resources, mach.resources, "{}", mach.name);
            assert_eq!(back.templates, mach.templates, "{}", mach.name);
            assert_eq!(back.conditions, mach.conditions, "{}", mach.name);
            assert_eq!(back.special, mach.special, "{}", mach.name);
            assert_eq!(back.scratch_file, mach.scratch_file, "{}", mach.name);
        }
    }

    #[test]
    fn parse_minimal_machine() {
        let text = "\
machine TINY width 8 phases 1
file R count 4 width 8 macro
file F count 1 width 8
special flags = F 0
special mar = R 0
special mbr = R 1
class gp = R[0..4]
resource core kind other
field op width 4
field a width 2
field d width 2
cond zero
template mov semantic move
  dst gp
  src gp
  set op = const 1
  set a = src 0
  set d = dst
  occupy core 0..1
end
";
        let m = parse(text).unwrap();
        m.validate().unwrap();
        assert_eq!(m.name, "TINY");
        assert_eq!(m.templates.len(), 1);
        assert_eq!(m.templates[0].name, "mov");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("machine X width 8 phases 1\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("mdl:2"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse("file R count 4 width 8\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let m = parse("# a machine\n\nmachine T width 8 phases 1 # trailing\n").unwrap();
        assert_eq!(m.name, "T");
    }
}
