//! Typed indices into the tables of a [`MachineDesc`](crate::MachineDesc).
//!
//! Every table in a machine description (control fields, register files,
//! register classes, resources, micro-operation templates) is indexed by its
//! own newtype id so that the indices cannot be confused with one another
//! (C-NEWTYPE).

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u16);

        impl $name {
            /// Returns the raw table index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u16> for $name {
            fn from(v: u16) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a control word field.
    FieldId
);
id_type!(
    /// Index of a register file.
    FileId
);
id_type!(
    /// Index of a register class.
    ClassId
);
id_type!(
    /// Index of a hardware resource (functional unit, bus, port).
    ResourceId
);
id_type!(
    /// Index of a micro-operation template.
    TemplateId
);
id_type!(
    /// Index of a testable machine condition.
    CondId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_indices() {
        let f = FieldId(3);
        assert_eq!(f.index(), 3);
        assert_eq!(FieldId::from(3u16), f);
        assert_eq!(format!("{f}"), "FieldId(3)");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TemplateId(1));
        s.insert(TemplateId(1));
        s.insert(TemplateId(2));
        assert_eq!(s.len(), 2);
        assert!(TemplateId(1) < TemplateId(2));
    }
}
